"""Exception hierarchy for the Transitive Joins reproduction.

The paper's verifier (Algorithm 1) *faults* on a join that the policy does
not permit.  When the verifier is combined with the Armus cycle-detection
fallback (Section 6), a fault is first filtered for precision: joins that
are merely policy false positives proceed, while joins that would truly
deadlock raise :class:`DeadlockAvoidedError` in the offending task, giving
the program a chance to recover (the central selling point of *avoidance*
over *detection*, Section 7.1).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "TraceError",
    "InvalidActionError",
    "PolicyViolationError",
    "DeadlockError",
    "DeadlockAvoidedError",
    "DeadlockDetectedError",
    "RuntimeStateError",
    "TaskFailedError",
]


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class TraceError(ReproError):
    """A trace violates the structural valid-* rules of Definition 3.2."""


class InvalidActionError(TraceError):
    """An action references tasks in a way the valid-* rules forbid.

    Examples: a ``fork`` whose child already exists, an action before
    ``init``, or a second ``init``.
    """


class PolicyViolationError(ReproError):
    """A join was attempted that the active policy does not permit.

    Corresponds to the ``fault`` in Algorithm 1.  Carries the pair of tasks
    so callers (and the Armus fallback) can reason about the candidate edge.
    """

    def __init__(self, policy: str, joiner: object, joinee: object, message: str | None = None):
        self.policy = policy
        self.joiner = joiner
        self.joinee = joinee
        super().__init__(
            message
            or f"{policy}: task {joiner!r} is not permitted to join on task {joinee!r}"
        )


class DeadlockError(ReproError):
    """Base class for both flavours of deadlock diagnosis."""

    def __init__(self, cycle: tuple | None = None, message: str | None = None):
        self.cycle = tuple(cycle) if cycle is not None else None
        if message is None:
            if self.cycle:
                message = "deadlock cycle: " + " -> ".join(repr(t) for t in self.cycle)
            else:
                message = "deadlock"
        super().__init__(message)


class DeadlockAvoidedError(DeadlockError):
    """Raised *before* blocking: the attempted join would close a cycle.

    This is the recoverable exception delivered to the program by the
    avoidance machinery (policy verifier + Armus filter).
    """


class DeadlockDetectedError(DeadlockError):
    """Raised by the cooperative scheduler when no task can make progress.

    This is *detection* (the deadlock already happened); it exists so the
    deterministic runtime can report unprotected deadlocks in tests instead
    of hanging.
    """


class RuntimeStateError(ReproError):
    """Misuse of the task runtime (e.g. joining outside any task context)."""


class TaskFailedError(ReproError):
    """A joined task terminated with an exception; wraps the original."""

    def __init__(self, task: object, cause: BaseException):
        self.task = task
        self.__cause__ = cause
        super().__init__(f"task {task!r} failed: {cause!r}")
