"""Seeded random fork/join programs with invariant checking.

:func:`generate_spec` derives a whole program — task tree, join
schedule, crash sites — from one integer seed, so a chaos failure is
reproducible from its seed alone.  Programs are **deadlock-free by
construction**:

* every parent joins all of its children (so the tree quiesces);
* a task may additionally join an *older* sibling — the waits-on
  relation among siblings strictly decreases the sibling index, so no
  sibling cycle can form (and younger-joins-older is TJ-valid; the
  reverse direction is the classic TJ violation);
* a task may join a *grandchild*, but only after joining the child that
  forked it (a transitive join: TJ-valid, yet flagged by several KJ
  policies — which is exactly how the suite exercises the Armus
  false-positive path under load).

Injected crashes fire *after* a task has performed all of its joins, so
a crashed task never abandons children; every crash is observed by the
parent's join as :class:`~repro.errors.TaskFailedError` and swallowed by
the harness, which records it.

After the run, :func:`run_chaos_program` checks the invariants the
supervised runtimes promise (raising :class:`ChaosInvariantError` on any
violation):

* every future completed and no task is left in ``BLOCKED`` state;
* the supervision registry and the Armus waits-for graph are empty, and
  no forced edge is live;
* verifier statistics match the spec exactly: ``forks == n_tasks`` and
  ``joins_checked == total_joins`` (both are computable from the spec
  because every planned join runs exactly once);
* the watchdog delivered no diagnosis (the program is deadlock-free);
* the set of observed failures equals the planned crash set.

For ``stable_permits`` policies the result also carries the post-hoc
permission verdict of every join edge (queried directly from the policy,
which is side-effect free), so callers can assert the verdict stream is
identical with and without injected delays.
"""

from __future__ import annotations

import random
import threading
import warnings
from dataclasses import dataclass, field
from typing import Optional, Union

from ..core.policy import JoinPolicy
from ..core.verifier import VerifierStats
from ..errors import (
    DeadlockAvoidedError,
    InjectedFaultError,
    PolicyQuarantinedError,
    PolicyQuarantineWarning,
    TaskFailedError,
)
from ..runtime.context import require_current_task
from ..runtime.pool import WorkSharingRuntime
from ..runtime.retry import RetryPolicy
from ..runtime.task import TaskState
from ..runtime.threaded import TaskRuntime
from .faults import FaultPlan, FaultyPolicy

__all__ = [
    "ChaosInvariantError",
    "ChaosResult",
    "ChaosSpec",
    "ProcsChaosResult",
    "QuarantineChaosResult",
    "RetryChaosResult",
    "ServiceChaosResult",
    "PredictChaosResult",
    "PredictSpec",
    "generate_predict_spec",
    "generate_spec",
    "repro_command",
    "run_chaos_program",
    "run_predict_loop",
    "run_predict_program",
    "run_procs_divergence",
    "run_with_policy_quarantine",
    "run_with_service_faults",
    "run_with_task_retries",
    "run_with_verifier_faults",
]

RUNTIMES = ("threaded", "pool")


class ChaosInvariantError(AssertionError):
    """A supervised-runtime invariant did not hold after a chaos run."""


@dataclass(frozen=True)
class ChaosSpec:
    """A fully determined chaos program (everything derives from the seed)."""

    seed: int
    n_tasks: int
    #: task id -> ids of the children it forks (ascending)
    children: dict[int, tuple[int, ...]]
    #: task id -> older siblings it joins before joining its children
    sibling_joins: dict[int, tuple[int, ...]]
    #: task id -> grandchildren it joins after joining its children
    grandchild_joins: dict[int, tuple[int, ...]]
    #: parents that join their children via ``join_batch``
    batch_parents: frozenset[int]
    #: tasks that raise InjectedFaultError after completing their joins
    crash_tasks: frozenset[int]

    @property
    def total_joins(self) -> int:
        """Join checks the program performs (== expected ``joins_checked``)."""
        return sum(
            len(self.children.get(t, ()))
            + len(self.sibling_joins.get(t, ()))
            + len(self.grandchild_joins.get(t, ()))
            for t in range(self.n_tasks)
        )

    def join_edges(self) -> list[tuple[int, int]]:
        """Every (joiner, joinee) pair, in a deterministic order."""
        edges: list[tuple[int, int]] = []
        for t in range(self.n_tasks):
            for s in self.sibling_joins.get(t, ()):
                edges.append((t, s))
            for c in self.children.get(t, ()):
                edges.append((t, c))
            for g in self.grandchild_joins.get(t, ()):
                edges.append((t, g))
        return edges


@dataclass
class ChaosResult:
    """What one chaos run produced (after passing the invariant checks)."""

    spec: ChaosSpec
    policy_name: str
    runtime: str
    stats: VerifierStats
    #: (joiner, joinee) -> permitted?  Only for stable_permits policies.
    verdicts: Optional[dict[tuple[int, int], bool]]
    #: task ids whose failure was observed at a join
    failures_observed: frozenset[int]
    false_positives: int = 0
    deadlocks_avoided: int = 0
    violations: list[str] = field(default_factory=list)


def generate_spec(seed: int, *, max_tasks: int = 12, crash_rate: float = 0.0) -> ChaosSpec:
    """Derive a deadlock-free program spec from *seed*."""
    if max_tasks < 3:
        raise ValueError("max_tasks must be at least 3")
    rng = random.Random(f"chaos-spec|{seed}")
    n = rng.randint(3, max_tasks)
    parent: dict[int, int] = {i: rng.randrange(0, i) for i in range(1, n)}
    children: dict[int, list[int]] = {t: [] for t in range(n)}
    for i in range(1, n):
        children[parent[i]].append(i)

    sibling_joins: dict[int, list[int]] = {}
    for i in range(1, n):
        older = [j for j in children[parent[i]] if j < i]
        if older and rng.random() < 0.35:
            sibling_joins.setdefault(i, []).append(rng.choice(older))

    grandchild_joins: dict[int, list[int]] = {}
    for t in range(n):
        for c in children[t]:
            for g in children[c]:
                if rng.random() < 0.3:
                    grandchild_joins.setdefault(t, []).append(g)

    batch_parents = frozenset(
        t for t in range(n) if len(children[t]) >= 2 and rng.random() < 0.5
    )
    crash_tasks = frozenset(
        i for i in range(1, n) if crash_rate > 0.0 and rng.random() < crash_rate
    )
    return ChaosSpec(
        seed=seed,
        n_tasks=n,
        children={t: tuple(c) for t, c in children.items()},
        sibling_joins={t: tuple(s) for t, s in sibling_joins.items()},
        grandchild_joins={t: tuple(g) for t, g in grandchild_joins.items()},
        batch_parents=batch_parents,
        crash_tasks=crash_tasks,
    )


def _make_runtime(
    runtime: str,
    policy: Union[None, str, JoinPolicy],
    *,
    watchdog: Union[bool, float] = True,
    workers: int = 4,
):
    if runtime == "threaded":
        return TaskRuntime(policy, watchdog=watchdog, on_unjoined_failure="ignore")
    if runtime == "pool":
        return WorkSharingRuntime(
            policy, workers=workers, watchdog=watchdog, on_unjoined_failure="ignore"
        )
    raise ValueError(f"unknown runtime {runtime!r}; known: {RUNTIMES}")


def _run_spec(spec: ChaosSpec, rt, plan: FaultPlan):
    """Execute *spec* on runtime *rt*; returns (handles, futures, observed).

    ``handles``/``futures`` map task id -> TaskHandle / Future (the root
    has a handle but no future); ``observed`` is the set of task ids
    whose failure surfaced at some join.
    """
    futures: dict[int, object] = {}
    handles: dict[int, object] = {}
    observed: set[int] = set()
    guard = threading.Lock()

    def join_observed(future, tid: int) -> None:
        try:
            future.join()
        except TaskFailedError:
            with guard:
                observed.add(tid)

    def body(tid: int):
        handles[tid] = require_current_task()
        plan.sleep(("start", tid))
        kids = spec.children.get(tid, ())
        for cid in kids:
            futures[cid] = rt.fork(body, cid)
        for sib in spec.sibling_joins.get(tid, ()):
            plan.sleep(("pre-join", tid, sib))
            join_observed(futures[sib], sib)
        if tid in spec.batch_parents:
            batch = [futures[c] for c in kids]
            for c, outcome in zip(kids, rt.join_batch(batch, return_exceptions=True)):
                if isinstance(outcome, TaskFailedError):
                    with guard:
                        observed.add(c)
        else:
            for c in kids:
                plan.sleep(("pre-join", tid, c))
                join_observed(futures[c], c)
        for g in spec.grandchild_joins.get(tid, ()):
            plan.sleep(("pre-join", tid, g))
            join_observed(futures[g], g)
        if tid in spec.crash_tasks:
            raise InjectedFaultError(site=("task", tid))
        return tid

    rt.run(body, 0)
    return handles, futures, observed


def run_chaos_program(
    spec_or_seed: Union[int, ChaosSpec],
    *,
    policy: Union[None, str, JoinPolicy] = "TJ-SP",
    runtime: str = "threaded",
    max_tasks: int = 12,
    crash_rate: float = 0.0,
    plan: Optional[FaultPlan] = None,
    watchdog: Union[bool, float] = True,
    check: bool = True,
) -> ChaosResult:
    """Run one seeded chaos program and verify the runtime's invariants.

    With ``check=True`` (default) any violated invariant raises
    :class:`ChaosInvariantError`; with ``check=False`` violations are
    collected into ``result.violations`` instead (the CLI uses this to
    report all of them).
    """
    if isinstance(spec_or_seed, ChaosSpec):
        spec = spec_or_seed
    else:
        spec = generate_spec(spec_or_seed, max_tasks=max_tasks, crash_rate=crash_rate)
    if plan is None:
        plan = FaultPlan(seed=spec.seed)
    rt = _make_runtime(runtime, policy, watchdog=watchdog)
    handles, futures, observed = _run_spec(spec, rt, plan)

    violations: list[str] = []

    def require(cond: bool, message: str) -> None:
        if not cond:
            violations.append(message)

    require(
        set(futures) == set(range(1, spec.n_tasks)),
        f"expected futures for tasks 1..{spec.n_tasks - 1}, got {sorted(futures)}",
    )
    for tid, fut in futures.items():
        require(fut.done(), f"task {tid} future not done after run()")
    for tid, handle in handles.items():
        require(
            handle.state is not TaskState.BLOCKED,
            f"task {tid} left in BLOCKED state",
        )
    require(
        len(rt.blocked_joins()) == 0,
        f"join registry not empty: {rt.blocked_joins()}",
    )
    detector = rt.detector
    if detector is not None:
        require(
            len(detector.graph) == 0,
            f"Armus graph not empty: {detector.graph.edges()}",
        )
        require(
            detector.live_forced_edges == 0,
            f"{detector.live_forced_edges} forced edges still live",
        )
        require(
            detector.stats.deadlocks_avoided == 0,
            "deadlock-free program had a join refused",
        )
    stats = rt.verifier.stats
    require(
        stats.forks == spec.n_tasks,
        f"forks {stats.forks} != n_tasks {spec.n_tasks}",
    )
    require(
        stats.joins_checked == spec.total_joins,
        f"joins_checked {stats.joins_checked} != planned {spec.total_joins}",
    )
    if rt.watchdog is not None:
        require(
            rt.watchdog.deadlocks_detected == 0,
            "watchdog diagnosed a deadlock in a deadlock-free program",
        )
    require(
        observed == set(spec.crash_tasks),
        f"observed failures {sorted(observed)} != planned {sorted(spec.crash_tasks)}",
    )

    verdicts: Optional[dict[tuple[int, int], bool]] = None
    policy_obj = rt.policy
    if policy_obj.stable_permits and not violations:
        verdicts = {
            (a, b): policy_obj.permits(handles[a].vertex, handles[b].vertex)
            for a, b in spec.join_edges()
        }

    if check and violations:
        raise ChaosInvariantError(
            f"seed {spec.seed} policy {policy_obj.name} runtime {runtime}: "
            + "; ".join(violations)
        )
    return ChaosResult(
        spec=spec,
        policy_name=policy_obj.name,
        runtime=runtime,
        stats=stats,
        verdicts=verdicts,
        failures_observed=frozenset(observed),
        false_positives=detector.stats.false_positives if detector else 0,
        deadlocks_avoided=detector.stats.deadlocks_avoided if detector else 0,
        violations=violations,
    )


def run_with_verifier_faults(
    seed: int,
    *,
    policy: Union[str, JoinPolicy] = "TJ-SP",
    runtime: str = "threaded",
    max_tasks: int = 10,
    fault_rate: float = 0.2,
    max_retries: int = 50,
) -> ChaosResult:
    """Chaos run with :class:`FaultyPolicy` faults injected into ``permits``.

    Every join is retried until it succeeds (each retry is a fresh fault
    site).  A faulted ``permits`` call aborts *before* any statistics or
    waits-for edge are recorded, so the exact-accounting invariant
    becomes ``joins_checked == attempts - faults`` — which this function
    asserts, together with the usual clean-state invariants.

    Uses individual joins only: a fault inside a *batch* ``check_joins``
    discards the whole batch's accounting, which would make exactness
    unstateable.
    """
    spec = generate_spec(seed, max_tasks=max_tasks, crash_rate=0.0)
    # Strip batch parents: individual joins keep the accounting exact.
    spec = ChaosSpec(
        seed=spec.seed,
        n_tasks=spec.n_tasks,
        children=spec.children,
        sibling_joins=spec.sibling_joins,
        grandchild_joins=spec.grandchild_joins,
        batch_parents=frozenset(),
        crash_tasks=frozenset(),
    )
    plan = FaultPlan(seed=seed, verifier_fault_rate=fault_rate)
    if isinstance(policy, JoinPolicy):
        inner = policy
    else:
        from ..core.policy import make_policy

        inner = make_policy(policy)
    faulty = FaultyPolicy(inner, plan)
    rt = _make_runtime(runtime, faulty)

    futures: dict[int, object] = {}
    handles: dict[int, object] = {}
    counters = {"attempts": 0, "faults": 0}
    guard = threading.Lock()

    def join_with_retry(future) -> None:
        for _ in range(max_retries):
            with guard:
                counters["attempts"] += 1
            try:
                future.join()
                return
            except InjectedFaultError:
                with guard:
                    counters["faults"] += 1
        raise ChaosInvariantError(
            f"join still faulting after {max_retries} retries (seed {seed})"
        )

    def body(tid: int):
        handles[tid] = require_current_task()
        for cid in spec.children.get(tid, ()):
            futures[cid] = rt.fork(body, cid)
        for sib in spec.sibling_joins.get(tid, ()):
            join_with_retry(futures[sib])
        for c in spec.children.get(tid, ()):
            join_with_retry(futures[c])
        for g in spec.grandchild_joins.get(tid, ()):
            join_with_retry(futures[g])
        return tid

    rt.run(body, 0)

    stats = rt.verifier.stats
    expected = counters["attempts"] - counters["faults"]
    problems: list[str] = []
    if stats.joins_checked != expected:
        problems.append(
            f"joins_checked {stats.joins_checked} != attempts - faults {expected}"
        )
    if counters["faults"] != faulty.faults_injected:
        problems.append(
            f"harness saw {counters['faults']} faults, policy injected "
            f"{faulty.faults_injected}"
        )
    if expected != spec.total_joins:
        problems.append(
            f"successful joins {expected} != planned {spec.total_joins}"
        )
    detector = rt.detector
    if detector is not None and len(detector.graph) != 0:
        problems.append(f"Armus graph not empty: {detector.graph.edges()}")
    if len(rt.blocked_joins()) != 0:
        problems.append("join registry not empty after faulted run")
    if problems:
        raise ChaosInvariantError(
            f"seed {seed} policy {faulty.name} runtime {runtime}: "
            + "; ".join(problems)
        )
    return ChaosResult(
        spec=spec,
        policy_name=faulty.name,
        runtime=runtime,
        stats=stats,
        verdicts=None,
        failures_observed=frozenset(),
        false_positives=detector.stats.false_positives if detector else 0,
        deadlocks_avoided=detector.stats.deadlocks_avoided if detector else 0,
    )


@dataclass
class QuarantineChaosResult:
    """Outcome of one :func:`run_with_policy_quarantine` run."""

    seed: int
    policy_name: str
    runtime: str
    fail_mode: str
    stats: VerifierStats
    #: true deadlock pairs seeded after quarantine (fail-open only)
    deadlock_pairs: int
    #: refusals delivered by the Armus fallback (fail-open only)
    deadlocks_avoided: int
    #: joins that raised PolicyQuarantinedError (fail-closed only)
    quarantined_joins: int


def run_with_policy_quarantine(
    seed: int,
    *,
    policy: Union[str, JoinPolicy] = "TJ-SP",
    runtime: str = "threaded",
    fail_mode: str = "open",
    n_pairs: int = 3,
    n_children: int = 4,
) -> QuarantineChaosResult:
    """Crash the policy on its first ``permits`` call and prove degradation.

    The wrapped policy raises :class:`~repro.testing.faults.PolicyBugError`
    on *every* ``permits`` call (``policy_crash_rate=1.0``), so the very
    first join trips the verifier's quarantine.  What must happen next
    depends on ``fail_mode``:

    * ``"open"`` — the run degrades to Armus-only detection.  After a
      sacrificial join trips the quarantine, the program forks *n_pairs*
      genuine deadlock pairs (two tasks joining each other through
      exchanged futures).  The TJ layer is gone — every verdict is a
      blanket permit — yet the Armus fallback must refuse **exactly one**
      join per pair with :class:`~repro.errors.DeadlockAvoidedError`,
      proving the degraded run still catches every true deadlock.
    * ``"closed"`` — after the quarantine trips, every later
      policy-facing call must raise the *stored*
      :class:`~repro.errors.PolicyQuarantinedError` deterministically.
      The program forks *n_children* leaves up-front, then counts one
      quarantine error per attempted join.

    Either way the run must terminate with empty supervision state.
    """
    if fail_mode not in ("open", "closed"):
        raise ValueError(f"fail_mode must be 'open' or 'closed', got {fail_mode!r}")
    plan = FaultPlan(seed=seed, policy_crash_rate=1.0)
    if isinstance(policy, JoinPolicy):
        inner = policy
    else:
        from ..core.policy import make_policy

        inner = make_policy(policy)
    faulty = FaultyPolicy(inner, plan)
    if runtime == "threaded":
        rt = TaskRuntime(faulty, fail_mode=fail_mode, on_unjoined_failure="ignore")
    elif runtime == "pool":
        rt = WorkSharingRuntime(
            faulty, workers=max(4, 2 * n_pairs + 1), fail_mode=fail_mode,
            on_unjoined_failure="ignore",
        )
    else:
        raise ValueError(f"unknown runtime {runtime!r}; known: {RUNTIMES}")

    quarantined_joins = 0
    avoided = 0

    def leaf(value: int) -> int:
        return value

    def pair_member(idx: int, box: list, ready: threading.Event) -> str:
        ready.wait()
        try:
            box[1 - idx].join()
        except DeadlockAvoidedError:
            return "avoided"
        return "joined"

    def body_open():
        # 1. Trip the quarantine on a harmless join.
        sacrificial = rt.fork(leaf, -1)
        sacrificial.join()
        if not rt.verifier.quarantined:
            raise ChaosInvariantError(
                f"seed {seed}: sacrificial join did not trip the quarantine"
            )
        # 2. Seed true deadlocks under the degraded verifier.
        outcomes: list[tuple[str, str]] = []
        for _ in range(n_pairs):
            box: list = [None, None]
            ready = threading.Event()
            box[0] = rt.fork(pair_member, 0, box, ready)
            box[1] = rt.fork(pair_member, 1, box, ready)
            ready.set()
            outcomes.append((box[0].join(), box[1].join()))
        return outcomes

    def body_closed():
        nonlocal quarantined_joins
        # Fork everything *before* the first join: once quarantined, a
        # fail-closed verifier refuses on_fork too.
        futures = [rt.fork(leaf, i) for i in range(n_children)]
        for fut in futures:
            try:
                fut.join()
            except PolicyQuarantinedError:
                quarantined_joins += 1
        return quarantined_joins

    with warnings.catch_warnings():
        warnings.simplefilter("ignore", PolicyQuarantineWarning)
        outcomes = rt.run(body_open if fail_mode == "open" else body_closed)

    problems: list[str] = []
    stats = rt.verifier.stats
    if not rt.verifier.quarantined:
        problems.append("verifier not quarantined after guaranteed policy crash")
    if stats.policy_faults < 1:
        problems.append(f"policy_faults {stats.policy_faults} < 1")
    detector = rt.detector
    if fail_mode == "open":
        avoided = detector.stats.deadlocks_avoided if detector else 0
        if avoided != n_pairs:
            problems.append(
                f"degraded run avoided {avoided} deadlocks, expected {n_pairs}"
            )
        for i, pair in enumerate(outcomes):
            if sorted(pair) != ["avoided", "joined"]:
                problems.append(f"pair {i} outcomes {pair}, expected one refusal")
    else:
        if quarantined_joins != n_children:
            problems.append(
                f"{quarantined_joins} joins raised PolicyQuarantinedError, "
                f"expected {n_children}"
            )
        if stats.policy_faults != 1:
            problems.append(
                f"fail-closed policy_faults {stats.policy_faults} != 1 "
                "(stored error should be re-raised, not re-diagnosed)"
            )
    if detector is not None:
        if len(detector.graph) != 0:
            problems.append(f"Armus graph not empty: {detector.graph.edges()}")
        if detector.live_forced_edges != 0:
            problems.append(f"{detector.live_forced_edges} forced edges still live")
    if len(rt.blocked_joins()) != 0:
        problems.append("join registry not empty after quarantined run")
    if rt.watchdog is not None and rt.watchdog.deadlocks_detected != 0:
        problems.append("watchdog fired in a run the fallback should have handled")
    if problems:
        raise ChaosInvariantError(
            f"seed {seed} policy {faulty.name} runtime {runtime} "
            f"fail_mode {fail_mode}: " + "; ".join(problems)
        )
    return QuarantineChaosResult(
        seed=seed,
        policy_name=faulty.name,
        runtime=runtime,
        fail_mode=fail_mode,
        stats=stats,
        deadlock_pairs=n_pairs if fail_mode == "open" else 0,
        deadlocks_avoided=avoided,
        quarantined_joins=quarantined_joins,
    )


@dataclass
class RetryChaosResult:
    """Outcome of one :func:`run_with_task_retries` run."""

    spec: ChaosSpec
    policy_name: str
    runtime: str
    stats: VerifierStats
    #: leaf tasks given a retry policy (each fails ``fail_attempts`` times)
    flaky_tasks: frozenset[int]
    #: total re-forks performed by the supervisor
    retries: int


def run_with_task_retries(
    seed: int,
    *,
    policy: Union[str, JoinPolicy] = "TJ-SP",
    runtime: str = "threaded",
    max_tasks: int = 12,
    fail_attempts: int = 2,
    flaky_rate: float = 0.6,
) -> RetryChaosResult:
    """Chaos run where flaky leaf tasks succeed only after retries.

    A deterministic subset of *join-free leaves* (no children, no sibling
    joins — so a re-run of the task body performs no joins and forks no
    tasks) is forked with a :class:`~repro.runtime.retry.RetryPolicy` and
    made to fail ``fail_attempts`` times before succeeding.  Because each
    retry is a fresh fork re-verified by the policy, the exact-accounting
    invariants become:

    * ``forks == n_tasks + retries`` where
      ``retries == fail_attempts * len(flaky)``;
    * ``joins_checked == spec.total_joins`` exactly (retried bodies
      perform no joins);
    * zero failures observed at any join (retries exhaust *before* the
      parent sees anything);
    * supervision state drains: empty registry, empty Armus graph, **no
      live forced edges** (stale-verdict edges forced during a retry must
      be discharged by the joiner's wakeup), no watchdog diagnosis.
    """
    spec = generate_spec(seed, max_tasks=max_tasks, crash_rate=0.0)
    leaves = [t for t in range(1, spec.n_tasks) if not spec.children.get(t)]
    eligible = [t for t in leaves if not spec.sibling_joins.get(t)]
    if not eligible:
        # Every leaf joins a sibling: free the youngest leaf of its
        # sibling joins so at least one flaky candidate exists.
        victim = leaves[-1]
        sibling_joins = {
            t: s for t, s in spec.sibling_joins.items() if t != victim
        }
        spec = ChaosSpec(
            seed=spec.seed,
            n_tasks=spec.n_tasks,
            children=spec.children,
            sibling_joins=sibling_joins,
            grandchild_joins=spec.grandchild_joins,
            batch_parents=spec.batch_parents,
            crash_tasks=frozenset(),
        )
        eligible = [victim]
    rng = random.Random(f"chaos-retry|{seed}")
    n_flaky = max(1, round(len(eligible) * flaky_rate))
    flaky = frozenset(rng.sample(eligible, n_flaky))
    retry_spec = RetryPolicy(
        max_attempts=fail_attempts + 1,
        base_delay=0.0005,
        max_delay=0.002,
        seed=seed,
    )

    if isinstance(policy, JoinPolicy):
        inner = policy
    else:
        from ..core.policy import make_policy

        inner = make_policy(policy)
    rt = _make_runtime(runtime, inner)

    futures: dict[int, object] = {}
    attempts: dict[int, int] = {}
    failures_seen: list[int] = []
    guard = threading.Lock()

    def body(tid: int):
        require_current_task()
        for cid in spec.children.get(tid, ()):
            if cid in flaky:
                futures[cid] = rt.fork(body, cid, retry=retry_spec)
            else:
                futures[cid] = rt.fork(body, cid)
        for sib in spec.sibling_joins.get(tid, ()):
            try:
                futures[sib].join()
            except TaskFailedError:
                with guard:
                    failures_seen.append(sib)
        if tid in spec.batch_parents:
            kids = spec.children.get(tid, ())
            batch = [futures[c] for c in kids]
            for c, outcome in zip(kids, rt.join_batch(batch, return_exceptions=True)):
                if isinstance(outcome, TaskFailedError):
                    with guard:
                        failures_seen.append(c)
        else:
            for c in spec.children.get(tid, ()):
                try:
                    futures[c].join()
                except TaskFailedError:
                    with guard:
                        failures_seen.append(c)
        for g in spec.grandchild_joins.get(tid, ()):
            try:
                futures[g].join()
            except TaskFailedError:
                with guard:
                    failures_seen.append(g)
        if tid in flaky:
            with guard:
                attempts[tid] = attempts.get(tid, 0) + 1
                attempt = attempts[tid]
            if attempt <= fail_attempts:
                raise RuntimeError(f"flaky task {tid} attempt {attempt}")
        return tid

    rt.run(body, 0)

    expected_retries = fail_attempts * len(flaky)
    stats = rt.verifier.stats
    problems: list[str] = []
    if failures_seen:
        problems.append(f"joins observed failures {sorted(failures_seen)}")
    if rt.tasks_retried != expected_retries:
        problems.append(
            f"tasks_retried {rt.tasks_retried} != expected {expected_retries}"
        )
    if stats.forks != spec.n_tasks + expected_retries:
        problems.append(
            f"forks {stats.forks} != n_tasks + retries "
            f"{spec.n_tasks + expected_retries}"
        )
    if stats.joins_checked != spec.total_joins:
        problems.append(
            f"joins_checked {stats.joins_checked} != planned {spec.total_joins}"
        )
    for tid in flaky:
        if attempts.get(tid, 0) != fail_attempts + 1:
            problems.append(
                f"flaky task {tid} ran {attempts.get(tid, 0)} attempts, "
                f"expected {fail_attempts + 1}"
            )
    detector = rt.detector
    if detector is not None:
        if len(detector.graph) != 0:
            problems.append(f"Armus graph not empty: {detector.graph.edges()}")
        if detector.live_forced_edges != 0:
            problems.append(f"{detector.live_forced_edges} forced edges still live")
        if detector.stats.deadlocks_avoided != 0:
            problems.append("deadlock-free retry program had a join refused")
    if len(rt.blocked_joins()) != 0:
        problems.append("join registry not empty after retry run")
    if rt.watchdog is not None and rt.watchdog.deadlocks_detected != 0:
        problems.append("watchdog diagnosed a deadlock in a retry run")
    if problems:
        raise ChaosInvariantError(
            f"seed {seed} policy {inner.name} runtime {runtime}: "
            + "; ".join(problems)
        )
    return RetryChaosResult(
        spec=spec,
        policy_name=inner.name,
        runtime=runtime,
        stats=stats,
        flaky_tasks=flaky,
        retries=rt.tasks_retried,
    )


@dataclass
class ServiceChaosResult:
    """Outcome of one :func:`run_with_service_faults` run."""

    spec: ChaosSpec
    policy_name: str
    runtime: str
    #: stats of the all-local reference run
    local_stats: VerifierStats
    #: client-side stats of the remote run (every check counted once)
    remote_stats: VerifierStats
    #: was the sidecar kill-9ed (per the plan)?
    sidecar_killed: bool
    #: join-check count at which the kill was scheduled
    kill_after_checks: int
    #: connection drops injected (sidecar stayed up)
    drops_injected: int
    #: degradation episodes the client went through
    degradations: int
    #: reconcile passes (gap replays) the client performed
    reconciles: int
    #: verdict records recovered from the sidecar's journal
    journal_verdicts: int
    #: (joiner, joinee, local, remote) tuples that disagreed — must be empty
    verdict_mismatches: list


def run_with_service_faults(
    seed: int,
    *,
    policy: Union[str, JoinPolicy] = "TJ-SP",
    runtime: str = "threaded",
    max_tasks: int = 12,
    service_crash_rate: float = 1.0,
    connection_drop_rate: float = 0.0,
    liveness_timeout: float = 0.5,
    journal_dir: Optional[str] = None,
    check: bool = True,
) -> ServiceChaosResult:
    """Kill -9 the verification sidecar mid-run; prove nothing diverged.

    Runs the same seeded deadlock-free program twice: once all-local
    (the reference), once against a real sidecar subprocess with faults
    injected per the :class:`FaultPlan` —

    * ``service_crash_rate`` decides whether the sidecar is SIGKILLed;
      *when* is a deterministic join-check count drawn from the seed, so
      the kill lands mid-workload rather than at a wall-clock instant;
    * ``connection_drop_rate`` decides, per join-check count, whether
      the client's TCP link is severed while the sidecar stays healthy.

    Afterwards the sidecar is restarted on the same port with the same
    journal (rebuilding its sessions), the client reconciles, and the
    runner asserts:

    * the workload completed with the exact planned fork/join counts on
      the *client* — no unverified join ever unblocked;
    * every verdict the sidecar's journal holds (live, recheck-replayed,
      and restart-re-derived alike) equals the reference run's verdict
      for that edge — zero divergence;
    * the journal's verdict count reaches the client's ``joins_checked``
      — reconcile restored the server's stats exactly.
    """
    import os
    import tempfile
    import time

    from ..service.client import RemoteVerifier
    from ..service.proc import SidecarProcess
    from ..tools.journal import read_journal

    spec = generate_spec(seed, max_tasks=max_tasks, crash_rate=0.0)
    local = run_chaos_program(spec, policy=policy, runtime=runtime)

    plan = FaultPlan(
        seed=seed,
        service_crash_rate=service_crash_rate,
        connection_drop_rate=connection_drop_rate,
    )
    kill_planned = plan.service_crash(("sidecar", seed))
    total = max(1, spec.total_joins)
    kill_after = 1 + random.Random(f"{seed}|service-kill-point").randrange(total)
    drop_points = sorted(
        k for k in range(1, total + 1) if plan.connection_drop(("join-count", k))
    )

    owns_dir = journal_dir is None
    if owns_dir:
        tmp = tempfile.TemporaryDirectory(prefix="repro-service-chaos-")
        journal_dir = tmp.name
    journal_path = os.path.join(journal_dir, f"sidecar-{seed}.jsonl")

    if isinstance(policy, JoinPolicy):
        policy_obj = policy
    else:
        from ..core.policy import make_policy

        policy_obj = make_policy(policy)
    session_id = f"chaos-service-{seed}"
    problems: list[str] = []
    drops_done = 0

    with warnings.catch_warnings():
        from ..errors import ServiceDegradedWarning

        warnings.simplefilter("ignore", ServiceDegradedWarning)
        sidecar = SidecarProcess(journal_path=journal_path, ack_every=8)
        try:
            rv = RemoteVerifier(
                sidecar.url,
                policy_obj,
                fail_mode="open",
                session=session_id,
                liveness_timeout=liveness_timeout,
            )
            if runtime == "threaded":
                rt = TaskRuntime(
                    policy_obj,
                    fail_mode="open",
                    verifier=rv,
                    on_unjoined_failure="ignore",
                )
            elif runtime == "pool":
                rt = WorkSharingRuntime(
                    policy_obj,
                    workers=4,
                    fail_mode="open",
                    verifier=rv,
                    on_unjoined_failure="ignore",
                )
            else:
                raise ValueError(f"unknown runtime {runtime!r}; known: {RUNTIMES}")

            stop_monitor = threading.Event()

            def monitor() -> None:
                nonlocal drops_done
                fired_kill = False
                pending_drops = list(drop_points)
                while not stop_monitor.wait(0.001):
                    checked = rv.stats.joins_checked
                    if kill_planned and not fired_kill and checked >= kill_after:
                        sidecar.kill9()
                        fired_kill = True
                    while pending_drops and checked >= pending_drops[0]:
                        pending_drops.pop(0)
                        if sidecar.alive() and not rv.degraded:
                            rv._test_drop_connection()
                            drops_done += 1

            monitor_thread = threading.Thread(target=monitor, daemon=True)
            monitor_thread.start()
            try:
                _run_spec(spec, rt, plan.without_faults())
            finally:
                stop_monitor.set()
                monitor_thread.join(timeout=5.0)

            # The kill must happen even if the workload outran the monitor.
            if kill_planned and sidecar.alive():
                sidecar.kill9()
            if not sidecar.alive():
                sidecar.restart()

            # Reconcile: reconnect (replays the event gap + rechecks), then
            # wait for the journal to hold one verdict per client check.
            remote_stats = rv.stats
            deadline = time.monotonic() + 20.0
            while time.monotonic() < deadline:
                if rv.degraded:
                    rv.try_reconnect()
                records = read_journal(journal_path).records
                n_verdicts = sum(
                    1
                    for r in records
                    if r.get("kind") == "verdict" and r.get("session") == session_id
                )
                if not rv.degraded and n_verdicts >= remote_stats.joins_checked:
                    break
                time.sleep(0.05)
            rv.close()
        finally:
            sidecar.stop()

        result = read_journal(journal_path)

    # Map the journal's rids back to spec task ids by walking the fork
    # tree: a parent forks its children sequentially from its own thread
    # in spec order, and rids are assigned at fork time, so within one
    # parent ascending rid == ascending spec child id.
    rid_to_tid: dict[int, int] = {}
    verdict_mismatches: list = []
    n_verdicts = 0
    if local.verdicts is not None:
        local_by_edge = dict(local.verdicts)
        tree: dict[int, list[int]] = {}
        root_rid: Optional[int] = None
        for r in result.records:
            if r.get("session") != session_id:
                continue
            if r.get("kind") == "init":
                root_rid = r["task"]
            elif r.get("kind") == "fork":
                tree.setdefault(r["parent"], []).append(r["child"])
        if root_rid is not None:
            rid_to_tid[root_rid] = 0
            stack = [root_rid]
            ok_map = True
            while stack:
                prid = stack.pop()
                ptid = rid_to_tid[prid]
                kids_r = sorted(set(tree.get(prid, ())))
                kids_t = list(spec.children.get(ptid, ()))
                if len(kids_r) != len(kids_t):
                    ok_map = False
                    break
                # rids are assigned in fork order and _run_spec forks a
                # task's children in spec order from the parent's own
                # thread, so ascending rid == ascending spec child id.
                for rk, tk in zip(kids_r, kids_t):
                    rid_to_tid[rk] = tk
                    stack.append(rk)
            if not ok_map:
                problems.append("journal fork tree does not match the spec")
            else:
                for r in result.records:
                    if (
                        r.get("session") != session_id
                        or r.get("kind") != "verdict"
                    ):
                        continue
                    n_verdicts += 1
                    a = rid_to_tid.get(r["waiter"])
                    b = rid_to_tid.get(r["joinee"])
                    if a is None or b is None:
                        problems.append(f"verdict references unknown rid: {r}")
                        continue
                    want = local_by_edge.get((a, b))
                    if want is not None and bool(r["ok"]) != want:
                        verdict_mismatches.append((a, b, want, bool(r["ok"])))
        else:
            problems.append("journal holds no init record for the session")
    else:
        n_verdicts = sum(
            1
            for r in result.records
            if r.get("kind") == "verdict" and r.get("session") == session_id
        )

    remote_stats = rv.stats
    if remote_stats.forks != spec.n_tasks:
        problems.append(
            f"remote forks {remote_stats.forks} != n_tasks {spec.n_tasks}"
        )
    if remote_stats.joins_checked != spec.total_joins:
        problems.append(
            f"remote joins_checked {remote_stats.joins_checked} "
            f"!= planned {spec.total_joins}"
        )
    if kill_planned and rv.degradations < 1:
        problems.append("sidecar was killed but the client never degraded")
    if n_verdicts < remote_stats.joins_checked:
        problems.append(
            f"journal verdicts {n_verdicts} < client checks "
            f"{remote_stats.joins_checked}: reconcile did not restore stats"
        )
    if verdict_mismatches:
        problems.append(
            f"{len(verdict_mismatches)} verdicts diverged from the local run: "
            f"{verdict_mismatches[:5]}"
        )

    if owns_dir:
        tmp.cleanup()
    if check and problems:
        raise ChaosInvariantError(
            f"seed {seed} policy {policy_obj.name} runtime {runtime} (service): "
            + "; ".join(problems)
        )
    return ServiceChaosResult(
        spec=spec,
        policy_name=policy_obj.name,
        runtime=runtime,
        local_stats=local.stats,
        remote_stats=remote_stats,
        sidecar_killed=kill_planned,
        kill_after_checks=kill_after,
        drops_injected=drops_done,
        degradations=rv.degradations,
        reconciles=rv.reconciles,
        journal_verdicts=n_verdicts,
        verdict_mismatches=verdict_mismatches,
    )


# ----------------------------------------------------------------------
# multi-process chaos: SIGKILL a worker mid-run, prove nothing diverged
# ----------------------------------------------------------------------
def _procs_leaf(x: int) -> int:
    """A deterministic leaf body (module level: it crosses processes)."""
    return (x * 2654435761 + 97) % 1000003


def _procs_chaos_subtree(rt, base: int, fanout: int) -> int:
    """One dispatched subtree: fork *fanout* leaves, join them all."""
    futs = [rt.fork(_procs_leaf, base + i) for i in range(fanout)]
    return sum(rt.join_batch(futs))


@dataclass
class ProcsChaosResult:
    """Outcome of one :func:`run_procs_divergence` run."""

    seed: int
    workers: int
    #: dispatched subtree count and per-subtree leaf fanout
    dispatches: int
    fanout: int
    spawn_paths: str
    #: worker index SIGKILLed mid-run (None when no kill was requested)
    killed_worker: Optional[int]
    worker_deaths: int
    tasks_redispatched: int
    orphan_results: int
    #: merged local/cross/degraded join counts from the procs run
    join_stats: dict
    #: joins rejected in the all-local reference run (must be 0)
    local_rejected: int
    #: joins rejected across all process shards (must be 0)
    procs_rejected: int
    #: (index, local, procs) result triples that disagreed — must be empty
    divergences: list
    #: merged fleet metrics snapshot (None when telemetry was off)
    fleet_metrics: Optional[dict] = None
    #: introspection endpoint URL the run served (None when not requested)
    introspect_url: Optional[str] = None


def run_procs_divergence(
    seed: int,
    *,
    workers: int = 4,
    tasks: int = 2000,
    fanout: int = 20,
    spawn_paths: str = "auto",
    sidecar: Optional[str] = None,
    kill_worker: bool = True,
    check: bool = True,
    introspect: Optional[int] = None,
) -> ProcsChaosResult:
    """SIGKILL a worker mid-run; prove verdicts and results never diverge.

    Runs the same seeded fork-heavy program twice — once all-local on a
    :class:`~repro.runtime.threaded.TaskRuntime` (the reference), once on
    a :class:`~repro.runtime.procs.ProcessRuntime` with *workers* worker
    processes — and compares every subtree result.  When *kill_worker*
    is set, a monitor thread SIGKILLs a seed-chosen worker once a
    seed-chosen fraction of the dispatches has completed, so the kill
    lands mid-workload and strands genuinely in-flight tasks; the
    redispatch path must recover them under fresh vertices without a
    single result or verdict diverging.

    *tasks* is the total leaf count; it is split into ``tasks // fanout``
    dispatched subtrees of *fanout* leaves each.
    """
    import math
    import os
    import signal
    import time

    from ..runtime.procs import ProcessRuntime

    dispatches = max(1, math.ceil(tasks / fanout))
    rng = random.Random(f"{seed}|procs-chaos")
    bases = [rng.randrange(1 << 20) for _ in range(dispatches)]

    # --- the all-local reference: same shape, same verifier machinery --
    local_rt = TaskRuntime("TJ-SP")

    def local_root():
        futs = [
            local_rt.fork(_procs_chaos_subtree, local_rt, b, fanout)
            for b in bases
        ]
        return local_rt.join_batch(futs)

    local_results = local_rt.run(local_root)
    local_rejected = local_rt.verifier.stats.snapshot()["joins_rejected"]

    # --- the multi-process run, with the seeded kill ------------------
    rt = ProcessRuntime(
        workers=workers,
        spawn_paths=spawn_paths,
        sidecar=sidecar,
        introspect=introspect,
    )
    victim_index = rng.randrange(workers) if kill_worker else None
    kill_at = 1 + rng.randrange(max(1, dispatches // 2)) if kill_worker else None
    killed: list[int] = []
    stop_monitor = threading.Event()

    def monitor() -> None:
        while not stop_monitor.wait(0.005):
            if rt.tasks_completed >= kill_at:
                victim = rt._workers[victim_index].proc
                if victim.is_alive():
                    os.kill(victim.pid, signal.SIGKILL)
                    killed.append(victim.pid)
                return

    def procs_root():
        if kill_worker:
            threading.Thread(target=monitor, daemon=True).start()
        futs = [rt.fork(_procs_chaos_subtree, b, fanout) for b in bases]
        return rt.join_batch(futs)

    t0 = time.perf_counter()
    try:
        procs_results = rt.run(procs_root)
    finally:
        stop_monitor.set()
    elapsed = time.perf_counter() - t0

    from .. import obs as _obs_mod

    fleet = rt.fleet_metrics() if _obs_mod.active() is not None else None
    join_stats = rt.join_stats()
    procs_rejected = sum(
        s.get("joins_rejected", 0) for s in rt._worker_stats.values()
    ) + rt.verifier.stats.snapshot()["joins_rejected"]

    divergences = [
        (i, a, b)
        for i, (a, b) in enumerate(zip(local_results, procs_results))
        if a != b
    ]

    problems: list[str] = []
    if divergences:
        problems.append(
            f"{len(divergences)} subtree results diverged: {divergences[:5]}"
        )
    if len(procs_results) != dispatches:
        problems.append(
            f"procs run returned {len(procs_results)} results, "
            f"expected {dispatches}"
        )
    if local_rejected:
        problems.append(f"reference run rejected {local_rejected} joins")
    if procs_rejected:
        problems.append(f"procs run rejected {procs_rejected} joins")
    if kill_worker and not killed:
        problems.append("kill was requested but the victim outlived the run")
    if kill_worker and killed and rt.worker_deaths < 1:
        problems.append("worker was killed but no death was recorded")
    expected_cross = dispatches * fanout
    if not killed and join_stats["cross_joins"] < expected_cross:
        # A SIGKILLed worker takes its unreported stats cells with it, so
        # the exact floor only holds for kill-free runs.
        problems.append(
            f"cross joins {join_stats['cross_joins']} < planned "
            f"{expected_cross}: some subtree joins were never verified"
        )
    if killed and join_stats["cross_joins"] <= 0:
        problems.append("no cross-process joins were ever reported")
    if check and problems:
        raise ChaosInvariantError(
            f"seed {seed} procs workers={workers} spawn_paths={spawn_paths} "
            f"({elapsed:.1f}s): " + "; ".join(problems)
        )
    return ProcsChaosResult(
        seed=seed,
        workers=workers,
        dispatches=dispatches,
        fanout=fanout,
        spawn_paths=rt.spawn_paths,
        killed_worker=victim_index if killed else None,
        worker_deaths=rt.worker_deaths,
        tasks_redispatched=rt.tasks_redispatched,
        orphan_results=rt.orphan_results,
        join_stats=join_stats,
        local_rejected=local_rejected,
        procs_rejected=procs_rejected,
        divergences=divergences,
        fleet_metrics=fleet,
        introspect_url=rt.introspect_url,
    )


# ----------------------------------------------------------------------
# the predict loop: lucky journals, counterfactual deadlocks
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PredictSpec:
    """A seeded fork/join program that *can* deadlock — but whose
    recorded runs complete cleanly.

    Unlike :class:`ChaosSpec` (deadlock-free by construction), a
    predict spec deliberately plants conflicting-direction join intents
    (sibling cycles).  :func:`run_predict_program` executes it under a
    small ``default_join_timeout``: on schedules where a cycle closes,
    the deadline rescues the blocked joins and every task still
    terminates — leaving a journal of a *clean* run whose
    ``block``/``unblock``-without-``join`` pattern is exactly what the
    predictor (:mod:`repro.predict`) needs to flag the cycle other
    schedules realize.
    """

    seed: int
    #: task id -> its actions in program order, mirroring
    #: :class:`repro.predict.TraceProgram` (root is task 0)
    actions: dict[int, tuple[tuple[str, int], ...]]
    #: the planted join cycles, as task-id tuples (empty: a safe spec)
    planted_cycles: tuple[tuple[int, ...], ...]

    @property
    def n_tasks(self) -> int:
        return len(self.actions)

    @property
    def has_cycle(self) -> bool:
        return bool(self.planted_cycles)


@dataclass
class PredictChaosResult:
    """What one :func:`run_predict_loop` sweep established."""

    seed: int
    programs: int
    #: journal paths, one per program, in seed order
    journals: list[str] = field(default_factory=list)
    #: (journal path, PredictedDeadlock) for every flagged schedule
    predictions: list[tuple[str, object]] = field(default_factory=list)
    #: programs whose journal was flagged
    flagged_programs: int = 0
    #: flagged programs whose recorded run completed cleanly
    clean_flagged: int = 0
    violations: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations


def generate_predict_spec(
    seed: int, *, max_children: int = 4, cycle_rate: float = 0.75
) -> PredictSpec:
    """Derive a predict-corpus program from *seed*.

    The root forks 2..``max_children`` children (some of which fork a
    grandchild) and joins them all at the end.  With probability
    ``cycle_rate`` a cycle of 2 or 3 siblings is planted — each member
    joins the next around the ring; ring direction ignores sibling age,
    so some edge always violates younger-joins-older (the classic TJ
    denial, making the cycle avoidable under TJ-SP).  Remaining
    children may pick up a *safe* younger-joins-older edge instead.
    """
    rng = random.Random(f"predict-spec|{seed}")
    n_children = rng.randint(2, max(2, max_children))
    children = list(range(1, n_children + 1))
    next_id = n_children + 1
    actions: dict[int, list[tuple[str, int]]] = {0: []}
    for c in children:
        actions[c] = []
    # a couple of grandchildren: forked and joined by their parent
    grandchildren: dict[int, int] = {}
    for c in children:
        if rng.random() < 0.4:
            g = next_id
            next_id += 1
            grandchildren[c] = g
            actions[g] = []

    planted: list[tuple[int, ...]] = []
    in_cycle: set[int] = set()
    if len(children) >= 2 and rng.random() < cycle_rate:
        size = rng.choice((2, 3)) if len(children) >= 3 else 2
        ring = rng.sample(children, size)
        planted.append(tuple(ring))
        in_cycle.update(ring)
        for at, member in enumerate(ring):
            actions[member].append(("join", ring[(at + 1) % size]))

    for c in children:
        if c not in in_cycle:
            older = [s for s in children if s < c]
            if older and rng.random() < 0.5:
                actions[c].append(("join", rng.choice(older)))

    # forks first in every task's program order, then the joins above
    for c in children:
        if c in grandchildren:
            g = grandchildren[c]
            actions[c] = [("fork", g)] + actions[c] + [("join", g)]
    actions[0] = [("fork", c) for c in children] + [("join", c) for c in children]
    return PredictSpec(
        seed=seed,
        actions={t: tuple(a) for t, a in actions.items()},
        planted_cycles=tuple(planted),
    )


def run_predict_program(
    spec_or_seed: Union[int, PredictSpec],
    journal_path: str,
    *,
    policy: Union[None, str, JoinPolicy] = None,
    join_timeout: float = 0.1,
    drain_timeout: float = 30.0,
) -> PredictSpec:
    """Execute a predict spec on the threaded runtime, journalling to
    *journal_path*.

    Every join (including the planted cycles) runs under
    ``default_join_timeout=join_timeout`` with the watchdog off, so a
    closed cycle is rescued by deadlines rather than diagnosed — the
    run completes cleanly and the journal records the block/unblock
    pattern.  The root drains all forked tasks before returning so the
    journal's ``complete`` records are durable before it closes.
    """
    import time as _time

    from ..errors import DeadlockDetectedError, JoinTimeoutError

    spec = (
        spec_or_seed
        if isinstance(spec_or_seed, PredictSpec)
        else generate_predict_spec(spec_or_seed)
    )
    rt = TaskRuntime(
        policy,
        fallback=True,
        journal=journal_path,
        default_join_timeout=join_timeout,
        watchdog=False,
        on_unjoined_failure="ignore",
    )
    futures: dict[int, object] = {}
    issued: dict[int, threading.Event] = {
        t: threading.Event() for t in spec.actions
    }
    rescues = (
        JoinTimeoutError,
        DeadlockAvoidedError,
        DeadlockDetectedError,
        PolicyQuarantinedError,
        TaskFailedError,
    )

    def body(tid: int):
        for kind, target in spec.actions[tid]:
            if kind == "fork":
                futures[target] = rt.fork(body, target)
                issued[target].set()
                continue
            while not issued[target].wait(0.05):
                pass
            try:
                futures[target].join()
            except rescues:
                pass
            except Exception:  # policy violations without fallback, etc.
                pass
        if tid == 0:
            deadline = _time.monotonic() + drain_timeout
            while any(not f.done() for f in futures.values()):
                if _time.monotonic() > deadline:
                    raise ChaosInvariantError(
                        f"predict seed {spec.seed}: forked tasks failed to "
                        f"quiesce within {drain_timeout}s"
                    )
                _time.sleep(0.002)
        return tid

    rt.run(body, 0)
    return spec


def run_predict_loop(
    programs: int = 4,
    *,
    seed: int = 0,
    journal_dir: Optional[str] = None,
    policies: tuple[str, ...] = ("TJ-SP", "KJ-VC"),
    max_schedules: int = 256,
    check: bool = True,
    program_id: Optional[int] = None,
) -> PredictChaosResult:
    """The closed predict → simulate → avoid loop over a seeded corpus.

    For each program: run it journalled under ``policy=None`` (clean,
    timeout-rescued), predict over the journal, then assert the
    three-way invariant for every prediction —

    1. replaying the witness schedule through ``SimRuntime`` under
       ``policy=None`` reproduces the deadlock with the *same* blocked
       cycle;
    2. the same witness under each avoidance policy (TJ-SP, KJ-VC with
       the Armus fallback) never deadlocks — the refusal lands where
       the cycle would have closed;
    3. a program with a planted cycle is flagged, and a journal from a
       clean recorded run yields at least one counterfactual flag
       across the corpus.

    ``program_id`` restricts the sweep to one program index (its seed is
    ``seed + program_id``), which is what the single-line repro command
    printed on a failure uses.
    """
    import os
    import tempfile

    from ..predict import predict_deadlocks

    if journal_dir is None:
        journal_dir = tempfile.mkdtemp(prefix="repro-predict-")
    else:
        os.makedirs(journal_dir, exist_ok=True)
    result = PredictChaosResult(seed=seed, programs=programs)
    todo = [program_id] if program_id is not None else list(range(programs))
    for k in todo:
        program_seed = seed + k
        path = f"{journal_dir}/predict-{program_seed}.jsonl"
        spec = run_predict_program(program_seed, path)
        result.journals.append(path)
        report = predict_deadlocks(
            path, policies=policies, max_schedules=max_schedules
        )
        where = f"program {k} (seed {program_seed})"
        if report.skipped is not None:
            result.violations.append(f"{where}: prediction skipped: {report.skipped}")
            continue
        if spec.has_cycle and not report.flagged:
            result.violations.append(
                f"{where}: planted cycle {spec.planted_cycles} was not flagged"
            )
        if not spec.has_cycle and report.flagged:
            result.violations.append(
                f"{where}: cycle-free program was flagged: "
                f"{[p.cycle for p in report.predictions]}"
            )
        if report.flagged:
            result.flagged_programs += 1
            if report.clean_run:
                result.clean_flagged += 1
        for pred in report.predictions:
            result.predictions.append((path, pred))
            # (1) exact reproduction under policy=None
            repro = pred.reproduce()
            if repro.deadlock is None:
                result.violations.append(
                    f"{where}: witness for {pred.cycle} did not deadlock "
                    f"under policy=None (verdict {repro.verdict})"
                )
            elif set(repro.deadlock) != set(pred.cycle):
                result.violations.append(
                    f"{where}: witness realized cycle {repro.deadlock}, "
                    f"predicted {pred.cycle}"
                )
            # (2) avoided under every policy along the same witness
            for policy in policies:
                replay = pred.program.run_sim(
                    policy, fallback=True, schedule=pred.schedule
                )
                if replay.deadlock is not None:
                    result.violations.append(
                        f"{where}: {policy} deadlocked on the witness "
                        f"for {pred.cycle}: {replay.deadlock}"
                    )
                if pred.verdicts.get(policy) != replay.verdict:
                    result.violations.append(
                        f"{where}: {policy} verdict drifted between "
                        f"prediction ({pred.verdicts.get(policy)}) and "
                        f"replay ({replay.verdict})"
                    )
    if program_id is None and not any(
        "clean" in v for v in result.violations
    ) and result.flagged_programs and not result.clean_flagged:
        result.violations.append(
            "no flagged journal came from a clean recorded run"
        )
    if check and result.violations:
        raise ChaosInvariantError(
            f"predict loop seed {seed}: " + "; ".join(result.violations)
        )
    return result


def repro_command(kind: str, seed: int, program_id: Optional[int] = None, **flags) -> str:
    """The single-line command that reproduces one failing chaos slice.

    ``kind`` is the chaos sub-mode (``""`` for the plain sweep,
    ``"--recovery"``, ``"--predict"``, ...); extra flags are rendered as
    ``--flag value`` with underscores dashed.  Printed by the CLI on
    the first failure so a red run is reproducible without scraping
    pytest output.
    """
    parts = ["repro chaos"]
    if kind:
        parts.append(kind)
    parts.append(f"--seed {seed}")
    if program_id is not None:
        parts.append(f"--program-id {program_id}")
    for flag, value in flags.items():
        if value is None or value is False:
            continue
        name = "--" + flag.replace("_", "-")
        parts.append(name if value is True else f"{name} {value}")
    return " ".join(parts)
