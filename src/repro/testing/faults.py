"""Seeded, site-keyed fault injection.

Every injection decision is a pure function of ``(seed, site)``: the
plan seeds a private :class:`random.Random` with the string
``f"{seed}|{site!r}"`` (string seeding hashes through SHA-512, so the
stream is identical across processes and immune to ``PYTHONHASHSEED``).
Two runs of the same program with the same plan therefore crash, delay
and fault at exactly the same sites — and a plan with delays stripped
(:meth:`FaultPlan.without_delays`) makes *identical* crash/fault
decisions, which is what lets the chaos suite assert that verdict
streams do not depend on timing.

Sites are arbitrary hashable-and-reprable keys chosen by the harness,
conventionally tuples like ``("task", 7)`` or ``("join", 3, 5)``.  Key
sites by *program structure*, never by wall-clock order, or determinism
is lost.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, replace
from typing import Optional

from ..core.policy import JoinPolicy
from ..errors import InjectedFaultError

__all__ = ["FaultPlan", "FaultyPolicy", "PolicyBugError"]


class PolicyBugError(RuntimeError):
    """An injected *internal* policy failure (a simulated implementation bug).

    Deliberately a plain :class:`RuntimeError`, **not** a
    :class:`~repro.errors.ReproError` and not an
    :class:`~repro.errors.InjectedFaultError`: it models a third-party
    policy blowing up with an arbitrary exception, which is exactly what
    the verifier's quarantine fault boundary must catch.  (The chaos
    suite's ``InjectedFaultError`` contract — faults propagate unchanged
    under the default ``fail_mode="raise"`` — is unaffected.)
    """

    def __init__(self, site: object = None):
        self.site = site
        super().__init__(f"injected policy bug at {site!r}")


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic schedule of injected faults.

    Rates are independent probabilities evaluated per *site*:

    * ``crash_rate`` — probability :meth:`should_crash` returns True;
      the harness raises :class:`~repro.errors.InjectedFaultError` there;
    * ``delay_rate`` / ``max_delay`` — probability and bound (seconds)
      of a :meth:`sleep` at a site;
    * ``verifier_fault_rate`` — probability a :class:`FaultyPolicy`
      ``permits`` call raises instead of answering;
    * ``policy_crash_rate`` — probability a :class:`FaultyPolicy`
      ``permits`` call raises :class:`PolicyBugError` (a simulated
      *internal* policy bug, the kind the verifier's quarantine fault
      boundary must absorb — as opposed to an ``InjectedFaultError``,
      which the chaos contract requires to propagate unchanged under
      ``fail_mode="raise"``);
    * ``service_crash_rate`` — probability :meth:`service_crash` returns
      True at a site; the service chaos runner kill-9s the verification
      sidecar there (the client must degrade, stay sound, and reconcile
      when the sidecar returns);
    * ``connection_drop_rate`` — probability :meth:`connection_drop`
      returns True; the harness severs the client's TCP link at that
      site without touching the (healthy) sidecar, exercising the
      degrade-and-resume path in isolation.
    """

    seed: int = 0
    crash_rate: float = 0.0
    delay_rate: float = 0.0
    max_delay: float = 0.002
    verifier_fault_rate: float = 0.0
    policy_crash_rate: float = 0.0
    service_crash_rate: float = 0.0
    connection_drop_rate: float = 0.0

    def _rng(self, site: object) -> random.Random:
        return random.Random(f"{self.seed}|{site!r}")

    # ------------------------------------------------------------------
    def decide(self, site: object, rate: float) -> bool:
        """The deterministic coin flip for *site* at probability *rate*."""
        if rate <= 0.0:
            return False
        return self._rng(("decide", site)).random() < rate

    def should_crash(self, site: object) -> bool:
        return self.decide(("crash", site), self.crash_rate)

    def crash_if_planned(self, site: object) -> None:
        """Raise :class:`InjectedFaultError` when *site* is scheduled to crash."""
        if self.should_crash(site):
            raise InjectedFaultError(site=site)

    def delay(self, site: object) -> float:
        """The planned delay (seconds) at *site*; 0.0 when none."""
        if not self.decide(("delay", site), self.delay_rate):
            return 0.0
        return self._rng(("delay-length", site)).uniform(0.0, self.max_delay)

    def sleep(self, site: object) -> float:
        """Sleep the planned delay at *site*; returns the slept duration."""
        pause = self.delay(site)
        if pause > 0.0:
            time.sleep(pause)
        return pause

    def verifier_fault(self, site: object) -> bool:
        return self.decide(("verifier", site), self.verifier_fault_rate)

    def policy_crash(self, site: object) -> bool:
        return self.decide(("policy-crash", site), self.policy_crash_rate)

    def service_crash(self, site: object) -> bool:
        """Should the verification sidecar be kill-9ed at *site*?"""
        return self.decide(("service-crash", site), self.service_crash_rate)

    def connection_drop(self, site: object) -> bool:
        """Should the client's sidecar connection be severed at *site*?"""
        return self.decide(("connection-drop", site), self.connection_drop_rate)

    # ------------------------------------------------------------------
    def without_delays(self) -> "FaultPlan":
        """The same plan with delays stripped; crash/fault decisions are
        keyed by site, not by history, so they are unchanged."""
        return replace(self, delay_rate=0.0)

    def without_faults(self) -> "FaultPlan":
        """The same plan with every injection disabled (delays included)."""
        return replace(
            self,
            crash_rate=0.0,
            delay_rate=0.0,
            verifier_fault_rate=0.0,
            policy_crash_rate=0.0,
            service_crash_rate=0.0,
            connection_drop_rate=0.0,
        )


class FaultyPolicy(JoinPolicy):
    """Wrap a policy so that some ``permits`` calls raise instead of answer.

    The fault fires *before* the inner policy is consulted, which — by
    the ordering in :meth:`Verifier.check_join
    <repro.core.verifier.Verifier.check_join>` and
    :meth:`HybridVerifier.begin_join
    <repro.armus.hybrid.HybridVerifier.begin_join>` — means a faulted
    call updates **no** statistics and registers **no** waits-for edge.
    The chaos suite exploits exactly that: after retrying every faulted
    join, ``joins_checked`` must equal ``attempts - faults``.

    Calls are numbered under a lock and the fault decision is keyed by
    the call index, so a retry is a *new* site and eventually succeeds.
    """

    def __init__(self, inner: JoinPolicy, plan: FaultPlan) -> None:
        self.inner = inner
        self.plan = plan
        self.name = f"faulty({inner.name})"
        self.stable_permits = inner.stable_permits
        self._lock = threading.Lock()
        self._calls = 0
        #: permits calls that raised an injected fault
        self.faults_injected = 0
        #: permits calls that raised a simulated policy bug
        self.bugs_injected = 0

    def _next_call(self) -> int:
        with self._lock:
            self._calls += 1
            return self._calls

    def add_child(self, parent: Optional[object]) -> object:
        return self.inner.add_child(parent)

    def permits(self, joiner: object, joinee: object) -> bool:
        index = self._next_call()
        if self.plan.verifier_fault(("permits", index)):
            with self._lock:
                self.faults_injected += 1
            raise InjectedFaultError(site=("permits", index))
        if self.plan.policy_crash(("permits", index)):
            with self._lock:
                self.bugs_injected += 1
            raise PolicyBugError(site=("permits", index))
        return self.inner.permits(joiner, joinee)

    def permits_many(self, joiner: object, joinees: list) -> list[bool]:
        # Route through our own per-call permits so batch verification is
        # just as fault-prone as individual joins.
        return [self.permits(joiner, joinee) for joinee in joinees]

    def on_join(self, joiner: object, joinee: object) -> None:
        self.inner.on_join(joiner, joinee)

    def space_units(self) -> int:
        return self.inner.space_units()
