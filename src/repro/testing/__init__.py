"""Deterministic fault injection and chaos testing for the runtimes.

:mod:`repro.testing.faults` provides :class:`FaultPlan` — a seeded,
site-keyed source of injected crashes, delays and verifier faults — and
:class:`FaultyPolicy`, a policy wrapper that injects
:class:`~repro.errors.InjectedFaultError` into the verification path.

:mod:`repro.testing.chaos` generates seeded random fork/join programs
(deadlock-free by construction) and runs them under any registered
policy on any blocking runtime, checking a battery of invariants:
verifier statistics exactly match the program spec, the Armus graph and
join registry end empty, no task leaks a BLOCKED state, and — for
``stable_permits`` policies — the permission verdicts are identical
with and without injected delays.
"""

from .faults import FaultPlan, FaultyPolicy, PolicyBugError
from .chaos import (
    ChaosInvariantError,
    ChaosResult,
    ChaosSpec,
    ServiceChaosResult,
    generate_spec,
    run_chaos_program,
    run_with_policy_quarantine,
    run_with_service_faults,
    run_with_task_retries,
    run_with_verifier_faults,
)

__all__ = [
    "ChaosInvariantError",
    "ChaosResult",
    "ChaosSpec",
    "FaultPlan",
    "FaultyPolicy",
    "PolicyBugError",
    "ServiceChaosResult",
    "generate_spec",
    "run_chaos_program",
    "run_with_policy_quarantine",
    "run_with_service_faults",
    "run_with_task_retries",
    "run_with_verifier_faults",
]
