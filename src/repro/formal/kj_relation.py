"""Executable semantics of the KJ knowledge relation ``t ⊢ a ≺ b``.

Definition 4.1, restated as knowledge sets (the original formulation of
Cogumbreiro et al.):  ``a ≺ b  iff  b ∈ K(a)`` where

* KJ-child:   on ``fork(a, b)``, add ``b`` to ``K(a)``;
* KJ-inherit: on ``fork(a, b)``, set ``K(b)`` to a snapshot of ``K(a)``
  taken *before* KJ-child applies — the hypothesis of KJ-inherit refers to
  the trace before the fork, so a child does not know itself or learn of
  itself;
* KJ-learn:   on ``join(a, b)``, merge ``K(b)`` into ``K(a)``;
* KJ-mono:    knowledge only grows (sets are only ever extended).
"""

from __future__ import annotations

from typing import Iterable

from .actions import Action, Fork, Init, Join, Task
from ..errors import InvalidActionError

__all__ = ["KJKnowledge", "derive_kj_pairs", "kj_knows"]


class KJKnowledge:
    """Incrementally maintained KJ knowledge sets.

    This is the semantic reference for both KJ verifier implementations
    (KJ-VC and KJ-SS), which represent the same sets more compactly.
    """

    def __init__(self) -> None:
        self._k: dict[Task, set[Task]] = {}

    def apply(self, action: Action) -> None:
        if isinstance(action, Init):
            self.init(action.task)
        elif isinstance(action, Fork):
            self.fork(action.parent, action.child)
        elif isinstance(action, Join):
            self.join(action.waiter, action.joinee)
        else:  # pragma: no cover - defensive
            raise InvalidActionError(f"unknown action {action!r}")

    def init(self, root: Task) -> None:
        if self._k:
            raise InvalidActionError("init must be the first action")
        self._k[root] = set()

    def fork(self, parent: Task, child: Task) -> None:
        if parent not in self._k:
            raise InvalidActionError(f"fork from unknown task {parent!r}")
        if child in self._k:
            raise InvalidActionError(f"fork of existing task {child!r}")
        self._k[child] = set(self._k[parent])  # KJ-inherit (pre-fork snapshot)
        self._k[parent].add(child)  # KJ-child

    def join(self, waiter: Task, joinee: Task) -> None:
        """Apply KJ-learn.  Does *not* check permission — see :meth:`knows`."""
        if waiter not in self._k or joinee not in self._k:
            raise InvalidActionError(f"join on unknown task ({waiter!r}, {joinee!r})")
        self._k[waiter] |= self._k[joinee]

    def knows(self, a: Task, b: Task) -> bool:
        """``t ⊢ a ≺ b`` for the trace applied so far."""
        return b in self._k[a]

    def knowledge_of(self, a: Task) -> frozenset[Task]:
        return frozenset(self._k[a])

    def __contains__(self, task: Task) -> bool:
        return task in self._k

    def __len__(self) -> int:
        return len(self._k)

    @classmethod
    def from_trace(cls, trace: Iterable[Action]) -> "KJKnowledge":
        kn = cls()
        for action in trace:
            kn.apply(action)
        return kn


def derive_kj_pairs(trace: Iterable[Action]) -> set[tuple[Task, Task]]:
    """All pairs ``(a, b)`` with ``t ⊢ a ≺ b``."""
    kn = KJKnowledge.from_trace(trace)
    return {(a, b) for a in kn._k for b in kn._k[a]}


def kj_knows(trace: Iterable[Action], a: Task, b: Task) -> bool:
    """One-shot query ``t ⊢ a ≺ b``."""
    return KJKnowledge.from_trace(trace).knows(a, b)
