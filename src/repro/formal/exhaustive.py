"""Exhaustive small-scope checking of the paper's theorems.

The property tests sample random traces; this module *enumerates every
structurally valid trace* up to a bounded number of tasks and joins
(task names are canonical — the i-th fork creates ``t<i>`` — so no
isomorphic duplicates are visited) and verifies the theorems on all of
them.  For 4 tasks and 3 joins that is several hundred thousand traces:
small-scope, but a far stronger net than sampling, in the spirit of the
small-scope hypothesis.

Checked statements:

* Theorem 3.11 (soundness): no TJ-valid trace contains a deadlock;
* Theorem 3.10 (total order): trichotomy of ``<`` on every trace;
* Theorems 3.15/3.17: the lca+ decision procedure equals the rule
  relation on every fork tree;
* Theorem 4.3 / Corollary 4.4 (subsumption): every KJ-valid trace is
  TJ-valid;
* Maximality (Section 4): for every ordered pair ``(a, b)`` with
  ``not (a < b)`` and ``a != b``, permitting ``join(a, b)`` on top of TJ
  admits a deadlocking completion.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

from .actions import Action, Fork, Init, Join
from .deadlock import contains_deadlock
from .fork_tree import ForkTree
from .kj_relation import KJKnowledge
from .tj_relation import TJOrderOracle, derive_tj_pairs
from .trace import is_kj_valid, is_tj_valid

__all__ = [
    "enumerate_traces",
    "ExhaustiveReport",
    "check_soundness",
    "check_subsumption",
    "check_total_order",
    "check_decision_procedure",
    "check_maximality",
]


def _name(i: int) -> str:
    return f"t{i}"


def enumerate_traces(max_tasks: int, max_joins: int) -> Iterator[list[Action]]:
    """Yield every canonical structurally valid trace within the bounds.

    Each trace starts with ``init(t0)``; at each step it may fork (the
    new task is named by creation order) or emit any ordered join pair of
    existing distinct tasks.  All prefixes are yielded as traces in their
    own right (a trace is any finite action sequence), so downstream
    checks see every reachable intermediate state exactly once.
    """

    def extend(trace: list[Action], created: int, joins_left: int) -> Iterator[list[Action]]:
        yield trace
        if created < max_tasks:
            for parent in range(created):
                step: list[Action] = trace + [Fork(_name(parent), _name(created))]
                yield from extend(step, created + 1, joins_left)
        if joins_left > 0:
            for a in range(created):
                for b in range(created):
                    if a != b:
                        step = trace + [Join(_name(a), _name(b))]
                        yield from extend(step, created, joins_left - 1)

    yield from extend([Init(_name(0))], 1, max_joins)


@dataclass
class ExhaustiveReport:
    """Outcome of one exhaustive check."""

    traces: int = 0
    satisfying: int = 0  # traces in the class under test (e.g. TJ-valid)
    counterexample: Optional[list[Action]] = None

    @property
    def ok(self) -> bool:
        return self.counterexample is None


def check_soundness(max_tasks: int = 4, max_joins: int = 3) -> ExhaustiveReport:
    """Theorem 3.11 over every trace in scope."""
    report = ExhaustiveReport()
    for trace in enumerate_traces(max_tasks, max_joins):
        report.traces += 1
        if is_tj_valid(trace):
            report.satisfying += 1
            if contains_deadlock(trace):
                report.counterexample = trace
                break
    return report


def check_subsumption(max_tasks: int = 4, max_joins: int = 3) -> ExhaustiveReport:
    """Corollary 4.4 over every trace in scope."""
    report = ExhaustiveReport()
    for trace in enumerate_traces(max_tasks, max_joins):
        report.traces += 1
        if is_kj_valid(trace):
            report.satisfying += 1
            if not is_tj_valid(trace):
                report.counterexample = trace
                break
    return report


def check_total_order(max_tasks: int = 5) -> ExhaustiveReport:
    """Theorem 3.10 over every fork tree in scope (joins are irrelevant
    to the order, so only fork-only traces need enumerating)."""
    report = ExhaustiveReport()
    for trace in enumerate_traces(max_tasks, 0):
        report.traces += 1
        pairs = derive_tj_pairs(trace)
        tasks = TJOrderOracle.from_trace(trace).sorted_tasks()
        ok = all(
            ((a, b) in pairs) != ((b, a) in pairs)
            for i, a in enumerate(tasks)
            for b in tasks[i + 1 :]
        ) and not any((a, a) in pairs for a in tasks)
        if ok:
            report.satisfying += 1
        else:
            report.counterexample = trace
            break
    return report


def check_decision_procedure(max_tasks: int = 5) -> ExhaustiveReport:
    """Theorems 3.15/3.17 over every fork tree in scope."""
    report = ExhaustiveReport()
    for trace in enumerate_traces(max_tasks, 0):
        report.traces += 1
        pairs = derive_tj_pairs(trace)
        tree = ForkTree.from_trace(trace)
        tasks = list(tree.tasks())
        ok = all(
            tree.less(a, b) == ((a, b) in pairs) for a in tasks for b in tasks
        )
        if ok:
            report.satisfying += 1
        else:
            report.counterexample = trace
            break
    return report


def check_maximality(max_tasks: int = 5) -> ExhaustiveReport:
    """Section 4's closing claim over every fork tree and every pair."""
    report = ExhaustiveReport()
    for trace in enumerate_traces(max_tasks, 0):
        report.traces += 1
        oracle = TJOrderOracle.from_trace(trace)
        tasks = oracle.sorted_tasks()
        witnessed = True
        for i, a in enumerate(tasks):
            for b in tasks:
                if a is b or oracle.less(a, b):
                    continue
                # not (a < b): the hypothetical policy TJ + {(a, b)} also
                # permits join(b, a) (since b < a); both joins together
                # must deadlock.
                extended = list(trace) + [Join(a, b), Join(b, a)]
                if not contains_deadlock(extended):
                    report.counterexample = extended
                    witnessed = False
                    break
            if not witnessed:
                break
        if witnessed:
            report.satisfying += 1
        else:
            break
    return report
