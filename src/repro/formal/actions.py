"""Actions and traces (Definition 3.1).

A *task* is named by any hashable value (the tests mostly use short strings
or ints).  An *action* is one of ``init(a)``, ``fork(a, b)`` or
``join(a, b)``.  A *trace* is a sequence of actions.

These are plain frozen dataclasses so traces are hashable, comparable and
cheap to generate in property-based tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Iterable, Iterator, Optional, Sequence, Union

__all__ = ["Task", "Init", "Fork", "Join", "Action", "Trace", "parse_trace", "format_trace"]

Task = Hashable


@dataclass(frozen=True, slots=True)
class Init:
    """``init(a)``: *a* is the root task (first action of every valid trace)."""

    task: Task

    def tasks(self) -> tuple[Task, ...]:
        return (self.task,)

    def __str__(self) -> str:
        return f"init({self.task})"


@dataclass(frozen=True, slots=True)
class Fork:
    """``fork(a, b)``: task *a* forks the fresh task *b*."""

    parent: Task
    child: Task

    def tasks(self) -> tuple[Task, ...]:
        return (self.parent, self.child)

    def __str__(self) -> str:
        return f"fork({self.parent}, {self.child})"


@dataclass(frozen=True, slots=True)
class Join:
    """``join(a, b)``: task *a* blocks awaiting the termination of *b*.

    ``permitted`` is an optional *annotation* carried by recorded traces:
    the verdict the online verifier reached at check time (None for
    formal traces, False for a join recorded while the policy raised).
    It is excluded from equality and hashing, so an annotated recording
    still compares equal to the formal trace it witnesses.
    """

    waiter: Task
    joinee: Task
    permitted: Optional[bool] = field(default=None, compare=False)

    def tasks(self) -> tuple[Task, ...]:
        return (self.waiter, self.joinee)

    def __str__(self) -> str:
        return f"join({self.waiter}, {self.joinee})"


Action = Union[Init, Fork, Join]
Trace = Sequence[Action]


def format_trace(trace: Iterable[Action]) -> str:
    """Render a trace in the one-action-per-line textual form."""
    return "\n".join(str(a) for a in trace)


def _parse_action(line: str) -> Action:
    line = line.strip()
    if not line.endswith(")"):
        raise ValueError(f"malformed action: {line!r}")
    head, _, rest = line.partition("(")
    args = [s.strip() for s in rest[:-1].split(",")] if rest[:-1] else []
    if head == "init" and len(args) == 1:
        return Init(args[0])
    if head == "fork" and len(args) == 2:
        return Fork(args[0], args[1])
    if head == "join" and len(args) == 2:
        return Join(args[0], args[1])
    raise ValueError(f"malformed action: {line!r}")


def parse_trace(text: str) -> list[Action]:
    """Parse the textual trace format produced by :func:`format_trace`.

    Blank lines and ``#`` comments are ignored.  Task names are strings.
    """
    actions: list[Action] = []
    for raw in text.splitlines():
        line = raw.split("#", 1)[0].strip()
        if line:
            actions.append(_parse_action(line))
    return actions


def iter_forks(trace: Iterable[Action]) -> Iterator[Fork]:
    """Yield only the fork actions of a trace, in order."""
    for a in trace:
        if isinstance(a, Fork):
            yield a


def iter_joins(trace: Iterable[Action]) -> Iterator[Join]:
    """Yield only the join actions of a trace, in order."""
    for a in trace:
        if isinstance(a, Join):
            yield a
