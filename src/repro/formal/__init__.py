"""Executable formalism of Sections 3–4: traces, the TJ and KJ relations,
the fork tree with the ``lca+`` decision procedure, and the Definition 3.9
deadlock checker.

This subpackage is the semantic ground truth of the repository.  Every
production verifier algorithm in :mod:`repro.core` and :mod:`repro.kj` is
property-tested against these reference implementations.
"""

from .actions import Action, Fork, Init, Join, Task, format_trace, parse_trace
from .deadlock import contains_deadlock, find_join_cycle, join_graph
from .derivations import check_derivation, derive
from .exhaustive import (
    check_decision_procedure,
    check_maximality,
    check_soundness,
    check_subsumption,
    check_total_order,
    enumerate_traces,
)
from .kj_derivations import check_kj_derivation, derive_kj, translate_kj_to_tj
from .transitivity import compose
from .fork_tree import AncPlus, DecStar, ForkTree, Sib, lca_plus
from .kj_relation import KJKnowledge, derive_kj_pairs, kj_knows
from .tj_relation import TJOrderOracle, derive_tj_pairs, tj_less
from .trace import (
    FreeFamily,
    KJFamily,
    TJFamily,
    ValidationResult,
    Verdict,
    is_kj_valid,
    is_structurally_valid,
    is_tj_valid,
    validate_trace,
)

__all__ = [
    "Action",
    "Init",
    "Fork",
    "Join",
    "Task",
    "parse_trace",
    "format_trace",
    "ForkTree",
    "AncPlus",
    "DecStar",
    "Sib",
    "lca_plus",
    "TJOrderOracle",
    "derive_tj_pairs",
    "tj_less",
    "KJKnowledge",
    "derive_kj_pairs",
    "kj_knows",
    "TJFamily",
    "KJFamily",
    "FreeFamily",
    "Verdict",
    "ValidationResult",
    "validate_trace",
    "is_tj_valid",
    "is_kj_valid",
    "is_structurally_valid",
    "contains_deadlock",
    "find_join_cycle",
    "join_graph",
    "derive",
    "check_derivation",
    "compose",
    "derive_kj",
    "check_kj_derivation",
    "translate_kj_to_tj",
    "enumerate_traces",
    "check_soundness",
    "check_subsumption",
    "check_total_order",
    "check_decision_procedure",
    "check_maximality",
]
