"""Explicit derivation trees for the TJ judgment ``t ⊢ a < b``.

The rest of :mod:`repro.formal` computes *whether* a judgment holds;
this module builds *why*: a derivation tree whose nodes are instances of
the paper's rules (TJ-left, TJ-right, TJ-mono — Definition 3.3), plus an
independent checker that validates every step of a derivation against
the trace.  Together they give a proof-carrying account of the relation:

* :func:`derive` constructs a derivation for every true judgment
  (constructively following the induction in the proofs of Lemma 3.8 and
  Theorem 3.10), and returns None for false ones;
* :func:`check_derivation` replays a derivation bottom-up and accepts
  only rule applications licensed by the trace.

Property tests tie the two to the semantic implementations: ``derive``
succeeds exactly where the order oracle says ``<`` holds, and everything
``derive`` builds passes ``check_derivation``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from .actions import Action, Fork, Init, Task

__all__ = ["TJLeft", "TJRight", "TJMono", "Derivation", "derive", "check_derivation"]


@dataclass(frozen=True)
class TJLeft:
    """``t ⊢ c ≤ a  ⟹  t; fork(a, b) ⊢ c < b``.

    ``premise`` is None when ``c = a`` (the reflexive half of ``≤``).
    ``fork_index`` locates the fork action this rule consumes.
    """

    conclusion: tuple[Task, Task]
    fork_index: int
    premise: Optional["Derivation"]


@dataclass(frozen=True)
class TJRight:
    """``t ⊢ a < c  ⟹  t; fork(a, b) ⊢ b < c``."""

    conclusion: tuple[Task, Task]
    fork_index: int
    premise: "Derivation"


@dataclass(frozen=True)
class TJMono:
    """``t1 ⊢ a < b  ⟹  t1; t2 ⊢ a < b`` — weakening to a longer trace.

    ``prefix_len`` is the length of ``t1``; the premise is a derivation
    over that prefix.
    """

    conclusion: tuple[Task, Task]
    prefix_len: int
    premise: "Derivation"


Derivation = Union[TJLeft, TJRight, TJMono]


def _fork_positions(trace: list[Action]) -> dict[Task, int]:
    """child task -> index of the fork action creating it."""
    return {
        action.child: i
        for i, action in enumerate(trace)
        if isinstance(action, Fork)
    }


def derive(trace: list[Action], a: Task, b: Task) -> Optional[Derivation]:
    """Build a derivation of ``trace ⊢ a < b``, or None if it is false.

    Construction follows the tree characterisation: find the divergence
    of the two spawn paths and stack TJ-left / TJ-right steps along it,
    weakening with one TJ-mono at the end if the last rule's fork is not
    the final action.  The result is minimal in the sense that every
    rule application consumes a distinct fork action of the trace.
    """
    forks = _fork_positions(trace)

    def parent_of(t: Task) -> Optional[Task]:
        i = forks.get(t)
        if i is None:
            return None
        action = trace[i]
        assert isinstance(action, Fork)
        return action.parent

    def ancestors(t: Task) -> list[Task]:
        """t, parent(t), grandparent(t), ... up to the root."""
        chain = [t]
        while (p := parent_of(chain[-1])) is not None:
            chain.append(p)
        return chain

    if a == b or a not in _tasks(trace) or b not in _tasks(trace):
        return None

    chain_a = ancestors(a)
    chain_b = ancestors(b)
    set_a = set(chain_a)

    # lowest common ancestor = first ancestor of b that is also above a
    lca = next(t for t in chain_b if t in set_a)

    def finish(deriv: Derivation) -> Derivation:
        """Weaken *deriv* to conclude over the full trace."""
        return build_to(deriv, len(trace))

    def descend_left(top: Task, path: list[Task]) -> Derivation:
        """``top < y`` for the last y of *path* (top's descendants, top
        down), by stacked TJ-left; concludes at the fork of that y.
        Fork indices strictly increase down a chain, so weakening always
        goes forward."""
        deriv: Optional[Derivation] = None
        for t in path:
            i = forks[t]
            premise = None if deriv is None else build_to(deriv, i)
            deriv = TJLeft((top, t), i, premise)
        assert deriv is not None
        return deriv

    if lca == a:
        # a is a proper ancestor of b (Theorem 3.15 case anc+)
        path = list(reversed(chain_b[: chain_b.index(a)]))  # a's child ... b
        return finish(descend_left(a, path))

    if lca == b:
        return None  # a is b or a descendant of b: never less

    # Sibling case: the branches under the LCA decide.
    a_path = list(reversed(chain_a[: chain_a.index(lca)]))  # branch_a ... a
    b_path = list(reversed(chain_b[: chain_b.index(lca)]))  # branch_b ... b
    if forks[a_path[0]] < forks[b_path[0]]:
        return None  # a's branch is older: not less

    def pair(xi: int, yi: int) -> Derivation:
        """``a_path[xi] < b_path[yi]``, concluded at the later of the two
        forks.  The last rule consumes whichever fork is later:

        * a's side later -> TJ-right at fork(x) from ``parent(x) < y``
          (with ``lca < y`` at the top, itself a TJ-left chain);
        * b's side later -> TJ-left at fork(y) from ``x < parent(y)``
          (parent(y) is never the LCA here, because branch_b's fork
          precedes branch_a's and hence every a-side fork).
        """
        x, y = a_path[xi], b_path[yi]
        fx, fy = forks[x], forks[y]
        if fx > fy:
            premise = descend_left(lca, b_path[: yi + 1]) if xi == 0 else pair(xi - 1, yi)
            return TJRight((x, y), fx, build_to(premise, fx))
        assert yi > 0  # fork(branch_b) < fork(branch_a) <= every a-side fork
        premise = pair(xi, yi - 1)
        return TJLeft((x, y), fy, build_to(premise, fy))

    return finish(pair(len(a_path) - 1, len(b_path) - 1))


def _tasks(trace: list[Action]) -> set[Task]:
    out: set[Task] = set()
    for action in trace:
        out.update(action.tasks())
    return out


def build_to(deriv: Derivation, target_scope: int) -> Derivation:
    """Weaken *deriv* so it is usable as a judgment over
    ``trace[:target_scope]``.

    Rule nodes are scope-exact (they conclude right after the fork they
    consume); a TJ-mono node is scope-flexible — valid at any scope at or
    beyond its recorded prefix — so one wrapper suffices for any
    extension.
    """
    if isinstance(deriv, TJMono):
        assert deriv.prefix_len <= target_scope
        return deriv
    have = deriv.fork_index + 1
    if have == target_scope:
        return deriv
    assert have < target_scope
    return TJMono(deriv.conclusion, have, deriv)


def check_derivation(trace: list[Action], deriv: Derivation) -> bool:
    """Validate every rule application of *deriv* against *trace*.

    Returns True iff the tree is a correct derivation of its root
    conclusion over the *entire* trace.
    """
    return _check(trace, deriv, len(trace))


def _check(trace: list[Action], deriv: Derivation, scope: int) -> bool:
    """Check that *deriv* concludes a judgment over ``trace[:scope]``."""
    if isinstance(deriv, TJMono):
        # weakening: premise holds over the (strictly shorter) prefix
        if not (0 < deriv.prefix_len <= scope):
            return False
        if deriv.premise.conclusion != deriv.conclusion:
            return False
        return _check(trace, deriv.premise, deriv.prefix_len)

    i = deriv.fork_index
    if not (0 <= i < scope):
        return False
    action = trace[i]
    if not isinstance(action, Fork):
        return False
    # the rule concludes over trace[:i+1]; the caller's scope must not be
    # *smaller*, and anything larger needs an explicit TJMono — enforce
    # exactness so derivations are position-precise
    if scope != i + 1:
        return False
    parent, child = action.parent, action.child

    if isinstance(deriv, TJLeft):
        c, new = deriv.conclusion
        if new != child:
            return False
        if deriv.premise is None:
            return c == parent  # reflexive half: c = a
        if deriv.premise.conclusion != (c, parent):
            return False
        return _check(trace, deriv.premise, i)

    assert isinstance(deriv, TJRight)
    lhs, rhs = deriv.conclusion
    if lhs != child:
        return False
    if deriv.premise.conclusion != (parent, rhs):
        return False
    return _check(trace, deriv.premise, i)
