"""Trace validity (Definition 3.2) parameterised over a relation family.

A *relation family* ``R`` assigns to each trace prefix ``t`` a binary
relation ``R_t`` over tasks; a trace is valid w.r.t. ``R`` when

* it begins with exactly one ``init``,
* every ``fork(a, b)`` has ``a`` existing and ``b`` fresh, and
* every ``join(a, b)`` satisfies ``R_t(a, b)`` for the prefix ``t``
  *before* the join.

Instantiating ``R`` with the TJ order gives the TJ policy (Definition
3.4); instantiating with KJ knowledge gives the KJ policy (Definition
4.2); instantiating with the always-true relation checks structure only.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional, Protocol, Sequence

from .actions import Action, Fork, Init, Join, Task
from .kj_relation import KJKnowledge
from .tj_relation import TJOrderOracle
from ..errors import InvalidActionError

__all__ = [
    "RelationFamily",
    "TJFamily",
    "KJFamily",
    "FreeFamily",
    "Verdict",
    "ValidationResult",
    "validate_trace",
    "is_tj_valid",
    "is_kj_valid",
    "is_structurally_valid",
]


class RelationFamily(Protocol):
    """Incremental evaluator of a trace-indexed relation family ``R``."""

    name: str

    def related(self, a: Task, b: Task) -> bool:
        """``R_t(a, b)`` where ``t`` is the prefix observed so far."""
        ...

    def observe(self, action: Action) -> None:
        """Extend the prefix by one (already structurally valid) action."""
        ...


class TJFamily:
    """``R_t(a, b) := t ⊢ a < b`` (the Transitive Joins policy)."""

    name = "TJ"

    def __init__(self) -> None:
        self._oracle = TJOrderOracle()

    def related(self, a: Task, b: Task) -> bool:
        return self._oracle.less(a, b)

    def observe(self, action: Action) -> None:
        self._oracle.apply(action)


class KJFamily:
    """``R_t(a, b) := t ⊢ a ≺ b`` (the Known Joins policy)."""

    name = "KJ"

    def __init__(self) -> None:
        self._knowledge = KJKnowledge()

    def related(self, a: Task, b: Task) -> bool:
        return self._knowledge.knows(a, b)

    def observe(self, action: Action) -> None:
        self._knowledge.apply(action)


class FreeFamily:
    """The always-true relation: joins unconstrained, structure still checked."""

    name = "free"

    def related(self, a: Task, b: Task) -> bool:
        return True

    def observe(self, action: Action) -> None:
        pass


@dataclass(frozen=True, slots=True)
class Verdict:
    """Per-action validation outcome."""

    index: int
    action: Action
    ok: bool
    reason: str = ""


@dataclass
class ValidationResult:
    """Outcome of validating a whole trace against a relation family."""

    policy: str
    verdicts: list[Verdict] = field(default_factory=list)
    tasks: set[Task] = field(default_factory=set)

    @property
    def valid(self) -> bool:
        return all(v.ok for v in self.verdicts)

    @property
    def first_violation(self) -> Optional[Verdict]:
        return next((v for v in self.verdicts if not v.ok), None)

    @property
    def rejected_joins(self) -> list[Verdict]:
        return [v for v in self.verdicts if not v.ok and isinstance(v.action, Join)]

    def __bool__(self) -> bool:
        return self.valid


def validate_trace(
    trace: Iterable[Action],
    family: Callable[[], RelationFamily] = TJFamily,
    *,
    stop_on_violation: bool = False,
) -> ValidationResult:
    """Check *trace* against the valid-* rules for the given family.

    Structural violations (bad init/fork) always stop validation, because
    the relation state can no longer be advanced meaningfully.  Join
    violations are recorded; with ``stop_on_violation=False`` (the default)
    validation continues past them, which mirrors the behaviour of an
    online verifier running with a precision fallback — useful for counting
    false positives in a single pass.
    """
    rel = family()
    result = ValidationResult(policy=rel.name)
    seen: set[Task] = set()
    initialised = False
    for i, action in enumerate(trace):
        ok, reason = True, ""
        if isinstance(action, Init):
            if initialised:
                ok, reason = False, "duplicate init"
            else:
                initialised = True
                seen.add(action.task)
        elif not initialised:
            ok, reason = False, "action before init"
        elif isinstance(action, Fork):
            if action.parent not in seen:
                ok, reason = False, f"fork from unknown task {action.parent!r}"
            elif action.child in seen:
                ok, reason = False, f"fork of existing task {action.child!r}"
            else:
                seen.add(action.child)
        elif isinstance(action, Join):
            if action.waiter not in seen or action.joinee not in seen:
                ok, reason = False, "join on unknown task"
            elif not rel.related(action.waiter, action.joinee):
                ok, reason = False, (
                    f"{rel.name} does not permit join({action.waiter!r}, {action.joinee!r})"
                )
        else:  # pragma: no cover - defensive
            ok, reason = False, f"unknown action {action!r}"

        result.verdicts.append(Verdict(i, action, ok, reason))
        if not ok:
            structural = not isinstance(action, Join) or "unknown task" in reason
            if structural or stop_on_violation:
                break
            continue  # policy violation only: skip observe (the join is aborted)
        rel.observe(action)
    result.tasks = seen
    return result


def is_tj_valid(trace: Iterable[Action]) -> bool:
    """Definition 3.4: is *trace* accepted by the Transitive Joins policy?"""
    return validate_trace(trace, TJFamily, stop_on_violation=True).valid


def is_kj_valid(trace: Iterable[Action]) -> bool:
    """Definition 4.2: is *trace* accepted by the Known Joins policy?"""
    return validate_trace(trace, KJFamily, stop_on_violation=True).valid


def is_structurally_valid(trace: Iterable[Action]) -> bool:
    """Do the init/fork rules hold, ignoring join permissions?"""
    return validate_trace(trace, FreeFamily, stop_on_violation=True).valid
