"""Executable Lemma 3.8: composing TJ derivations transitively.

Given derivations of ``t ⊢ a < b`` and ``t ⊢ b < c``, :func:`compose`
builds a derivation of ``t ⊢ a < c`` *structurally*, following the
paper's induction on the trace instead of re-deriving from scratch:

* find the latest fork either derivation consumes; the freshly forked
  task ``q`` of that fork can play at most one of the three roles in the
  transitivity triple (it is fresh, so at most one of a, b, c is q);
* case (i) of the proof — ``q = c``: the right derivation ends in
  TJ-left with premise ``b ≤ p``; recurse on ``a < b`` and ``b < p``
  (or use ``a < p`` directly when ``b = p``) and finish with TJ-left;
* case (ii) — ``q = a``: the left derivation ends in TJ-right with
  premise ``p < b``; recurse on ``p < b`` and ``b < c`` and finish with
  TJ-right;
* case (iii) — ``q = b``: the left ends in TJ-left (``a ≤ p``) and the
  right in TJ-right (``p < c``); recurse on ``a < p`` and ``p < c`` (or
  weaken ``p < c`` when ``a = p``);
* if neither derivation consumes the last action, strip it (TJ-mono in
  reverse) and recurse on the shorter prefix.

The result is checked by the same independent
:func:`~repro.formal.derivations.check_derivation` as any other proof
object — so Lemma 3.8 is not merely asserted by the semantic tests, its
*proof* runs.
"""

from __future__ import annotations

from .actions import Action, Fork
from .derivations import Derivation, TJLeft, TJMono, TJRight, build_to

__all__ = ["compose"]


def _outer_rule(deriv: Derivation) -> Derivation:
    """The first non-mono node (every mono chain bottoms out at a rule)."""
    while isinstance(deriv, TJMono):
        deriv = deriv.premise
    return deriv


def _last_use(deriv: Derivation) -> int:
    """Index of the latest action the outermost rule consumes."""
    return _outer_rule(deriv).fork_index


def compose(trace: list[Action], d_ab: Derivation, d_bc: Derivation) -> Derivation:
    """Lemma 3.8: a derivation of ``a < c`` from ``a < b`` and ``b < c``.

    Both inputs must be valid over the whole *trace* (as produced by
    :func:`~repro.formal.derivations.derive` or a previous compose); the
    output is valid over the whole trace too.
    """
    a, b1 = d_ab.conclusion
    b2, c = d_bc.conclusion
    if b1 != b2:
        raise ValueError(f"derivations do not chain: {d_ab.conclusion} / {d_bc.conclusion}")
    result = _compose_at(trace, d_ab, d_bc, max(_last_use(d_ab), _last_use(d_bc)) + 1)
    return build_to(result, len(trace))


def _compose_at(
    trace: list[Action], d_ab: Derivation, d_bc: Derivation, scope: int
) -> Derivation:
    """Compose within ``trace[:scope]``, where *scope* is exactly one past
    the latest fork either derivation consumes."""
    a, b = d_ab.conclusion
    _, c = d_bc.conclusion
    action = trace[scope - 1]
    assert isinstance(action, Fork)
    p, q = action.parent, action.child

    # Strip leading mono wrappers: they are pure weakening, and one may
    # record a prefix *longer* than this scope (the input was valid over
    # the whole trace) — the underlying rule is what composes here, and
    # build_to re-weakens it to whatever scope each case needs.
    left = d_ab = _outer_rule(d_ab)
    right = d_bc = _outer_rule(d_bc)

    def recurse(d1: Derivation, d2: Derivation) -> Derivation:
        """Compose two strictly-earlier derivations; result is scoped to
        exactly one past their own latest fork."""
        return _compose_at(trace, d1, d2, max(_last_use(d1), _last_use(d2)) + 1)

    if c == q:
        # case (i): a < b < q.  The only rule concluding (_, q) is the
        # TJ-left at this fork, so the right derivation ends with it.
        assert isinstance(right, TJLeft) and right.fork_index == scope - 1
        if right.premise is None:
            # b = p: we need a < p, which is exactly d_ab
            inner = build_to(d_ab, scope - 1)
        else:
            # premise is b < p
            inner = build_to(recurse(d_ab, right.premise), scope - 1)
        return TJLeft((a, q), scope - 1, inner)

    if a == q:
        # case (ii): q < b < c.  The only rule concluding (q, _) is the
        # TJ-right at this fork.
        assert isinstance(left, TJRight) and left.fork_index == scope - 1
        # premise is p < b
        inner = build_to(recurse(left.premise, d_bc), scope - 1)
        return TJRight((q, c), scope - 1, inner)

    if b == q:
        # case (iii): a < q < c.  Left ends in TJ-left (a ≤ p), right in
        # TJ-right (p < c).
        assert isinstance(left, TJLeft) and left.fork_index == scope - 1
        assert isinstance(right, TJRight) and right.fork_index == scope - 1
        if left.premise is None:
            # a = p: p < c is the answer
            return build_to(right.premise, scope - 1)
        return build_to(recurse(left.premise, right.premise), scope - 1)

    # The fresh task q is none of a, b, c: neither derivation's outermost
    # rule can conclude at this fork (rules conclude judgments involving
    # q), so both restrict to the shorter prefix; recurse there.
    assert left.fork_index < scope - 1 and right.fork_index < scope - 1
    return recurse(d_ab, d_bc)
