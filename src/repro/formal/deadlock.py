"""Deadlock cycles in traces (Definition 3.9).

A trace *contains a deadlock* when its join actions include a cycle
``join(a0, a1), join(a1, a2), ..., join(an, a0)``.  (``n = 0`` — a self
join — counts.)  Theorem 3.11 states TJ-valid traces never do; the
property tests exercise exactly that.
"""

from __future__ import annotations

from typing import Iterable, Optional

from .actions import Action, Join, Task

__all__ = ["join_graph", "find_join_cycle", "contains_deadlock"]


def join_graph(trace: Iterable[Action]) -> dict[Task, set[Task]]:
    """Adjacency map of the join edges ``waiter -> joinee`` in *trace*."""
    graph: dict[Task, set[Task]] = {}
    for action in trace:
        if isinstance(action, Join):
            graph.setdefault(action.waiter, set()).add(action.joinee)
            graph.setdefault(action.joinee, set())
    return graph


def find_cycle(graph: dict[Task, set[Task]]) -> Optional[list[Task]]:
    """Find any directed cycle in *graph*; returns the cycle's vertices.

    Iterative three-colour DFS (no recursion limit issues on long chains).
    """
    WHITE, GREY, BLACK = 0, 1, 2
    colour = {v: WHITE for v in graph}
    parent: dict[Task, Optional[Task]] = {}
    for start in graph:
        if colour[start] != WHITE:
            continue
        stack: list[tuple[Task, Optional[object]]] = [(start, None)]
        parent[start] = None
        while stack:
            node, it = stack[-1]
            if it is None:
                colour[node] = GREY
                it = iter(graph[node])
                stack[-1] = (node, it)
            advanced = False
            for succ in it:  # type: ignore[union-attr]
                if colour[succ] == WHITE:
                    parent[succ] = node
                    stack.append((succ, None))
                    advanced = True
                    break
                if colour[succ] == GREY:
                    # Back edge node -> succ closes a cycle.
                    cycle = [node]
                    while cycle[-1] != succ:
                        prev = parent[cycle[-1]]
                        assert prev is not None
                        cycle.append(prev)
                    cycle.reverse()
                    return cycle
            if not advanced:
                colour[node] = BLACK
                stack.pop()
    return None


def find_join_cycle(trace: Iterable[Action]) -> Optional[list[Task]]:
    """The task cycle witnessing Definition 3.9, or None."""
    return find_cycle(join_graph(trace))


def contains_deadlock(trace: Iterable[Action]) -> bool:
    """Definition 3.9: does *trace* contain a deadlock?"""
    return find_join_cycle(trace) is not None
