"""Random trace generators.

Used both by the property tests (as building blocks for hypothesis
strategies) and by the precision ablation benchmark, which measures how
often KJ rejects joins that TJ admits on randomly generated TJ-valid
workloads.

All generators take a :class:`random.Random` so runs are reproducible.
"""

from __future__ import annotations

import random
from typing import Callable, Optional, Sequence

from .actions import Action, Fork, Init, Join, Task
from .fork_tree import ForkTree
from .kj_relation import KJKnowledge
from .tj_relation import TJOrderOracle

__all__ = [
    "random_fork_trace",
    "random_tj_valid_trace",
    "random_kj_valid_trace",
    "random_deadlocking_trace",
    "chain_fork_trace",
    "star_fork_trace",
    "balanced_fork_trace",
]


def _task_name(i: int) -> str:
    return f"t{i}"


def random_fork_trace(rng: random.Random, n_tasks: int) -> list[Action]:
    """``init`` plus ``n_tasks - 1`` forks from uniformly random parents."""
    if n_tasks < 1:
        raise ValueError("need at least the root task")
    trace: list[Action] = [Init(_task_name(0))]
    tasks = [_task_name(0)]
    for i in range(1, n_tasks):
        parent = rng.choice(tasks)
        child = _task_name(i)
        trace.append(Fork(parent, child))
        tasks.append(child)
    return trace


def random_tj_valid_trace(
    rng: random.Random,
    n_tasks: int,
    n_joins: int,
    *,
    fork_bias: float = 0.5,
) -> list[Action]:
    """A TJ-valid trace interleaving forks with TJ-permitted joins.

    ``fork_bias`` is the probability of emitting a fork (while tasks
    remain) instead of a join at each step.  Joins pick a uniformly random
    pair with ``a < b`` — including pairs KJ would reject, which is what
    makes these traces useful for the precision experiment.
    """
    trace: list[Action] = [Init(_task_name(0))]
    oracle = TJOrderOracle()
    oracle.init(_task_name(0))
    tasks = [_task_name(0)]
    forks_left = n_tasks - 1
    joins_left = n_joins
    while forks_left > 0 or joins_left > 0:
        do_fork = forks_left > 0 and (joins_left == 0 or rng.random() < fork_bias)
        if do_fork:
            parent = rng.choice(tasks)
            child = _task_name(len(tasks))
            trace.append(Fork(parent, child))
            oracle.fork(parent, child)
            tasks.append(child)
            forks_left -= 1
        else:
            if len(tasks) < 2:
                joins_left -= 1
                continue
            a, b = rng.sample(tasks, 2)
            if oracle.less(b, a):
                a, b = b, a
            trace.append(Join(a, b))
            joins_left -= 1
    return trace


def random_kj_valid_trace(
    rng: random.Random,
    n_tasks: int,
    n_joins: int,
    *,
    fork_bias: float = 0.5,
) -> list[Action]:
    """A KJ-valid trace: joins picked from the current knowledge relation."""
    trace: list[Action] = [Init(_task_name(0))]
    knowledge = KJKnowledge()
    knowledge.init(_task_name(0))
    tasks = [_task_name(0)]
    forks_left = n_tasks - 1
    joins_left = n_joins
    while forks_left > 0 or joins_left > 0:
        do_fork = forks_left > 0 and (joins_left == 0 or rng.random() < fork_bias)
        if do_fork:
            parent = rng.choice(tasks)
            child = _task_name(len(tasks))
            trace.append(Fork(parent, child))
            knowledge.fork(parent, child)
            tasks.append(child)
            forks_left -= 1
        else:
            known = [
                (a, b) for a in tasks for b in knowledge.knowledge_of(a) if a != b
            ]
            joins_left -= 1
            if not known:
                continue
            a, b = rng.choice(known)
            trace.append(Join(a, b))
            knowledge.join(a, b)
    return trace


def random_deadlocking_trace(
    rng: random.Random, n_tasks: int, cycle_len: int = 2
) -> list[Action]:
    """A structurally valid trace whose joins contain a deadlock cycle.

    The cycle is planted among ``cycle_len`` sibling children of the root;
    remaining tasks fork randomly.  By Theorem 3.11 no such trace is
    TJ-valid, which the soundness property tests assert.
    """
    cycle_len = max(2, min(cycle_len, n_tasks - 1))
    trace = random_fork_trace(rng, max(n_tasks, cycle_len + 1))
    tasks = [a.child for a in trace if isinstance(a, Fork)]
    ring = tasks[:cycle_len]
    for i, a in enumerate(ring):
        trace.append(Join(a, ring[(i + 1) % len(ring)]))
    return trace


def chain_fork_trace(n_tasks: int) -> list[Action]:
    """A degenerate deep tree: each task forks the next (height = n - 1)."""
    trace: list[Action] = [Init(_task_name(0))]
    for i in range(1, n_tasks):
        trace.append(Fork(_task_name(i - 1), _task_name(i)))
    return trace


def star_fork_trace(n_tasks: int) -> list[Action]:
    """A flat tree: the root forks everything (height = 1)."""
    trace: list[Action] = [Init(_task_name(0))]
    for i in range(1, n_tasks):
        trace.append(Fork(_task_name(0), _task_name(i)))
    return trace


def balanced_fork_trace(n_tasks: int, arity: int = 2) -> list[Action]:
    """A balanced ``arity``-ary tree in breadth-first fork order."""
    if arity < 1:
        raise ValueError("arity must be positive")
    trace: list[Action] = [Init(_task_name(0))]
    for i in range(1, n_tasks):
        parent = _task_name((i - 1) // arity)
        trace.append(Fork(parent, _task_name(i)))
    return trace
