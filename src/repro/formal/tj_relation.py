"""Executable semantics of the TJ permission relation ``t ⊢ a < b``.

Two independent implementations are provided, used to cross-check each
other and every verifier algorithm in the property tests:

* :func:`derive_tj_pairs` — a literal, rule-by-rule inductive computation
  of the full relation (Definition 3.3).  O(n²) space; only for small
  traces.
* :class:`TJOrderOracle` — an incremental ordered list.  The inference
  rules imply that a freshly forked task sits *immediately after its
  parent* in the total order:  TJ-left makes everything ``≤ parent``
  smaller than the child, and TJ-right makes everything ``> parent``
  larger.  Maintaining that list makes ``less`` a position comparison
  and doubles as an executable proof sketch of Theorem 3.10.
"""

from __future__ import annotations

from typing import Iterable, Optional

from .actions import Action, Fork, Init, Join, Task
from ..errors import InvalidActionError

__all__ = ["derive_tj_pairs", "TJOrderOracle", "tj_less"]


def derive_tj_pairs(trace: Iterable[Action]) -> set[tuple[Task, Task]]:
    """All pairs ``(a, b)`` with ``t ⊢ a < b``, by direct rule induction.

    Processing the trace action by action:

    * ``init(a)`` derives nothing (no rule concludes from an init).
    * ``fork(a, b)`` adds ``{(c, b) : c ≤ a}`` (TJ-left) and
      ``{(b, c) : a < c}`` (TJ-right); TJ-mono keeps all previous pairs.
    * ``join`` actions contribute nothing (TJ has no join rule — the key
      difference from KJ's KJ-learn).
    """
    pairs: set[tuple[Task, Task]] = set()
    seen: set[Task] = set()
    for action in trace:
        if isinstance(action, Init):
            if seen:
                raise InvalidActionError("init must be the first action")
            seen.add(action.task)
        elif isinstance(action, Fork):
            a, b = action.parent, action.child
            if a not in seen:
                raise InvalidActionError(f"fork from unknown task {a!r}")
            if b in seen:
                raise InvalidActionError(f"fork of existing task {b!r}")
            new: set[tuple[Task, Task]] = {(a, b)}  # c = a case of TJ-left
            for x, y in pairs:
                if y == a:
                    new.add((x, b))  # TJ-left with t ⊢ c < a
                if x == a:
                    new.add((b, y))  # TJ-right
            pairs |= new
            seen.add(b)
        elif isinstance(action, Join):
            if action.waiter not in seen or action.joinee not in seen:
                raise InvalidActionError(f"join on unknown task in {action}")
        else:  # pragma: no cover - defensive
            raise InvalidActionError(f"unknown action {action!r}")
    return pairs


class TJOrderOracle:
    """Incrementally maintained TJ total order (insert-after-parent list).

    ``less(a, b)`` is a position comparison.  Fork costs O(n) here (list
    insertion); this class is the *reference* implementation the efficient
    verifier algorithms (TJ-GT/JP/SP/OM) are validated against, not a
    production verifier itself.
    """

    def __init__(self) -> None:
        self._order: list[Task] = []
        self._pos: dict[Task, int] = {}

    def apply(self, action: Action) -> None:
        if isinstance(action, Init):
            self.init(action.task)
        elif isinstance(action, Fork):
            self.fork(action.parent, action.child)
        # joins carry no information for TJ

    def init(self, root: Task) -> None:
        if self._order:
            raise InvalidActionError("init must be the first action")
        self._order.append(root)
        self._pos[root] = 0

    def fork(self, parent: Task, child: Task) -> None:
        if parent not in self._pos:
            raise InvalidActionError(f"fork from unknown task {parent!r}")
        if child in self._pos:
            raise InvalidActionError(f"fork of existing task {child!r}")
        at = self._pos[parent] + 1
        self._order.insert(at, child)
        for i in range(at, len(self._order)):
            self._pos[self._order[i]] = i

    def __contains__(self, task: Task) -> bool:
        return task in self._pos

    def __len__(self) -> int:
        return len(self._order)

    def less(self, a: Task, b: Task) -> bool:
        """``t ⊢ a < b`` for the trace applied so far."""
        return self._pos[a] < self._pos[b]

    def sorted_tasks(self) -> list[Task]:
        """All tasks in ascending ``<`` order."""
        return list(self._order)

    @classmethod
    def from_trace(cls, trace: Iterable[Action]) -> "TJOrderOracle":
        oracle = cls()
        for action in trace:
            oracle.apply(action)
        return oracle


def tj_less(trace: Iterable[Action], a: Task, b: Task) -> bool:
    """One-shot query ``t ⊢ a < b`` (builds the oracle; O(n²))."""
    return TJOrderOracle.from_trace(trace).less(a, b)
