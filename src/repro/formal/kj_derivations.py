"""KJ derivation trees and the constructive proof of Theorem 4.3.

Mirrors :mod:`repro.formal.derivations` for the Known Joins judgment
``t ⊢ a ≺ b`` (Definition 4.1): proof objects for KJ-child, KJ-inherit,
KJ-learn and KJ-mono, a provenance-tracking builder, an independent
checker — and :func:`translate_kj_to_tj`, the paper's proof of
Theorem 4.3 run as a program:

* KJ-child   becomes TJ-left (reflexive premise);
* KJ-inherit becomes TJ-right (translated premise);
* KJ-mono    becomes TJ-mono;
* KJ-learn at ``join(a, b)`` becomes a *transitive composition*
  (Lemma 3.8, :func:`~repro.formal.transitivity.compose`) of the
  translated premise ``b < c`` with ``a < b``, the latter obtained from
  the trace's KJ-validity (valid-join-R guarantees ``a ≺ b`` before the
  join; recurse to translate it).

Every translated derivation is validated by the same independent TJ
checker — the subsumption theorem with its proof steps executed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from .actions import Action, Fork, Init, Join, Task
from .derivations import Derivation as TJDerivation
from .derivations import TJLeft, TJMono, TJRight, build_to
from .transitivity import compose

__all__ = [
    "KJChild",
    "KJInherit",
    "KJLearn",
    "KJMono",
    "KJDerivation",
    "derive_kj",
    "check_kj_derivation",
    "translate_kj_to_tj",
]


@dataclass(frozen=True)
class KJChild:
    """``t; fork(a, b) ⊢ a ≺ b``."""

    conclusion: tuple[Task, Task]
    fork_index: int


@dataclass(frozen=True)
class KJInherit:
    """``t ⊢ a ≺ c  ⟹  t; fork(a, b) ⊢ b ≺ c``."""

    conclusion: tuple[Task, Task]
    fork_index: int
    premise: "KJDerivation"


@dataclass(frozen=True)
class KJLearn:
    """``t ⊢ b ≺ c  ⟹  t; join(a, b) ⊢ a ≺ c``."""

    conclusion: tuple[Task, Task]
    join_index: int
    premise: "KJDerivation"


@dataclass(frozen=True)
class KJMono:
    """``t1 ⊢ a ≺ b  ⟹  t1; t2 ⊢ a ≺ b``."""

    conclusion: tuple[Task, Task]
    prefix_len: int
    premise: "KJDerivation"


KJDerivation = Union[KJChild, KJInherit, KJLearn, KJMono]


def _use(deriv: KJDerivation) -> int:
    """Index of the action the outermost rule consumes (monos skipped)."""
    while isinstance(deriv, KJMono):
        deriv = deriv.premise
    if isinstance(deriv, KJLearn):
        return deriv.join_index
    return deriv.fork_index


def _weaken(deriv: KJDerivation, target_scope: int) -> KJDerivation:
    """Make *deriv* usable at *target_scope* (KJ-mono is scope-flexible)."""
    if isinstance(deriv, KJMono):
        assert deriv.prefix_len <= target_scope
        return deriv
    have = _use(deriv) + 1
    if have == target_scope:
        return deriv
    assert have < target_scope
    return KJMono(deriv.conclusion, have, deriv)


def derive_kj(trace: list[Action], a: Task, b: Task) -> Optional[KJDerivation]:
    """A KJ derivation of ``trace ⊢ a ≺ b``, or None when it is false.

    Replays the trace keeping, for every knowledge pair, the derivation
    that first established it (knowledge is monotone, so first suffices).
    Joins are processed unconditionally (like the semantic reference):
    for traces that are not KJ-valid this still derives the Definition
    4.1 relation, but :func:`translate_kj_to_tj` additionally requires
    KJ validity.
    """
    prov: dict[Task, dict[Task, KJDerivation]] = {}
    for i, action in enumerate(trace):
        if isinstance(action, Init):
            prov[action.task] = {}
        elif isinstance(action, Fork):
            parent, child = action.parent, action.child
            prov[child] = {
                y: KJInherit((child, y), i, _weaken(d, i))
                for y, d in prov[parent].items()
            }
            prov[parent][child] = KJChild((parent, child), i)
        elif isinstance(action, Join):
            waiter, joinee = action.waiter, action.joinee
            for y, d in prov[joinee].items():
                if y not in prov[waiter]:
                    prov[waiter][y] = KJLearn((waiter, y), i, _weaken(d, i))
    return prov.get(a, {}).get(b)


def check_kj_derivation(trace: list[Action], deriv: KJDerivation) -> bool:
    """Independently validate a KJ derivation over the whole trace."""
    return _check(trace, deriv, len(trace))


def _check(trace: list[Action], deriv: KJDerivation, scope: int) -> bool:
    if isinstance(deriv, KJMono):
        if not (0 < deriv.prefix_len <= scope):
            return False
        if deriv.premise.conclusion != deriv.conclusion:
            return False
        return _check(trace, deriv.premise, deriv.prefix_len)

    if isinstance(deriv, KJLearn):
        i = deriv.join_index
        if not (0 <= i < scope) or scope != i + 1:
            return False
        action = trace[i]
        if not isinstance(action, Join):
            return False
        a, c = deriv.conclusion
        if a != action.waiter:
            return False
        if deriv.premise.conclusion != (action.joinee, c):
            return False
        return _check(trace, deriv.premise, i)

    i = deriv.fork_index
    if not (0 <= i < scope) or scope != i + 1:
        return False
    action = trace[i]
    if not isinstance(action, Fork):
        return False
    if isinstance(deriv, KJChild):
        return deriv.conclusion == (action.parent, action.child)
    assert isinstance(deriv, KJInherit)
    b, c = deriv.conclusion
    if b != action.child:
        return False
    if deriv.premise.conclusion != (action.parent, c):
        return False
    return _check(trace, deriv.premise, i)


def translate_kj_to_tj(trace: list[Action], deriv: KJDerivation) -> TJDerivation:
    """Theorem 4.3, constructively: a TJ derivation of the same pair.

    Requires the *trace* to be KJ-valid at every join the derivation's
    KJ-learn steps consume (valid-join-R supplies the ``a ≺ b`` those
    steps lean on).
    """
    if isinstance(deriv, KJMono):
        return TJMono(
            deriv.conclusion,
            deriv.prefix_len,
            translate_kj_to_tj(trace, deriv.premise),
        )
    if isinstance(deriv, KJChild):
        return TJLeft(deriv.conclusion, deriv.fork_index, None)
    if isinstance(deriv, KJInherit):
        inner = translate_kj_to_tj(trace, deriv.premise)
        return TJRight(
            deriv.conclusion, deriv.fork_index, build_to(inner, deriv.fork_index)
        )
    assert isinstance(deriv, KJLearn)
    i = deriv.join_index
    action = trace[i]
    assert isinstance(action, Join)
    a, c = deriv.conclusion
    b = action.joinee
    prefix = trace[:i]
    # t' ⊢ b < c from the premise
    d_bc = build_to(translate_kj_to_tj(trace, deriv.premise), i)
    if a == b:  # degenerate self-join in a non-valid trace; c unchanged
        return _tj_weaken_to(d_bc, i + 1)
    # t' ⊢ a ≺ b from KJ validity of the join, then translate
    kj_ab = derive_kj(prefix, a, b)
    if kj_ab is None:
        raise ValueError(
            f"trace is not KJ-valid at action {i} ({action}); "
            "Theorem 4.3's hypothesis fails"
        )
    d_ab = build_to(translate_kj_to_tj(prefix, kj_ab), i)
    # Lemma 3.8 composes them within the prefix
    composed = compose(prefix, d_ab, d_bc)
    return _tj_weaken_to(composed, i + 1)


def _tj_weaken_to(deriv: TJDerivation, scope: int) -> TJDerivation:
    """Like build_to but tolerant of already-flexible monos."""
    return build_to(deriv, scope)
