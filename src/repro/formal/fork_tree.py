"""The fork tree of a trace (Definitions 3.12–3.14) and the ``<_T`` order.

The fork tree ``T`` has an edge for every ``fork(a, b)`` in the trace and a
child-index function ``I`` recording fork order among siblings.  Theorem
3.15 decides the preorder traversal ``<_T`` — which Theorem 3.17 proves is
exactly the TJ permission order — by a case analysis on the *extended*
lowest common ancestor ``lca+``:

* ``anc+``  — ``a`` is a proper ancestor of ``b``:   ``a <_T b``;
* ``dec*``  — ``a`` is ``b`` or a descendant of it:  ``not (a <_T b)``;
* ``sib(a', b')`` — the branches diverge at siblings ``a'``, ``b'``:
  ``a <_T b  iff  I(a') > I(b')``  (note the *reversed* comparison: the
  later-forked sibling is the smaller one, so a younger subtree may join
  into an older sibling's subtree).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Iterable, Iterator, Literal, Optional, Union

from .actions import Action, Fork, Init, Task
from ..errors import InvalidActionError

__all__ = ["ForkTree", "LcaPlus", "AncPlus", "DecStar", "Sib", "lca_plus"]


@dataclass(frozen=True, slots=True)
class AncPlus:
    """``lca+(a, b) = anc+``: *a* is a proper ancestor of *b*."""


@dataclass(frozen=True, slots=True)
class DecStar:
    """``lca+(a, b) = dec*``: *a* is a descendant of, or equal to, *b*."""


@dataclass(frozen=True, slots=True)
class Sib:
    """``lca+(a, b) = sib(a', b')``.

    ``a_branch`` / ``b_branch`` are the unique siblings on the paths from
    the LCA down to *a* and *b* respectively.
    """

    a_branch: Task
    b_branch: Task


LcaPlus = Union[AncPlus, DecStar, Sib]


class ForkTree:
    """A fork tree built incrementally from ``init``/``fork`` actions.

    Stores, per task: parent, child index (``I``), depth, and children in
    fork order.  All queries of Definitions 3.12–3.14 and the Theorem 3.15
    decision procedure are provided.
    """

    def __init__(self) -> None:
        self._parent: dict[Task, Optional[Task]] = {}
        self._index: dict[Task, int] = {}
        self._depth: dict[Task, int] = {}
        self._children: dict[Task, list[Task]] = {}
        self._root: Optional[Task] = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_root(self, task: Task) -> None:
        if self._root is not None:
            raise InvalidActionError(f"root already initialised to {self._root!r}")
        self._root = task
        self._parent[task] = None
        self._index[task] = 0
        self._depth[task] = 0
        self._children[task] = []

    def add_child(self, parent: Task, child: Task) -> None:
        if parent not in self._parent:
            raise InvalidActionError(f"fork from unknown task {parent!r}")
        if child in self._parent:
            raise InvalidActionError(f"fork of already-existing task {child!r}")
        sibs = self._children[parent]
        self._parent[child] = parent
        self._index[child] = len(sibs)
        self._depth[child] = self._depth[parent] + 1
        self._children[child] = []
        sibs.append(child)

    def apply(self, action: Action) -> None:
        """Apply the tree-relevant effect of one action (joins are no-ops)."""
        if isinstance(action, Init):
            self.add_root(action.task)
        elif isinstance(action, Fork):
            self.add_child(action.parent, action.child)

    @classmethod
    def from_trace(cls, trace: Iterable[Action]) -> "ForkTree":
        tree = cls()
        for action in trace:
            tree.apply(action)
        return tree

    # ------------------------------------------------------------------
    # basic queries
    # ------------------------------------------------------------------
    def __contains__(self, task: Task) -> bool:
        return task in self._parent

    def __len__(self) -> int:
        return len(self._parent)

    @property
    def root(self) -> Optional[Task]:
        return self._root

    def tasks(self) -> Iterator[Task]:
        return iter(self._parent)

    def parent(self, task: Task) -> Optional[Task]:
        """The unique forking task of *task* (Lemma 3.6), or None for the root."""
        return self._parent[task]

    def index(self, task: Task) -> int:
        """``I(task)``: the fork-order index among its siblings."""
        return self._index[task]

    def depth(self, task: Task) -> int:
        return self._depth[task]

    def children(self, task: Task) -> tuple[Task, ...]:
        return tuple(self._children[task])

    def height(self) -> int:
        """Height of the tree = max depth (0 for a lone root)."""
        return max(self._depth.values(), default=0)

    def path_from_root(self, task: Task) -> list[Task]:
        """Tasks on the root→task path, inclusive."""
        path = [task]
        while (p := self._parent[path[-1]]) is not None:
            path.append(p)
        path.reverse()
        return path

    def spawn_path(self, task: Task) -> tuple[int, ...]:
        """The sequence of child indices from the root down to *task*.

        This is exactly the per-task array maintained by TJ-SP.
        """
        ixs: list[int] = []
        t: Optional[Task] = task
        while self._parent[t] is not None:
            ixs.append(self._index[t])
            t = self._parent[t]
        ixs.reverse()
        return tuple(ixs)

    def is_ancestor(self, a: Task, b: Task) -> bool:
        """True iff *a* is a *proper* ancestor of *b* (Definition 3.7)."""
        if a == b:
            return False
        da, db = self._depth[a], self._depth[b]
        if da >= db:
            return False
        t: Optional[Task] = b
        for _ in range(db - da):
            t = self._parent[t]
        return t == a

    # ------------------------------------------------------------------
    # Definition 3.14: extended lowest common ancestor
    # ------------------------------------------------------------------
    def lca_plus(self, a: Task, b: Task) -> LcaPlus:
        """Classify the relative tree position of *a* and *b*.

        Returns :class:`AncPlus`, :class:`DecStar` or :class:`Sib` per
        Definition 3.14.
        """
        if a == b:
            return DecStar()
        # Lift the deeper node to the other's depth, remembering the last
        # node stepped from on each side.
        x, y = a, b
        bx: Optional[Task] = None  # branch child below the meeting point, a-side
        by: Optional[Task] = None
        while self._depth[x] > self._depth[y]:
            bx, x = x, self._parent[x]
        while self._depth[y] > self._depth[x]:
            by, y = y, self._parent[y]
        if x == y:
            # One was an ancestor of the other.
            return AncPlus() if bx is None else DecStar()
        while x != y:
            bx, x = x, self._parent[x]
            by, y = y, self._parent[y]
        assert bx is not None and by is not None
        return Sib(bx, by)

    def lca(self, a: Task, b: Task) -> Task:
        """The traditional lowest common ancestor."""
        kind = self.lca_plus(a, b)
        if isinstance(kind, AncPlus):
            return a
        if isinstance(kind, DecStar):
            return b
        parent = self._parent[kind.a_branch]
        assert parent is not None
        return parent

    # ------------------------------------------------------------------
    # Theorem 3.15: decision procedure for <_T
    # ------------------------------------------------------------------
    def less(self, a: Task, b: Task) -> bool:
        """Decide ``a <_T b`` (equivalently ``t ⊢ a < b``, Theorem 3.17)."""
        kind = self.lca_plus(a, b)
        if isinstance(kind, AncPlus):
            return True
        if isinstance(kind, DecStar):
            return False
        return self._index[kind.a_branch] > self._index[kind.b_branch]

    def preorder(self) -> list[Task]:
        """All tasks sorted ascending by ``<_T``.

        This is a preorder traversal that visits children in *reverse* fork
        order, because later-forked siblings are smaller (Theorem 3.15 c).
        """
        if self._root is None:
            return []
        out: list[Task] = []
        stack: list[Task] = [self._root]
        while stack:
            t = stack.pop()
            out.append(t)
            # Children pushed in fork order => popped latest-first, so the
            # latest fork (smallest) is emitted immediately after its parent.
            stack.extend(self._children[t])
        return out


def lca_plus(trace: Iterable[Action], a: Task, b: Task) -> LcaPlus:
    """Convenience: ``lca+`` computed on the fork tree of *trace*."""
    return ForkTree.from_trace(trace).lca_plus(a, b)
