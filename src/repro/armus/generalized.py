"""Generalised (resource-based) deadlock avoidance — the full Armus model.

The Armus paper (Cogumbreiro et al., PPoPP 2015) verifies deadlocks for
*barrier* synchronisation, where a blocked operation is not an edge
between two tasks but a bipartite relationship:

* a task **waits for** an event (a barrier phase, a future's
  termination, ...);
* a task **impedes** an event (the phase cannot advance / the future
  cannot resolve until this task acts).

A deadlock is a cycle alternating wait-for and impedes edges.  Armus'
key trick is *graph-model selection*: the bipartite graph can be
projected onto tasks only (the Wait-For Graph, WFG: ``t1 -> t2`` iff t1
waits for an event t2 impedes) or onto events only (the State Graph,
SG: ``e1 -> e2`` iff some task impeding e1 is blocked on e2); both have
a cycle iff the bipartite graph does, and Armus checks whichever
projection is currently smaller.

This module implements the full model.  The futures-only subset used by
the TJ evaluation (every event is "task X terminated", impeded only by
X) degenerates to :class:`~repro.armus.detector.ArmusDetector`; the
generalised form additionally covers phasers/barriers
(:mod:`repro.runtime.phaser`) and mixed join+barrier cycles — exactly
the "primitives other than Futures" the paper's Section 2.4 leaves out
of scope.
"""

from __future__ import annotations

import threading
from dataclasses import asdict, dataclass
from time import perf_counter_ns
from typing import Hashable, Iterable, Literal, Optional

from ..errors import DeadlockAvoidedError
from ..obs import active as _active_telemetry

__all__ = ["GeneralizedDetector", "GeneralizedStats", "GraphModel"]

GraphModel = Literal["wfg", "sg", "auto"]


@dataclass
class GeneralizedStats:
    cycle_checks: int = 0
    deadlocks_avoided: int = 0
    wfg_checks: int = 0
    sg_checks: int = 0

    def snapshot(self) -> dict:
        """The uniform stats-source protocol: a flat field dict."""
        return asdict(self)


class GeneralizedDetector:
    """Cycle-detecting avoidance over the bipartite wait/impede graph.

    All operations are atomic under one lock.  ``model`` selects the
    projection used by cycle checks: ``"wfg"`` (tasks), ``"sg"``
    (events) or ``"auto"`` (whichever side currently has fewer
    vertices — Armus' dynamic model selection).
    """

    def __init__(self, model: GraphModel = "auto") -> None:
        if model not in ("wfg", "sg", "auto"):
            raise ValueError(f"unknown graph model {model!r}")
        self.model = model
        self.stats = GeneralizedStats()
        obs = _active_telemetry()
        self._obs = obs
        if obs is not None:
            obs.registry.add_source("generalized", self.stats.snapshot)
        self._lock = threading.Lock()
        #: task -> set of events the task is blocked waiting for
        self._waits: dict[Hashable, set[Hashable]] = {}
        #: event -> set of tasks that must act before the event fires
        self._impeders: dict[Hashable, set[Hashable]] = {}
        #: task -> set of events the task impedes (reverse index)
        self._impedes: dict[Hashable, set[Hashable]] = {}

    # ------------------------------------------------------------------
    # registration of the impedes relation (non-blocking, no checks)
    # ------------------------------------------------------------------
    def add_impeder(self, task: Hashable, event: Hashable) -> None:
        """Record that *event* cannot fire until *task* acts."""
        with self._lock:
            self._impeders.setdefault(event, set()).add(task)
            self._impedes.setdefault(task, set()).add(event)

    def add_impeders(self, tasks: Iterable[Hashable], event: Hashable) -> None:
        """Batch :meth:`add_impeder`: all *tasks* impede *event*.

        One lock acquisition covers the whole party list — the phaser's
        phase advance registers every registered party against the next
        phase, and paying the lock per party made that O(parties) lock
        traffic on every barrier round.
        """
        tasks = list(tasks)
        if not tasks:
            return
        with self._lock:
            self._impeders.setdefault(event, set()).update(tasks)
            for task in tasks:
                self._impedes.setdefault(task, set()).add(event)

    def remove_impeder(self, task: Hashable, event: Hashable) -> None:
        """The task acted (arrived / terminated): it no longer impedes."""
        with self._lock:
            self._discard(self._impeders, event, task)
            self._discard(self._impedes, task, event)

    @staticmethod
    def _discard(index: dict, key: Hashable, value: Hashable) -> None:
        bucket = index.get(key)
        if bucket is not None:
            bucket.discard(value)
            if not bucket:
                del index[key]

    # ------------------------------------------------------------------
    # blocking protocol
    # ------------------------------------------------------------------
    def block(self, task: Hashable, event: Hashable) -> None:
        """Atomically verify and register ``task waits-for event``.

        Raises :class:`DeadlockAvoidedError` (registering nothing) if the
        new edge would close an alternating wait/impede cycle.
        """
        with self._lock:
            obs = self._obs
            if obs is not None:
                t0 = perf_counter_ns()
            self.stats.cycle_checks += 1
            cycle = self._find_cycle_with(task, event)
            if obs is not None:
                obs.cycle_check_ns.observe(perf_counter_ns() - t0)
            if cycle is not None:
                self.stats.deadlocks_avoided += 1
                raise DeadlockAvoidedError(cycle=tuple(cycle))
            self._waits.setdefault(task, set()).add(event)

    def unblock(self, task: Hashable, event: Hashable) -> None:
        with self._lock:
            self._discard(self._waits, task, event)

    # ------------------------------------------------------------------
    # cycle detection on the selected projection
    # ------------------------------------------------------------------
    def _pick_model(self) -> str:
        if self.model != "auto":
            return self.model
        n_tasks = len(self._waits) + 1
        n_events = len(self._impeders)
        return "wfg" if n_tasks <= n_events else "sg"

    def _find_cycle_with(
        self, task: Hashable, event: Hashable
    ) -> Optional[list[Hashable]]:
        """A cycle created by adding ``task -> event``, if any.

        Equivalent on both projections; we search the bipartite graph
        directly but *traverse* it in the order the chosen projection
        would, counting which projection was used for the statistics.
        """
        model = self._pick_model()
        if model == "wfg":
            self.stats.wfg_checks += 1
        else:
            self.stats.sg_checks += 1
        # A cycle through the new edge exists iff, starting from `event`,
        # alternating impeders -> their waited events, we can reach an
        # event impeded by `task`... i.e. reach `task` itself.
        seen_events: set[Hashable] = set()
        stack: list[Hashable] = [event]
        parent: dict[Hashable, tuple[Hashable, Hashable]] = {}
        while stack:
            ev = stack.pop()
            if ev in seen_events:
                continue
            seen_events.add(ev)
            for impeder in self._impeders.get(ev, ()):
                if impeder == task:
                    # reconstruct event-level cycle for the error message
                    cycle: list[Hashable] = [ev]
                    while cycle[-1] in parent:
                        cycle.append(parent[cycle[-1]][1])
                    cycle.reverse()
                    return [task, *cycle]
                for nxt in self._waits.get(impeder, ()):
                    if nxt not in seen_events:
                        parent[nxt] = (impeder, ev)
                        stack.append(nxt)
        return None

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def wfg_edges(self) -> set[tuple[Hashable, Hashable]]:
        """The task-to-task projection (t1 waits event impeded by t2)."""
        with self._lock:
            return {
                (t, impeder)
                for t, events in self._waits.items()
                for ev in events
                for impeder in self._impeders.get(ev, ())
            }

    def sg_edges(self) -> set[tuple[Hashable, Hashable]]:
        """The event-to-event projection (impeder of e1 waits on e2)."""
        with self._lock:
            return {
                (e1, e2)
                for e1, tasks in self._impeders.items()
                for t in tasks
                for e2 in self._waits.get(t, ())
            }

    def blocked_tasks(self) -> int:
        with self._lock:
            return len(self._waits)

    def live_events(self) -> int:
        with self._lock:
            return len(self._impeders)
