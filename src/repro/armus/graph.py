"""A concurrent waits-for graph.

Vertices are task identities (any hashable — the runtimes use task
objects); an edge ``a -> b`` means task *a* is currently blocked joining
on task *b*.  In the futures model a blocked task waits on exactly one
join at a time, but the structure is kept general.

All mutation and path queries happen under one lock: the graph only ever
contains *currently blocked* tasks, so it is small (bounded by the number
of live tasks, not by n), and the simplicity buys the atomic
check-then-block needed for race-free avoidance.

The path query — the only non-O(1) operation, and the one Armus runs
under the lock on every fallback block — has a compiled twin in the
TJ-SP kernel extension (``find_path``): same DFS, same parent-chain
reconstruction, C loop instead of Python.  Each graph resolves it at
construction through :mod:`repro.core._cbuild`, so ``REPRO_TJ_BACKEND``
governs it together with the policy kernel and the pure-Python DFS
remains the portable fallback.
"""

from __future__ import annotations

import threading
from typing import Hashable, Iterator, Optional

from ..core import _cbuild

__all__ = ["WaitsForGraph"]


def _compiled_find_path():
    """The C ``find_path(succ, src, dst)``, or None (pure Python)."""
    try:
        module = _cbuild.compiled_module()
    except RuntimeError:
        # REPRO_TJ_BACKEND=c with no toolchain: the policy constructor is
        # the enforcement point for that contract; the detector should
        # still work, on the Python DFS.
        return None
    return getattr(module, "find_path", None) if module is not None else None


class WaitsForGraph:
    """Directed graph of blocked join operations."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._succ: dict[Hashable, set[Hashable]] = {}
        self._c_find_path = _compiled_find_path()

    # The lock is exposed so a caller can perform check+add atomically.
    @property
    def lock(self) -> threading.Lock:
        return self._lock

    # ------------------------------------------------------------------
    # unlocked primitives (caller must hold .lock)
    # ------------------------------------------------------------------
    def _add_edge(self, waiter: Hashable, joinee: Hashable) -> None:
        self._succ.setdefault(waiter, set()).add(joinee)

    def _has_edge(self, waiter: Hashable, joinee: Hashable) -> bool:
        succs = self._succ.get(waiter)
        return succs is not None and joinee in succs

    def _remove_edge(self, waiter: Hashable, joinee: Hashable) -> None:
        succs = self._succ.get(waiter)
        if succs is not None:
            succs.discard(joinee)
            if not succs:
                del self._succ[waiter]

    def _find_path(self, src: Hashable, dst: Hashable) -> Optional[list[Hashable]]:
        """A path src ⇝ dst through blocked edges, or None.  Iterative DFS."""
        if self._c_find_path is not None:
            return self._c_find_path(self._succ, src, dst)
        if src == dst:
            return [src]
        if src not in self._succ:
            return None
        parent: dict[Hashable, Hashable] = {}
        stack = [src]
        seen = {src}
        while stack:
            node = stack.pop()
            for succ in self._succ.get(node, ()):
                if succ in seen:
                    continue
                parent[succ] = node
                if succ == dst:
                    path = [dst]
                    while path[-1] != src:
                        path.append(parent[path[-1]])
                    path.reverse()
                    return path
                seen.add(succ)
                stack.append(succ)
        return None

    # ------------------------------------------------------------------
    # locked convenience API
    # ------------------------------------------------------------------
    def add_edge(self, waiter: Hashable, joinee: Hashable) -> None:
        with self._lock:
            self._add_edge(waiter, joinee)

    def remove_edge(self, waiter: Hashable, joinee: Hashable) -> None:
        with self._lock:
            self._remove_edge(waiter, joinee)

    def has_path(self, src: Hashable, dst: Hashable) -> bool:
        with self._lock:
            return self._find_path(src, dst) is not None

    def edges(self) -> list[tuple[Hashable, Hashable]]:
        with self._lock:
            return [(a, b) for a, succs in self._succ.items() for b in succs]

    def __len__(self) -> int:
        with self._lock:
            return sum(len(s) for s in self._succ.values())
