"""Armus-style deadlock avoidance by cycle detection (Cogumbreiro et al.,
PPoPP 2015), used as the precision fallback of Section 6.

Protocol per blocking join ``a -> b`` (all atomic under the graph lock):
if a path ``b ⇝ a`` exists through currently blocked joins, the join would
close a cycle — raise :class:`DeadlockAvoidedError` *without blocking*;
otherwise record the edge and let the caller block.  The caller must
release the edge once the join completes.

The atomic check-then-block is essential: two tasks concurrently starting
joins that each individually pass a check could otherwise both proceed and
close a cycle (a classic TOCTOU race).
"""

from __future__ import annotations

import threading
from dataclasses import asdict, dataclass
from time import perf_counter_ns
from typing import Hashable

from .graph import WaitsForGraph
from ..errors import DeadlockAvoidedError
from ..obs import active as _active_telemetry

__all__ = ["ArmusDetector", "ArmusStats"]


@dataclass
class ArmusStats:
    """Counters for the fallback's activity (read by the evaluation)."""

    #: joins a policy flagged, referred here, and admitted (false positives)
    false_positives: int = 0
    #: joins refused because they would have closed a real cycle
    deadlocks_avoided: int = 0
    #: full cycle checks executed (the expensive operation Table 2 pays for)
    cycle_checks: int = 0

    def snapshot(self) -> dict:
        """The uniform stats-source protocol: a flat field dict."""
        return asdict(self)


class ArmusDetector:
    """Waits-for-graph cycle detection with atomic blocking registration."""

    def __init__(self) -> None:
        self.graph = WaitsForGraph()
        self.stats = ArmusStats()
        obs = _active_telemetry()
        self._obs = obs
        if obs is not None:
            obs.registry.add_source("armus", self.stats.snapshot)
        #: number of currently blocked edges that a policy had flagged.
        #: While this is zero, every blocked edge is policy-consistent and
        #: the policy's soundness theorem guarantees acyclicity, so checks
        #: on *permitted* joins can be skipped.  The moment one forced edge
        #: is live, permitted joins must be checked too: a permitted edge
        #: can close a cycle through forced edges (see
        #: tests/armus/test_forced_edge_soundness.py for a 3-task example).
        self._live_forced = 0
        self._forced_edges: set[tuple[Hashable, Hashable]] = set()
        self._lock = self.graph.lock

    # ------------------------------------------------------------------
    def block(
        self, waiter: Hashable, joinee: Hashable, *, flagged: bool, force_check: bool = False
    ) -> None:
        """Atomically verify and register the blocking edge ``waiter->joinee``.

        ``flagged`` says the conservative policy rejected this join and the
        caller is falling back to precise detection.  ``force_check`` runs
        the cycle check regardless of the verdict — used when the policy
        is quarantined and its soundness theorem no longer applies, so
        *every* blocking edge must be checked (Armus-only degradation).
        A forced check does not count as a policy false positive.  Raises
        :class:`DeadlockAvoidedError` (and registers nothing) if the edge
        would close a cycle.
        """
        with self._lock:
            if flagged or force_check or self._live_forced:
                obs = self._obs
                if obs is not None:
                    t0 = perf_counter_ns()
                self.stats.cycle_checks += 1
                path = self.graph._find_path(joinee, waiter)
                if obs is not None:
                    obs.cycle_check_ns.observe(perf_counter_ns() - t0)
                if path is not None:
                    self.stats.deadlocks_avoided += 1
                    raise DeadlockAvoidedError(cycle=tuple(path) + (joinee,))
            if flagged:
                self.stats.false_positives += 1
                self._live_forced += 1
            self.graph._add_edge(waiter, joinee)
            if flagged:
                self._forced_edges.add((waiter, joinee))

    def force_edge(self, waiter: Hashable, joinee: Hashable) -> bool:
        """Upgrade an already-registered edge to *forced* status.

        Used when a blocked edge's policy verdict goes stale — a task
        retry gives the joinee a fresh vertex, and a join verified
        against the old vertex may no longer be permitted against the
        new one.  Marking the edge forced makes every later permitted
        join pay the cycle check while the stale edge lives (the
        ``_live_forced`` mechanism), restoring the avoidance guarantee.
        Returns False (and does nothing) when the edge is not currently
        registered or is already forced.
        """
        with self._lock:
            edge = (waiter, joinee)
            if edge in self._forced_edges or not self.graph._has_edge(waiter, joinee):
                return False
            self._forced_edges.add(edge)
            self._live_forced += 1
            return True

    def count_false_positive(self) -> None:
        """Record a policy false positive diagnosed without blocking.

        Used when a flagged join targets an already-terminated task: no
        edge is registered and no cycle is possible, but the (vacuous)
        false positive still counts toward the precision statistics.
        Public so callers never have to reach into the detector's lock.
        """
        with self._lock:
            self.stats.false_positives += 1

    def unblock(self, waiter: Hashable, joinee: Hashable) -> None:
        """Remove the edge once the join has completed (or was abandoned)."""
        with self._lock:
            self.graph._remove_edge(waiter, joinee)
            if (waiter, joinee) in self._forced_edges:
                self._forced_edges.discard((waiter, joinee))
                self._live_forced -= 1

    @property
    def live_forced_edges(self) -> int:
        with self._lock:
            return self._live_forced
