"""The sound-and-precise combination of a conservative policy with Armus.

Section 6: "if the given policy flags a join as invalid, general cycle
detection is invoked to determine if the join would truly create a
deadlock or if it is just a false positive."  :class:`HybridVerifier`
packages that composition for the runtimes:

1. fast path — the policy permits the join: register the blocking edge
   and proceed (the cycle check is skipped only while no forced edge is
   live; see :class:`~repro.armus.detector.ArmusDetector`);
2. slow path — the policy flags the join: run precise cycle detection;
   a real cycle raises :class:`DeadlockAvoidedError`, otherwise the join
   proceeds as a counted false positive.

The same object can also replay *traces* (no runtime, no threads), which
is how the precision ablation measures false-positive rates per policy.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Optional

from .detector import ArmusDetector
from ..core.policy import JoinPolicy
from ..core.verifier import Verifier
from ..errors import DeadlockAvoidedError
from ..formal.actions import Action, Fork, Init, Join

__all__ = ["HybridVerifier", "replay_trace"]


class HybridVerifier:
    """A :class:`Verifier` plus an :class:`ArmusDetector` fallback."""

    def __init__(
        self,
        policy: JoinPolicy,
        detector: Optional[ArmusDetector] = None,
        *,
        fail_mode: str = "raise",
        journal: "object | None" = None,
        verifier: "Verifier | None" = None,
    ) -> None:
        # An injected verifier (e.g. a RemoteVerifier speaking to the
        # sidecar) replaces the locally-constructed one wholesale; the
        # policy/fail_mode/journal arguments then belong to the caller's
        # construction of it, not ours.
        self.verifier = (
            verifier
            if verifier is not None
            else Verifier(policy, fail_mode=fail_mode, journal=journal)
        )
        self.detector = detector if detector is not None else ArmusDetector()

    @property
    def journal(self) -> "object | None":
        return self.verifier.journal

    @property
    def name(self) -> str:
        return self.verifier.name

    @property
    def policy(self) -> JoinPolicy:
        return self.verifier.policy

    # ------------------------------------------------------------------
    # runtime-facing protocol
    # ------------------------------------------------------------------
    def on_init(self) -> object:
        return self.verifier.on_init()

    def on_fork(self, parent: object) -> object:
        return self.verifier.on_fork(parent)

    def begin_join(
        self,
        joiner_task: Hashable,
        joinee_task: Hashable,
        joiner_vertex: object,
        joinee_vertex: object,
        *,
        joinee_done: bool,
        flagged: Optional[bool] = None,
    ) -> bool:
        """Gate a join about to block.

        Returns True if a blocking edge was registered (the caller must
        call :meth:`end_join` after the wait); False when no edge was
        needed because the joinee had already terminated.  Raises
        :class:`DeadlockAvoidedError` for a join that would truly deadlock.

        ``flagged`` lets a caller that already verified the join in a
        batch (``Verifier.check_joins``) pass the precomputed verdict in,
        so the policy check — and its statistics — are not repeated.
        Only sound for ``stable_permits`` policies, where the verdict
        cannot have changed since the batch check.
        """
        if flagged is None:
            flagged = not self.verifier.check_join(joiner_vertex, joinee_vertex)
        if joinee_done:
            # Terminated joinee: no blocking, no cycle possible.  A flagged
            # join still counts as a (vacuous) false positive — the paper's
            # verifiers pay the check here too.
            if flagged:
                self.detector.count_false_positive()
            return False
        # While the verifier is unsound — policy quarantined, or a remote
        # verifier degraded off its sidecar — the policy's soundness
        # theorem is void: every blocking edge must face the precise
        # cycle check (Armus-only mode).
        self.detector.block(
            joiner_task,
            joinee_task,
            flagged=flagged,
            force_check=self.verifier.unsound,
        )
        return True

    def end_join(self, joiner_task: Hashable, joinee_task: Hashable) -> None:
        """Release the blocking edge once the join has completed."""
        self.detector.unblock(joiner_task, joinee_task)

    def on_join_completed(self, joiner_vertex: object, joinee_vertex: object) -> None:
        self.verifier.on_join_completed(joiner_vertex, joinee_vertex)


def replay_trace(trace: Iterable[Action], policy: JoinPolicy) -> HybridVerifier:
    """Replay a trace through a hybrid verifier, join by join.

    Joins in a linear trace never block (the joinee's actions, if any,
    already happened), so every flagged join is a false positive; the
    returned verifier's stats summarise the policy's precision on this
    trace.  Used by the precision ablation and by tests.
    """
    hybrid = HybridVerifier(policy)
    vertices: dict[Hashable, object] = {}
    for action in trace:
        if isinstance(action, Init):
            vertices[action.task] = hybrid.on_init()
        elif isinstance(action, Fork):
            vertices[action.child] = hybrid.on_fork(vertices[action.parent])
        elif isinstance(action, Join):
            a, b = action.waiter, action.joinee
            blocked = hybrid.begin_join(a, b, vertices[a], vertices[b], joinee_done=True)
            assert not blocked
            hybrid.on_join_completed(vertices[a], vertices[b])
    return hybrid
