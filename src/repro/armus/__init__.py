"""Armus-style precise deadlock avoidance (the Section 6 fallback).

A waits-for graph over currently blocked joins, cycle detection on
candidate edges, and :class:`HybridVerifier` — the policy-plus-fallback
composition under which every verifier in the evaluation is sound *and*
precise.
"""

from .detector import ArmusDetector, ArmusStats
from .generalized import GeneralizedDetector, GeneralizedStats
from .graph import WaitsForGraph
from .hybrid import HybridVerifier, replay_trace

__all__ = [
    "ArmusDetector",
    "ArmusStats",
    "GeneralizedDetector",
    "GeneralizedStats",
    "WaitsForGraph",
    "HybridVerifier",
    "replay_trace",
]
