"""KJ-CC: compact clocks — an extension beyond the paper.

KJ knowledge is *downward closed in sibling index*: knowledge moves only
by whole-set inheritance (at forks) and whole-set learning (at joins),
and when the k-th child of ``p`` enters any set, children ``0..k-1`` of
``p`` are already there.  A knowledge set is therefore exactly
represented by the much smaller map

    ``clock : task ↦ number of leading children of that task known``

with ``a ≺ b  iff  clock_a[parent(b)] > index(b)``.

The clock has one entry per *distinct parent* known, not per task —
turning KJ-VC's O(n) fork copies into O(P) where P is the number of
distinct fork sites, which is tiny for the flat fork patterns (Crypt,
Series) that ruin KJ-VC in Table 2.  The ablation benchmark
``bench_ablation_lca.py`` quantifies the win; the property tests prove
exact equivalence with the reference KJ semantics.
"""

from __future__ import annotations

import itertools
from typing import Optional

from ..core.policy import JoinPolicy, register_policy

__all__ = ["CCNode", "KJCompactClock"]


class CCNode:
    """A task record carrying a compact knowledge clock."""

    __slots__ = ("uid", "parent_uid", "ix", "clock", "children")

    def __init__(self, uid: int, parent_uid: Optional[int], ix: Optional[int]) -> None:
        self.uid = uid
        self.parent_uid = parent_uid
        self.ix = ix
        #: parent-task uid -> number of its leading children known
        self.clock: dict[int, int] = {}
        self.children = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CCNode(uid={self.uid}, ix={self.ix})"


class KJCompactClock(JoinPolicy):
    """Known Joins verified with downward-closed child-count clocks."""

    name = "KJ-CC"

    def __init__(self) -> None:
        self._uid = itertools.count()
        self._n_nodes = 0
        self._slots = 0

    def add_child(self, parent: Optional[CCNode]) -> CCNode:
        self._n_nodes += 1
        if parent is None:
            return CCNode(next(self._uid), None, None)
        v = CCNode(next(self._uid), parent.uid, parent.children)
        # KJ-inherit: snapshot before KJ-child so the child does not know
        # itself.
        v.clock = dict(parent.clock)
        self._slots += len(v.clock)
        # KJ-child: one more leading child of the parent is known to it.
        parent.children += 1
        if parent.clock.get(parent.uid, 0) == 0:
            self._slots += 1
        parent.clock[parent.uid] = parent.children
        return v

    def permits(self, joiner: CCNode, joinee: CCNode) -> bool:
        if joinee.parent_uid is None:
            return False  # nothing ever knows the root
        assert joinee.ix is not None
        return joiner.clock.get(joinee.parent_uid, 0) > joinee.ix

    def on_join(self, joiner: CCNode, joinee: CCNode) -> None:
        """KJ-learn: pointwise max of the two clocks into the joiner."""
        clock = joiner.clock
        for uid, count in joinee.clock.items():
            prev = clock.get(uid, 0)
            if count > prev:
                if prev == 0:
                    self._slots += 1
                clock[uid] = count

    def space_units(self) -> int:
        return 4 * self._n_nodes + 2 * self._slots


register_policy(KJCompactClock.name, KJCompactClock)
