"""KJ-SS: Known Joins with snapshot sets (Cogumbreiro et al., OOPSLA 2017).

Instead of materialising knowledge sets, each task stores O(1) state per
event and queries walk the resulting DAG:

* at fork, the child records an *inherit snapshot* — a pointer to the
  parent plus the parent's (children, learned) counters at that instant;
* at join, the waiter appends a *learn entry* — a pointer to the joinee
  with the joinee's final counters (the joinee has terminated, so its
  state is frozen).

``a ≺ b`` holds iff the expression tree rooted at ``a``'s current state
contains ``b`` as "child j of p with j < snapshotted child count".  A
memoised DFS answers that in O(n) worst case with O(1) work per visited
snapshot — fork O(1), join O(n), space O(n), matching Table 1.
"""

from __future__ import annotations

from typing import Optional

from ..core.policy import JoinPolicy, register_policy

__all__ = ["SSNode", "KJSnapshotSets"]


class SSNode:
    """A task record holding snapshot-set state."""

    __slots__ = ("parent", "ix", "inherit_children", "inherit_learned", "children", "learned")

    def __init__(
        self,
        parent: Optional["SSNode"],
        ix: Optional[int],
        inherit_children: int,
        inherit_learned: int,
    ) -> None:
        self.parent = parent
        self.ix = ix
        #: parent's counters at our fork: we know its first
        #: ``inherit_children`` children and whatever its first
        #: ``inherit_learned`` learn entries provided.
        self.inherit_children = inherit_children
        self.inherit_learned = inherit_learned
        self.children = 0
        #: learn entries: (joinee, joinee_children, joinee_learned)
        self.learned: list[tuple["SSNode", int, int]] = []

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SSNode(ix={self.ix})"


class KJSnapshotSets(JoinPolicy):
    """Known Joins verified with snapshot sets."""

    name = "KJ-SS"

    def __init__(self) -> None:
        self._n_nodes = 0
        self._learn_entries = 0

    def add_child(self, parent: Optional[SSNode]) -> SSNode:
        self._n_nodes += 1
        if parent is None:
            return SSNode(None, None, 0, 0)
        v = SSNode(parent, parent.children, parent.children, len(parent.learned))
        parent.children += 1
        return v

    def permits(self, joiner: SSNode, joinee: SSNode) -> bool:
        memo: set[tuple[int, int, int]] = set()
        return self._knows(joiner, joiner.children, len(joiner.learned), joinee, memo)

    def _knows(
        self,
        v: SSNode,
        n_children: int,
        n_learned: int,
        target: SSNode,
        memo: set[tuple[int, int, int]],
    ) -> bool:
        """Does the knowledge of *v*, restricted to its first *n_children*
        forks and first *n_learned* learn entries, contain *target*?

        The memo key includes the restriction counters: the same node can
        appear in the DAG under different snapshots, and a later snapshot
        sees strictly more.  Visiting the largest-counter occurrence first
        would suffice, but keying on the triple is simpler and still O(n)
        amortised because counters per node take O(events) distinct values
        along one query's DFS.
        """
        while True:
            key = (id(v), n_children, n_learned)
            if key in memo:
                return False
            memo.add(key)
            # Direct knowledge: target is one of v's first n_children forks.
            if target.parent is v and target.ix is not None and target.ix < n_children:
                return True
            # Learned knowledge.  Note KJ-learn contributes K(joinee) only,
            # not {joinee}: a task may join a stranger under a fallback, and
            # that must not by itself make the stranger "known".
            for joinee, jc, jl in v.learned[:n_learned]:
                if self._knows(joinee, jc, jl, target, memo):
                    return True
            # Inherited knowledge: continue the walk in the parent without
            # recursing (keeps the hot path iterative for deep trees).
            if v.parent is None:
                return False
            v, n_children, n_learned = v.parent, v.inherit_children, v.inherit_learned

    def on_join(self, joiner: SSNode, joinee: SSNode) -> None:
        """Record a learn entry with the joinee's (final) counters."""
        joiner.learned.append((joinee, joinee.children, len(joinee.learned)))
        self._learn_entries += 1

    def space_units(self) -> int:
        return 6 * self._n_nodes + 3 * self._learn_entries


register_policy(KJSnapshotSets.name, KJSnapshotSets)
