"""KJ-VC: Known Joins with vector clocks (Cogumbreiro et al., OOPSLA 2017).

The knowledge set of each task is materialised as a characteristic
vector over task ids — conceptually a vector clock with one slot per
task.  Every fork copies the parent's whole vector (KJ-inherit) and every
join unions the joinee's vector into the waiter's (KJ-learn), giving the
Table 1 bounds this baseline is known for: O(n) fork, O(n) join, O(n²)
space.  Those costs are the point — Table 2's Crypt row (9.15x) is this
verifier paying an O(n) copy for each of 8192 forked siblings.

(A compacted representation exploiting the downward closure of KJ
knowledge lives in :mod:`repro.kj.kj_cc` as an extension.)
"""

from __future__ import annotations

import itertools
from typing import Optional

from ..core.policy import JoinPolicy, register_policy

__all__ = ["VCNode", "KJVectorClock"]


class VCNode:
    """A task record carrying its materialised knowledge vector."""

    __slots__ = ("uid", "known")

    def __init__(self, uid: int) -> None:
        self.uid = uid
        #: uids of every task this task knows (its knowledge set)
        self.known: set[int] = set()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VCNode(uid={self.uid}, |K|={len(self.known)})"


class KJVectorClock(JoinPolicy):
    """Known Joins verified with per-task knowledge vectors."""

    name = "KJ-VC"

    def __init__(self) -> None:
        self._uid = itertools.count()
        self._n_nodes = 0
        self._slots = 0  # total live knowledge entries across tasks

    def add_child(self, parent: Optional[VCNode]) -> VCNode:
        self._n_nodes += 1
        v = VCNode(next(self._uid))
        if parent is None:
            return v
        # KJ-inherit: copy the parent's whole vector (the O(n) step),
        # before KJ-child bumps it — the child must not know itself.
        v.known = set(parent.known)
        self._slots += len(v.known)
        # KJ-child: the parent now knows the new task.
        parent.known.add(v.uid)
        self._slots += 1
        return v

    def permits(self, joiner: VCNode, joinee: VCNode) -> bool:
        return joinee.uid in joiner.known

    def on_join(self, joiner: VCNode, joinee: VCNode) -> None:
        """KJ-learn: union the joinee's vector into the joiner's."""
        before = len(joiner.known)
        joiner.known |= joinee.known
        self._slots += len(joiner.known) - before

    def space_units(self) -> int:
        return self._n_nodes + self._slots


register_policy(KJVectorClock.name, KJVectorClock)
