"""Known Joins baselines (Cogumbreiro et al., OOPSLA 2017).

Two verifier implementations of the same KJ policy, differing in how the
knowledge sets are represented — exactly the two the paper evaluates
against (Table 1 / Table 2):

* :class:`KJVectorClock` (KJ-VC): O(n) fork, O(n) join, O(n²) space;
* :class:`KJSnapshotSets` (KJ-SS): O(1) fork, O(n) join, O(n) space.

plus :class:`KJCompactClock` (KJ-CC), an extension exploiting the
downward closure of KJ knowledge for O(P)-size clocks (P = distinct fork
sites known).  All are property-tested for exact agreement with the
formal knowledge semantics in :mod:`repro.formal.kj_relation`.
"""

from .kj_cc import CCNode, KJCompactClock
from .kj_ss import KJSnapshotSets, SSNode
from .kj_vc import KJVectorClock, VCNode

KJ_POLICIES = (KJVectorClock, KJSnapshotSets, KJCompactClock)

__all__ = [
    "KJVectorClock",
    "KJSnapshotSets",
    "KJCompactClock",
    "VCNode",
    "SSNode",
    "CCNode",
    "KJ_POLICIES",
]
