"""Transitive Joins (TJ): a sound and efficient online deadlock-avoidance
policy — a full reproduction of Voss, Cogumbreiro & Sarkar, PPoPP 2019.

Layers (bottom-up):

* :mod:`repro.formal` — executable trace semantics of Sections 3–4 (the
  TJ order, KJ knowledge, fork trees, lca+, deadlock cycles);
* :mod:`repro.core` — the online TJ verifier algorithms TJ-GT / TJ-JP /
  TJ-SP (Section 5) plus the TJ-OM extension;
* :mod:`repro.kj` — the Known Joins baselines KJ-VC / KJ-SS;
* :mod:`repro.armus` — precise cycle-detection fallback and the hybrid
  sound+precise composition of Section 6;
* :mod:`repro.runtime` — task-parallel futures runtimes (blocking and
  cooperative) with pluggable policy instrumentation;
* :mod:`repro.benchsuite` — the six evaluation programs and the
  steady-state measurement harness;
* :mod:`repro.analysis` — Table 1 / Table 2 / Figure 2 regeneration.

Quickstart::

    from repro import TaskRuntime

    rt = TaskRuntime(policy="TJ-SP")

    def child():
        return 21

    def main():
        fut = rt.fork(child)
        return 2 * fut.join()

    assert rt.run(main) == 42
"""

from . import armus, constructs, core, formal, kj
from .core import (
    JoinPolicy,
    NullPolicy,
    TJGlobalTree,
    TJJumpPointers,
    TJOrderMaintenance,
    TJSpawnPaths,
    TJSpawnPathsFlat,
    Verifier,
    make_policy,
)
from .armus import ArmusDetector, HybridVerifier
from .errors import (
    DeadlockAvoidedError,
    DeadlockDetectedError,
    DeadlockError,
    PolicyQuarantinedError,
    PolicyQuarantineWarning,
    PolicyViolationError,
    ReproError,
    TaskFailedError,
)
from .constructs import CilkFrame, FinishAccumulator, finish
from .kj import KJCompactClock, KJSnapshotSets, KJVectorClock
from .runtime import (
    AsyncioRuntime,
    CooperativeRuntime,
    Future,
    RetryPolicy,
    TaskRuntime,
    VerifiedExecutor,
    WorkSharingRuntime,
    current_task,
)

__version__ = "1.0.0"

__all__ = [
    "JoinPolicy",
    "NullPolicy",
    "TJGlobalTree",
    "TJJumpPointers",
    "TJSpawnPaths",
    "TJSpawnPathsFlat",
    "TJOrderMaintenance",
    "KJVectorClock",
    "KJSnapshotSets",
    "KJCompactClock",
    "Verifier",
    "HybridVerifier",
    "ArmusDetector",
    "make_policy",
    "TaskRuntime",
    "CooperativeRuntime",
    "WorkSharingRuntime",
    "AsyncioRuntime",
    "VerifiedExecutor",
    "Future",
    "current_task",
    "finish",
    "FinishAccumulator",
    "CilkFrame",
    "ReproError",
    "PolicyViolationError",
    "PolicyQuarantinedError",
    "PolicyQuarantineWarning",
    "DeadlockError",
    "DeadlockAvoidedError",
    "DeadlockDetectedError",
    "TaskFailedError",
    "RetryPolicy",
    "__version__",
]
