"""Unified telemetry for the verifier/runtime stack.

Three layers, all zero-cost when disabled:

* :mod:`repro.obs.metrics` — a thread-safe :class:`MetricsRegistry` of
  sharded counters, gauges, and fixed-bucket ns histograms; the single
  stats mechanism behind ``VerifierStats``, ``ArmusStats``, phaser and
  runtime counters.
* :mod:`repro.obs.tracing` — span-based task-lifecycle tracing with a
  ring-buffer collector and Chrome-trace / Perfetto export.
* :mod:`repro.obs.top` — a terminal ``top`` view over a live snapshot.

Telemetry is opt-in and process-global: call :func:`enable` *before*
constructing runtimes/verifiers, and they pick up the active
:class:`Telemetry` at construction and cache it on ``self``.  When no
telemetry is active (the default), every instrumentation site reduces
to one ``is None`` attribute test — no allocation, no call, verified by
the ``tracemalloc`` test in ``tests/obs/``.
"""

from __future__ import annotations

import threading
import time
import weakref
from contextlib import contextmanager
from typing import Optional

from .metrics import (
    NS_BUCKETS,
    WAIT_NS_BUCKETS,
    Counter,
    CounterGroup,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .tracing import SpanCtx, Tracer, current_span, current_trace_context

__all__ = [
    "Telemetry",
    "enable",
    "disable",
    "active",
    "enabled",
    "using",
    "MetricsRegistry",
    "CounterGroup",
    "Counter",
    "Gauge",
    "Histogram",
    "Tracer",
    "SpanCtx",
    "current_span",
    "current_trace_context",
    "NS_BUCKETS",
    "WAIT_NS_BUCKETS",
]


class Telemetry:
    """A telemetry session: one registry, one tracer, shared hot handles.

    The latency histograms and event counters the instrumentation sites
    hit on every fork/join are pre-created here and bound as plain
    attributes, so a hot path pays exactly one attribute load beyond
    the work of recording.  Per-policy join-check histograms are created
    lazily by each verifier (same registry, ``policy=...`` label).
    """

    def __init__(
        self,
        *,
        tracing: bool = True,
        trace_capacity: int = 65536,
        registry: Optional[MetricsRegistry] = None,
        trace_id: Optional[str] = None,
    ):
        self.registry = MetricsRegistry() if registry is None else registry
        self.tracer: Optional[Tracer] = (
            Tracer(trace_capacity, trace_id=trace_id) if tracing else None
        )
        self.started_at = time.time()
        self._runtimes: list = []  # weakrefs to attached runtimes
        self._runtimes_lock = threading.Lock()

        reg = self.registry
        # latency histograms (nanoseconds)
        self.fork_ns = reg.histogram("repro_runtime_fork_ns")
        self.blocked_wait_ns = reg.histogram(
            "repro_runtime_blocked_wait_ns", buckets=WAIT_NS_BUCKETS
        )
        self.cycle_check_ns = reg.histogram("repro_armus_cycle_check_ns")
        self.journal_flush_ns = reg.histogram("repro_journal_flush_ns")
        # event counters
        self.quarantines = reg.counter("repro_policy_quarantines_total")
        self.retries = reg.counter("repro_task_retries_total")
        self.wakeups = reg.counter("repro_runtime_wakeups_total")
        self.blocked_waits = reg.counter("repro_runtime_blocked_waits_total")

    # runtime attachment (for the live `top` view) ----------------------
    def attach_runtime(self, runtime) -> None:
        with self._runtimes_lock:
            self._runtimes = [r for r in self._runtimes if r() is not None]
            self._runtimes.append(weakref.ref(runtime))

    def runtimes(self) -> list:
        with self._runtimes_lock:
            return [rt for r in self._runtimes if (rt := r()) is not None]

    def blocked_joins(self) -> list:
        """All currently blocked joins across attached runtimes."""
        out = []
        for rt in self.runtimes():
            try:
                out.extend(rt.blocked_joins())
            except Exception:  # a runtime mid-shutdown is not an error
                pass
        return out

    # convenience delegates ---------------------------------------------
    def snapshot(self) -> dict:
        return self.registry.snapshot()

    def to_json(self, indent: int = 2) -> str:
        return self.registry.to_json(indent=indent)

    def to_prometheus(self) -> str:
        return self.registry.to_prometheus()

    def to_chrome_trace(self) -> Optional[dict]:
        return None if self.tracer is None else self.tracer.to_chrome_trace()


_active: Optional[Telemetry] = None
_active_lock = threading.Lock()


def enable(**kwargs) -> Telemetry:
    """Activate a fresh :class:`Telemetry` session and return it.

    Components constructed *after* this call are instrumented; existing
    objects keep whatever session (or ``None``) they saw at
    construction time.
    """
    global _active
    with _active_lock:
        _active = Telemetry(**kwargs)
        return _active


def disable() -> None:
    """Deactivate telemetry for subsequently-constructed components."""
    global _active
    with _active_lock:
        _active = None


def active() -> Optional[Telemetry]:
    """The currently-active telemetry session, or ``None``."""
    return _active


@contextmanager
def enabled(**kwargs):
    """Scoped telemetry: enable on entry, restore the prior state on exit."""
    global _active
    with _active_lock:
        prior = _active
        _active = Telemetry(**kwargs)
        session = _active
    try:
        yield session
    finally:
        with _active_lock:
            _active = prior


@contextmanager
def using(session: Optional[Telemetry]):
    """Scoped activation of an existing session (or ``None`` = disabled).

    The overhead benchmark interleaves disabled / metrics-only / full
    arms regardless of the ambient state, which :func:`enabled` cannot
    express (it always creates a fresh session).
    """
    global _active
    with _active_lock:
        prior = _active
        _active = session
    try:
        yield session
    finally:
        with _active_lock:
            _active = prior
