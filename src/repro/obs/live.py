"""The live introspection plane: attach `repro top --live` to a run.

A running :class:`~repro.runtime.procs.ProcessRuntime` (``introspect=``)
or ``repro serve`` instance answers the wire protocol's ``stats``
record with a point-in-time snapshot; this module holds both halves of
that conversation for processes that are not otherwise wire endpoints:

* :class:`IntrospectionServer` — a deliberately tiny server speaking
  just the introspection subset of the PR 7 wire vocabulary (``hello``/
  ``stats``/``ping``/``bye``).  The runtime hands it a zero-argument
  *supplier* returning the current snapshot dict; every ``stats``
  request calls it fresh, so an attached ``top --live`` sees the fleet
  move.  The ``hello`` wire-version gate is enforced exactly like the
  full sidecar's, so a mismatched peer is refused with an ``error``
  record instead of garbage.
* :func:`fetch_stats` — the client half: one connect / hello / stats /
  bye exchange returning the snapshot.  It speaks raw records rather
  than a :class:`~repro.service.client.SessionClient` so attaching for
  introspection never creates verification state on a real sidecar
  beyond the session stub the handshake names.

Nothing here is on any hot path: the server thread blocks in
``accept``, and a snapshot is computed only when a client asks.
"""

from __future__ import annotations

import socket
import threading
from typing import Callable, Optional

from ..errors import ServiceProtocolError, ServiceUnavailableError
from ..service.client import parse_remote_url
from ..service.wire import (
    WIRE_VERSION,
    RecordStream,
    validate_record,
)

__all__ = ["IntrospectionServer", "fetch_stats"]

#: the only client kinds the introspection plane understands
_INTROSPECT_KINDS = frozenset({"hello", "stats", "ping", "bye"})


class IntrospectionServer:
    """Serve live snapshots over the wire protocol's ``stats`` record.

    Parameters
    ----------
    supplier:
        Zero-argument callable returning the snapshot dict to serve.
        Called once per ``stats`` request, on the connection's reader
        thread — it must be safe to call concurrently with the run.
    port, host:
        Bind address; port 0 (default) picks a free port.  The bound
        endpoint is :attr:`url` after :meth:`start`.
    """

    def __init__(
        self,
        supplier: Callable[[], dict],
        *,
        port: int = 0,
        host: str = "127.0.0.1",
    ) -> None:
        self._supplier = supplier
        self._host = host
        self._port = port
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._conns: set = set()
        self._conns_lock = threading.Lock()
        self._stop = threading.Event()
        self._bound: Optional[tuple] = None
        #: lifetime counts (tests, snapshot debugging)
        self.connections = 0
        self.stats_served = 0

    # ------------------------------------------------------------------
    @property
    def url(self) -> str:
        """The ``remote://host:port`` endpoint; valid after :meth:`start`
        (and still reported after :meth:`stop`, for post-run summaries)."""
        if self._bound is None:
            raise RuntimeError("introspection server not started")
        host, port = self._bound
        return f"remote://{host}:{port}"

    def start(self) -> "IntrospectionServer":
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self._host, self._port))
        listener.listen(8)
        self._listener = listener
        self._bound = listener.getsockname()[:2]
        self._accept_thread = threading.Thread(
            target=self._accept_main, daemon=True, name="repro-introspect"
        )
        self._accept_thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        with self._conns_lock:
            conns = list(self._conns)
        for sock in conns:
            try:
                sock.close()
            except OSError:
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)

    # ------------------------------------------------------------------
    def _accept_main(self) -> None:
        while not self._stop.is_set():
            try:
                sock, _ = self._listener.accept()
            except OSError:
                return  # listener closed
            self.connections += 1
            with self._conns_lock:
                self._conns.add(sock)
            threading.Thread(
                target=self._serve_connection,
                args=(sock,),
                daemon=True,
                name="repro-introspect-conn",
            ).start()

    def _serve_connection(self, sock: socket.socket) -> None:
        stream = RecordStream(sock)
        try:
            record = stream.recv()
            if record is None:
                return
            kind = validate_record(record, _INTROSPECT_KINDS)
            if kind != "hello":
                raise ServiceProtocolError(f"expected hello, got {kind!r}")
            if record["wire"] != WIRE_VERSION:
                raise ServiceProtocolError(
                    f"wire version mismatch: client {record['wire']}, "
                    f"server {WIRE_VERSION}"
                )
            stream.send(
                {
                    "kind": "welcome",
                    "session": record["session"],
                    "last_seq": -1,
                    "introspection": True,
                }
            )
            while not self._stop.is_set():
                record = stream.recv()
                if record is None:
                    return
                kind = validate_record(record, _INTROSPECT_KINDS)
                if kind == "stats":
                    self.stats_served += 1
                    stream.send(
                        {
                            "kind": "stats_reply",
                            "req": record["req"],
                            "stats": self._supplier(),
                        }
                    )
                elif kind == "ping":
                    stream.send({"kind": "pong"})
                elif kind == "bye":
                    return
                else:  # a second hello
                    raise ServiceProtocolError("duplicate hello")
        except ServiceProtocolError as exc:
            try:
                stream.send({"kind": "error", "message": str(exc)})
            except Exception:  # noqa: BLE001 - peer already gone
                pass
        except Exception:  # noqa: BLE001 - socket death in any form
            pass
        finally:
            with self._conns_lock:
                self._conns.discard(sock)
            try:
                sock.close()
            except OSError:
                pass


def fetch_stats(url: str, *, timeout: float = 5.0, session: str = "top-live") -> dict:
    """One stats round-trip against *url* (``remote://host:port``).

    Works against either endpoint shape: an :class:`IntrospectionServer`
    or a full ``repro serve`` sidecar (both answer ``stats`` from the
    connection reader).  Raises
    :class:`~repro.errors.ServiceUnavailableError` when the peer is
    unreachable and :class:`~repro.errors.ServiceProtocolError` when it
    refuses the exchange (e.g. a wire-version mismatch).
    """
    host, port = parse_remote_url(url)
    try:
        sock = socket.create_connection((host, port), timeout=timeout)
    except OSError as exc:
        raise ServiceUnavailableError(f"cannot reach {url}: {exc}") from exc
    try:
        sock.settimeout(timeout)
        stream = RecordStream(sock)
        stream.send(
            {
                "kind": "hello",
                "session": session,
                "policy": "TJ-SP",
                "fail_mode": "open",
                "wire": WIRE_VERSION,
            }
        )
        reply = stream.recv()
        if reply is None:
            raise ServiceUnavailableError(f"{url} closed during handshake")
        if reply.get("kind") == "error":
            raise ServiceProtocolError(str(reply.get("message")))
        if reply.get("kind") != "welcome":
            raise ServiceProtocolError(
                f"expected welcome from {url}, got {reply.get('kind')!r}"
            )
        stream.send({"kind": "stats", "req": 0})
        while True:
            reply = stream.recv()
            if reply is None:
                raise ServiceUnavailableError(f"{url} closed before stats_reply")
            kind = reply.get("kind")
            if kind == "stats_reply":
                stats = reply["stats"]
                try:
                    stream.send({"kind": "bye"})
                except ServiceUnavailableError:
                    pass
                return stats
            if kind == "error":
                raise ServiceProtocolError(str(reply.get("message")))
            # acks/pongs/quarantine announcements: keep reading
    finally:
        try:
            sock.close()
        except OSError:
            pass
