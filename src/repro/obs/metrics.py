"""Thread-safe metrics: counters, gauges, fixed-bucket histograms.

The registry is the *one* stats mechanism for the whole stack.  Two
design constraints drive everything here:

* **Hot-path writes must not contend.**  Counters and histograms shard
  per thread, exactly like the verifier's stats shards: each writer
  thread owns a private cell (a ``__slots__`` object, or a flat bucket
  list for histograms) and bumps plain Python ints under the GIL — no
  lock, no allocation.  Readers aggregate all cells under a lock.
* **Dead threads must not leak cells.**  Runtimes churn through worker
  threads (the pooled fork fast path reaps idle workers), so live-cell
  lists would grow without bound.  Every instrument folds cells whose
  owner thread has died into a ``retired`` accumulator whenever a new
  cell registers or a snapshot is taken — the same fix PR 3 applied to
  the verifier shards, now owned by the registry so every metric gets
  it for free.

Snapshots are point-in-time plain dicts (fresh copies — mutating one
never touches live state) exportable as JSON or Prometheus text.
"""

from __future__ import annotations

import json
import threading
import weakref
from bisect import bisect_left
from typing import Callable, Iterable, Mapping, Optional, Sequence

__all__ = [
    "NS_BUCKETS",
    "WAIT_NS_BUCKETS",
    "RTT_NS_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "CounterGroup",
    "MetricsRegistry",
    "label_snapshot",
    "merge_snapshots",
    "snapshot_to_prometheus",
]

#: default latency buckets (nanoseconds) for sub-millisecond hot paths:
#: fork, join-check, Armus cycle check, journal flush.
NS_BUCKETS: tuple[int, ...] = (
    250,
    500,
    1_000,
    2_500,
    5_000,
    10_000,
    25_000,
    50_000,
    100_000,
    250_000,
    500_000,
    1_000_000,
    5_000_000,
    25_000_000,
    100_000_000,
)

#: buckets (nanoseconds) for blocked waits, which routinely span
#: milliseconds to seconds (leaf sleeps, join deadlines, stalls).
WAIT_NS_BUCKETS: tuple[int, ...] = (
    10_000,
    100_000,
    1_000_000,
    5_000_000,
    10_000_000,
    50_000_000,
    100_000_000,
    500_000_000,
    1_000_000_000,
    5_000_000_000,
    30_000_000_000,
)

#: buckets (nanoseconds) for service round trips: a loopback
#: check-verdict exchange lands in the tens of microseconds, a LAN hop
#: in the hundreds, and a degraded/retrying client can stretch to
#: seconds — the range must resolve all three regimes.
RTT_NS_BUCKETS: tuple[int, ...] = (
    10_000,
    25_000,
    50_000,
    100_000,
    250_000,
    500_000,
    1_000_000,
    2_500_000,
    10_000_000,
    50_000_000,
    250_000_000,
    1_000_000_000,
    5_000_000_000,
)


def _labels_key(labels: Optional[Mapping[str, str]]) -> tuple:
    if not labels:
        return ()
    return tuple(sorted(labels.items()))


def _render_labels(labels: tuple) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in labels)
    return "{" + inner + "}"


def _make_cell_class(fields: Sequence[str]) -> type:
    """Build a ``__slots__`` counter cell holding one int per field."""

    fields = tuple(fields)

    def __init__(self, owner=None):
        for f in fields:
            setattr(self, f, 0)
        self.owner = owner

    return type(
        "CounterCell",
        (),
        {"__slots__": fields + ("owner",), "__init__": __init__},
    )


class _Sharded:
    """Per-thread cell sharding with dead-cell folding.

    Subclasses provide ``_new_cell(owner)`` and ``_merge(acc, cell)``;
    the base class owns the thread-local lookup, the registered-cell
    list, and the fold-into-retired discipline.  ``_cells`` is public to
    tests (it mirrors the verifier's ``_shards``): its length stays
    bounded by the number of *live* writer threads.
    """

    def __init__(self) -> None:
        self._cells: list = []
        self._retired = self._new_cell(None)
        self._cells_lock = threading.Lock()
        self._local = threading.local()

    # subclass API ------------------------------------------------------
    def _new_cell(self, owner):  # pragma: no cover - abstract
        raise NotImplementedError

    def _merge(self, acc, cell):  # pragma: no cover - abstract
        raise NotImplementedError

    # sharding ----------------------------------------------------------
    def _cell(self):
        cell = getattr(self._local, "cell", None)
        if cell is None:
            cell = self._new_cell(threading.current_thread())
            with self._cells_lock:
                self._fold_dead_cells()
                self._cells.append(cell)
            self._local.cell = cell
        return cell

    def _fold_dead_cells(self) -> None:
        """Caller holds ``_cells_lock``.  Fold dead threads' cells into
        the retired accumulator so churn cannot leak cells."""
        live = []
        for cell in self._cells:
            owner = cell.owner
            if owner is not None and owner.is_alive():
                live.append(cell)
            else:
                self._merge(self._retired, cell)
        self._cells = live

    def _aggregate(self):
        """Fold + merge everything into a fresh accumulator cell."""
        acc = self._new_cell(None)
        with self._cells_lock:
            self._fold_dead_cells()
            self._merge(acc, self._retired)
            for cell in self._cells:
                self._merge(acc, cell)
        return acc


class CounterGroup(_Sharded):
    """A set of named counters sharing one per-thread cell.

    This is the registry-owned generalisation of the verifier's
    ``_StatsShard``: a component that bumps several counters on the same
    hot path fetches *one* cell per event and does plain attribute
    increments on it::

        events = CounterGroup(("forks", "joins_checked"))
        cell = events.cell()
        cell.forks += 1

    ``totals()`` / ``snapshot()`` aggregate exactly (fold + sum).
    """

    def __init__(self, fields: Iterable[str]) -> None:
        self.fields = tuple(fields)
        self._cell_cls = _make_cell_class(self.fields)
        super().__init__()

    def _new_cell(self, owner):
        return self._cell_cls(owner)

    def _merge(self, acc, cell):
        for f in self.fields:
            setattr(acc, f, getattr(acc, f) + getattr(cell, f))

    def cell(self):
        """The calling thread's private cell (creates + registers once)."""
        return self._cell()

    def totals(self) -> dict:
        acc = self._aggregate()
        return {f: getattr(acc, f) for f in self.fields}

    # uniform snapshot protocol (satellite: one protocol for all stats)
    snapshot = totals


class Counter(CounterGroup):
    """A single monotonically-increasing counter (sharded)."""

    def __init__(self, name: str, labels: Optional[Mapping[str, str]] = None):
        super().__init__(("value",))
        self.name = name
        self.labels = _labels_key(labels)

    def inc(self, n: int = 1) -> None:
        self._cell().value += n

    @property
    def value(self) -> int:
        return self.totals()["value"]

    def snapshot(self) -> int:  # type: ignore[override]
        return self.value


class Gauge:
    """A point-in-time value: set directly or backed by a callable."""

    def __init__(
        self,
        name: str,
        fn: Optional[Callable[[], float]] = None,
        labels: Optional[Mapping[str, str]] = None,
    ):
        self.name = name
        self.labels = _labels_key(labels)
        self._fn = fn
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def inc(self, n: float = 1.0) -> None:
        with self._lock:
            self._value += n

    def dec(self, n: float = 1.0) -> None:
        self.inc(-n)

    @property
    def value(self) -> float:
        if self._fn is not None:
            return self._fn()
        with self._lock:
            return self._value

    def snapshot(self) -> float:
        return self.value


class _HistCell:
    __slots__ = ("counts", "total", "owner")

    def __init__(self, nbuckets: int, owner=None):
        self.counts = [0] * nbuckets
        self.total = 0
        self.owner = owner


class Histogram(_Sharded):
    """Fixed-bucket histogram with per-thread sharding.

    ``observe`` is the hot path: one ``bisect_right`` (C-level) into the
    bucket bounds plus two int bumps on the thread's private cell.
    Bucket semantics match Prometheus: ``counts[i]`` counts observations
    ``<= bounds[i]``, with a final overflow bucket (``+Inf``).
    """

    def __init__(
        self,
        name: str,
        buckets: Sequence[float] = NS_BUCKETS,
        labels: Optional[Mapping[str, str]] = None,
    ):
        self.name = name
        self.labels = _labels_key(labels)
        self.bounds = tuple(sorted(buckets))
        self._nbuckets = len(self.bounds) + 1
        super().__init__()

    def _new_cell(self, owner):
        return _HistCell(self._nbuckets, owner)

    def _merge(self, acc, cell):
        counts = acc.counts
        for i, c in enumerate(cell.counts):
            counts[i] += c
        acc.total += cell.total

    def observe(self, value: float) -> None:
        cell = self._cell()
        # bisect_left: a value equal to a bound belongs in that bound's
        # bucket (Prometheus ``le`` semantics)
        cell.counts[bisect_left(self.bounds, value)] += 1
        cell.total += value

    def snapshot(self) -> dict:
        acc = self._aggregate()
        return {
            "buckets": list(self.bounds),
            "counts": list(acc.counts),
            "sum": acc.total,
            "count": sum(acc.counts),
        }

    @property
    def count(self) -> int:
        return sum(self._aggregate().counts)


class MetricsRegistry:
    """Thread-safe registry of instruments plus external stat sources.

    Instruments are created (or fetched — identical name+labels returns
    the same object, so concurrent components share one sharded
    instrument) via :meth:`counter` / :meth:`gauge` / :meth:`histogram`.

    Pre-existing stats surfaces — ``VerifierStats``, ``ArmusStats``,
    ``GeneralizedStats``, phaser and runtime counters — plug in through
    :meth:`add_source`: a prefix plus a zero-arg callable returning a
    flat ``{field: number}`` dict (the uniform ``snapshot()`` protocol).
    Bound methods are held via :class:`weakref.WeakMethod`, so a
    registered verifier or runtime stays collectable; values from
    same-prefix sources are summed, so a registry spanning several
    runtimes reports process-wide totals.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict = {}
        self._gauges: dict = {}
        self._histograms: dict = {}
        self._sources: list = []  # (prefix, ref_or_fn, is_weak)

    # instrument factories ---------------------------------------------
    def counter(self, name: str, labels: Optional[Mapping[str, str]] = None) -> Counter:
        key = (name, _labels_key(labels))
        with self._lock:
            inst = self._counters.get(key)
            if inst is None:
                inst = self._counters[key] = Counter(name, labels)
        return inst

    def gauge(
        self,
        name: str,
        fn: Optional[Callable[[], float]] = None,
        labels: Optional[Mapping[str, str]] = None,
    ) -> Gauge:
        key = (name, _labels_key(labels))
        with self._lock:
            inst = self._gauges.get(key)
            if inst is None:
                inst = self._gauges[key] = Gauge(name, fn, labels)
        return inst

    def histogram(
        self,
        name: str,
        buckets: Sequence[float] = NS_BUCKETS,
        labels: Optional[Mapping[str, str]] = None,
    ) -> Histogram:
        key = (name, _labels_key(labels))
        with self._lock:
            inst = self._histograms.get(key)
            if inst is None:
                inst = self._histograms[key] = Histogram(name, buckets, labels)
        return inst

    # external stat sources --------------------------------------------
    def add_source(self, prefix: str, fn: Callable[[], Mapping[str, float]]) -> None:
        """Register a ``snapshot()``-protocol source under ``prefix``."""
        is_weak = False
        ref: object = fn
        if getattr(fn, "__self__", None) is not None:
            try:
                ref = weakref.WeakMethod(fn)
                is_weak = True
            except TypeError:
                ref = fn
        with self._lock:
            self._sources.append((prefix, ref, is_weak))

    def _live_sources(self) -> list:
        """Resolve sources, pruning ones whose owner was collected."""
        with self._lock:
            entries = list(self._sources)
        out, dead = [], []
        for entry in entries:
            prefix, ref, is_weak = entry
            fn = ref() if is_weak else ref
            if fn is None:
                dead.append(entry)
                continue
            out.append((prefix, fn))
        if dead:
            with self._lock:
                self._sources = [e for e in self._sources if e not in dead]
        return out

    # snapshots ---------------------------------------------------------
    def snapshot(self) -> dict:
        """A point-in-time copy of every instrument and source."""
        with self._lock:
            counters = list(self._counters.values())
            gauges = list(self._gauges.values())
            histograms = list(self._histograms.values())
        snap: dict = {"counters": {}, "gauges": {}, "histograms": {}, "sources": {}}
        for c in counters:
            snap["counters"][c.name + _render_labels(c.labels)] = c.value
        for g in gauges:
            snap["gauges"][g.name + _render_labels(g.labels)] = g.value
        for h in histograms:
            snap["histograms"][h.name + _render_labels(h.labels)] = h.snapshot()
        for prefix, fn in self._live_sources():
            bucket = snap["sources"].setdefault(prefix, {})
            for field, value in dict(fn()).items():
                bucket[field] = bucket.get(field, 0) + value
        return snap

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def to_prometheus(self) -> str:
        """Render the registry in Prometheus text exposition format.

        Counters/gauges map directly; histograms follow the cumulative
        ``_bucket{le=}`` convention; source fields export as gauges
        named ``<prefix>_<field>``.
        """
        with self._lock:
            counters = list(self._counters.values())
            gauges = list(self._gauges.values())
            histograms = list(self._histograms.values())
        lines: list[str] = []
        for c in counters:
            lines.append(f"# TYPE {c.name} counter")
            lines.append(f"{c.name}{_render_labels(c.labels)} {c.value}")
        for g in gauges:
            lines.append(f"# TYPE {g.name} gauge")
            lines.append(f"{g.name}{_render_labels(g.labels)} {g.value}")
        for h in histograms:
            snap = h.snapshot()
            lines.append(f"# TYPE {h.name} histogram")
            base = dict(h.labels)
            cum = 0
            for bound, count in zip(snap["buckets"], snap["counts"]):
                cum += count
                labels = _render_labels(tuple(sorted({**base, "le": str(bound)}.items())))
                lines.append(f"{h.name}_bucket{labels} {cum}")
            cum += snap["counts"][-1]
            inf_labels = _render_labels(tuple(sorted({**base, "le": "+Inf"}.items())))
            lines.append(f"{h.name}_bucket{inf_labels} {cum}")
            lines.append(f"{h.name}_sum{_render_labels(h.labels)} {snap['sum']}")
            lines.append(f"{h.name}_count{_render_labels(h.labels)} {snap['count']}")
        for prefix, fields in sorted(self.snapshot()["sources"].items()):
            for field, value in sorted(fields.items()):
                name = f"{prefix}_{field}"
                lines.append(f"# TYPE {name} gauge")
                lines.append(f"{name} {value}")
        return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# fleet aggregation over snapshots
# ----------------------------------------------------------------------
# The multi-process runtime ships whole registry *snapshots* home (a
# worker's live instruments cannot cross a process boundary), so the
# fleet view works on rendered snapshots: re-label each worker's series
# (``label_snapshot``), then fold the fleet into one merged snapshot
# (``merge_snapshots``) the existing renderers accept.  The fold is
# exact — plain sums of counters and element-wise histogram counts —
# and a dead worker's *last* snapshot keeps contributing, mirroring the
# dead-thread retired-cell rule above at process granularity.
def _parse_series(name: str) -> tuple[str, tuple]:
    """Split a rendered ``name{k="v",...}`` back into (name, labels)."""
    if not name.endswith("}") or "{" not in name:
        return name, ()
    base, _, inner = name.partition("{")
    labels = []
    for part in inner[:-1].split(","):
        if not part:
            continue
        k, _, v = part.partition("=")
        labels.append((k, v.strip('"')))
    return base, tuple(labels)


def _relabel(name: str, extra: Mapping[str, str]) -> str:
    base, labels = _parse_series(name)
    merged = dict(labels)
    merged.update(extra)
    return base + _render_labels(_labels_key(merged))


def label_snapshot(snap: Mapping, **labels: str) -> dict:
    """A copy of *snap* with *labels* injected into every series name.

    Source prefixes get the labels too (``verifier{worker="3"}``), so a
    merged fleet snapshot keeps per-worker sources distinguishable.
    """
    strs = {k: str(v) for k, v in labels.items()}
    out: dict = {"counters": {}, "gauges": {}, "histograms": {}, "sources": {}}
    for name, value in snap.get("counters", {}).items():
        out["counters"][_relabel(name, strs)] = value
    for name, value in snap.get("gauges", {}).items():
        out["gauges"][_relabel(name, strs)] = value
    for name, hist in snap.get("histograms", {}).items():
        out["histograms"][_relabel(name, strs)] = {
            "buckets": list(hist["buckets"]),
            "counts": list(hist["counts"]),
            "sum": hist["sum"],
            "count": hist["count"],
        }
    for prefix, fields in snap.get("sources", {}).items():
        out["sources"][_relabel(prefix, strs)] = dict(fields)
    return out


def merge_snapshots(snaps: Iterable[Mapping]) -> dict:
    """Fold registry snapshots into one: exact sums, no sampling.

    Counters and gauges sum; histograms with identical bucket bounds
    merge element-wise (sum and count included); same-prefix sources
    sum field-wise — the cross-process analogue of the registry's
    same-prefix source summing.
    """
    out: dict = {"counters": {}, "gauges": {}, "histograms": {}, "sources": {}}
    for snap in snaps:
        for name, value in snap.get("counters", {}).items():
            out["counters"][name] = out["counters"].get(name, 0) + value
        for name, value in snap.get("gauges", {}).items():
            out["gauges"][name] = out["gauges"].get(name, 0) + value
        for name, hist in snap.get("histograms", {}).items():
            acc = out["histograms"].get(name)
            if acc is None or list(acc["buckets"]) != list(hist["buckets"]):
                out["histograms"][name] = {
                    "buckets": list(hist["buckets"]),
                    "counts": list(hist["counts"]),
                    "sum": hist["sum"],
                    "count": hist["count"],
                }
                continue
            acc["counts"] = [a + b for a, b in zip(acc["counts"], hist["counts"])]
            acc["sum"] += hist["sum"]
            acc["count"] += hist["count"]
        for prefix, fields in snap.get("sources", {}).items():
            bucket = out["sources"].setdefault(prefix, {})
            for field, value in fields.items():
                bucket[field] = bucket.get(field, 0) + value
    return out


def snapshot_to_prometheus(snap: Mapping) -> str:
    """Render a *snapshot* (not a live registry) as Prometheus text.

    Mirrors :meth:`MetricsRegistry.to_prometheus` series-for-series so a
    merged fleet snapshot exports through the same pipeline; the type
    line is emitted once per metric family even when the snapshot holds
    several labelled series of it.
    """
    lines: list[str] = []
    typed: set[str] = set()

    def _type_line(name: str, kind: str) -> None:
        base, _ = _parse_series(name)
        if base not in typed:
            typed.add(base)
            lines.append(f"# TYPE {base} {kind}")

    for name, value in sorted(snap.get("counters", {}).items()):
        _type_line(name, "counter")
        lines.append(f"{name} {value}")
    for name, value in sorted(snap.get("gauges", {}).items()):
        _type_line(name, "gauge")
        lines.append(f"{name} {value}")
    for name, hist in sorted(snap.get("histograms", {}).items()):
        base, labels = _parse_series(name)
        _type_line(name, "histogram")
        base_labels = dict(labels)
        cum = 0
        for bound, count in zip(hist["buckets"], hist["counts"]):
            cum += count
            le = _render_labels(_labels_key({**base_labels, "le": str(bound)}))
            lines.append(f"{base}_bucket{le} {cum}")
        cum += hist["counts"][-1]
        inf = _render_labels(_labels_key({**base_labels, "le": "+Inf"}))
        lines.append(f"{base}_bucket{inf} {cum}")
        suffix = _render_labels(tuple(labels))
        lines.append(f"{base}_sum{suffix} {hist['sum']}")
        lines.append(f"{base}_count{suffix} {hist['count']}")
    for prefix, fields in sorted(snap.get("sources", {}).items()):
        base, labels = _parse_series(prefix)
        suffix = _render_labels(tuple(labels))
        for field, value in sorted(fields.items()):
            name = f"{base}_{field}"
            _type_line(name, "gauge")
            lines.append(f"{name}{suffix} {value}")
    return "\n".join(lines) + "\n"
