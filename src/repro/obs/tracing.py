"""Span-based task-lifecycle tracing with a ring-buffer collector.

Spans cover the lifecycle events the runtime stack actually has —
``fork``, task ``run``, ``block``/``wake`` around supervised joins,
``verdict``/``quarantine``/``retry`` from the verifier — and are
collected into a bounded ring buffer (a ``deque(maxlen=...)``; appends
are GIL-atomic, old events fall off the head under pressure).  The
ambient span is carried via :mod:`contextvars`, so nested spans record
their parent id and the exporter can reconstruct causality even across
``contextvars.copy_context`` boundaries.

Events store raw ``perf_counter_ns`` timestamps plus the OS thread id;
:meth:`Tracer.to_chrome_trace` converts them to the Chrome trace event
format (``"X"`` complete events, ``"i"`` instants, ``"M"`` thread-name
metadata) that ``ui.perfetto.dev`` and ``chrome://tracing`` both open
directly.  Perfetto nests same-thread ``X`` events by duration
containment, which the block/run span timestamps guarantee.
"""

from __future__ import annotations

import itertools
import os
import threading
from collections import deque
from contextlib import contextmanager
from contextvars import ContextVar
from time import perf_counter_ns
from typing import Optional

__all__ = ["Tracer", "SpanCtx", "current_span"]

#: the ambient span (innermost open span in this context), used to
#: stamp ``parent`` ids on nested spans and instants.
_span_var: ContextVar[Optional["SpanCtx"]] = ContextVar("repro_obs_span", default=None)

_span_ids = itertools.count(1)


class SpanCtx:
    """The ambient identity of an open span (carried in contextvars)."""

    __slots__ = ("id", "name")

    def __init__(self, name: str):
        self.id = next(_span_ids)
        self.name = name


def current_span() -> Optional[SpanCtx]:
    """The innermost open span in the current context, if any."""
    return _span_var.get()


class Tracer:
    """Bounded collector of trace events.

    Events are tuples ``(ph, name, cat, ts_ns, dur_ns, tid, args)``
    appended to a ``deque(maxlen=capacity)`` — the append is atomic
    under the GIL, so the hot path takes no lock; when the buffer is
    full the oldest events are dropped (``dropped_events`` estimates how
    many).
    """

    def __init__(self, capacity: int = 65536):
        self.capacity = capacity
        self._events: deque = deque(maxlen=capacity)
        self._t0 = perf_counter_ns()
        self._pid = os.getpid()
        self._tid_names: dict[int, str] = {}
        self._appends = 0

    def __len__(self) -> int:
        return len(self._events)

    @property
    def dropped_events(self) -> int:
        return max(0, self._appends - len(self._events))

    def _note_thread(self) -> int:
        tid = threading.get_ident()
        if tid not in self._tid_names:
            self._tid_names[tid] = threading.current_thread().name
        return tid

    # emission ----------------------------------------------------------
    def complete(
        self,
        name: str,
        t0_ns: int,
        dur_ns: int,
        cat: str = "task",
        args: Optional[dict] = None,
    ) -> None:
        """Record a finished span (``"X"`` complete event)."""
        tid = self._note_thread()
        self._appends += 1
        self._events.append(("X", name, cat, t0_ns, dur_ns, tid, args))

    def instant(self, name: str, cat: str = "event", args: Optional[dict] = None) -> None:
        """Record a point-in-time event (``"i"`` instant)."""
        tid = self._note_thread()
        parent = _span_var.get()
        if parent is not None:
            args = dict(args) if args else {}
            args.setdefault("parent", parent.id)
        self._appends += 1
        self._events.append(("i", name, cat, perf_counter_ns(), 0, tid, args))

    def begin_span(self, name: str) -> tuple:
        """Open a span explicitly; pair with :meth:`end_span`.

        The explicit form exists for instrumentation sites that must not
        allocate a context manager when telemetry is disabled — they
        guard the begin/end pair behind an ``is None`` test instead.
        Returns an opaque handle ``(ctx, reset_token, t0_ns)``.
        """
        ctx = SpanCtx(name)
        token = _span_var.set(ctx)
        return (ctx, token, perf_counter_ns())

    def end_span(self, handle: tuple, cat: str = "task", args: Optional[dict] = None) -> None:
        """Close a span opened with :meth:`begin_span` and emit it."""
        ctx, token, t0 = handle
        dur = perf_counter_ns() - t0
        parent = token.old_value
        _span_var.reset(token)
        payload = dict(args) if args else {}
        payload["span_id"] = ctx.id
        if parent is not None and parent is not token.MISSING:
            payload["parent"] = parent.id
        self.complete(ctx.name, t0, dur, cat=cat, args=payload)

    @contextmanager
    def span(self, name: str, cat: str = "task", **args):
        """Open a span; on exit emit it as a complete event.

        The span becomes the ambient span (contextvars) for its dynamic
        extent, so nested spans and instants record ``parent`` links.
        """
        handle = self.begin_span(name)
        try:
            yield handle[0]
        finally:
            self.end_span(handle, cat=cat, args=dict(args) if args else None)

    # export ------------------------------------------------------------
    def snapshot(self) -> list:
        """A stable copy of the buffered events (oldest first)."""
        return list(self._events)

    def to_chrome_trace(self) -> dict:
        """Render buffered events as a Chrome trace / Perfetto JSON dict."""
        events = []
        for tid, tname in sorted(self._tid_names.items()):
            events.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": self._pid,
                    "tid": tid,
                    "args": {"name": tname},
                }
            )
        t0 = self._t0
        for ph, name, cat, ts, dur, tid, args in self._events:
            ev = {
                "ph": ph,
                "name": name,
                "cat": cat,
                "ts": (ts - t0) / 1000.0,  # chrome trace wants microseconds
                "pid": self._pid,
                "tid": tid,
            }
            if ph == "X":
                ev["dur"] = dur / 1000.0
            elif ph == "i":
                ev["s"] = "t"  # thread-scoped instant
            if args:
                ev["args"] = args
            events.append(ev)
        return {"traceEvents": events, "displayTimeUnit": "ms"}
