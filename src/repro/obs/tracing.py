"""Span-based task-lifecycle tracing with a ring-buffer collector.

Spans cover the lifecycle events the runtime stack actually has —
``fork``, task ``run``, ``block``/``wake`` around supervised joins,
``verdict``/``quarantine``/``retry`` from the verifier — and are
collected into a bounded ring buffer (a ``deque(maxlen=...)``; appends
are GIL-atomic, old events fall off the head under pressure).  The
ambient span is carried via :mod:`contextvars`, so nested spans record
their parent id and the exporter can reconstruct causality even across
``contextvars.copy_context`` boundaries.

Every span also carries a **trace id**: the root of a span tree mints
one (or inherits the tracer's), and nested spans propagate it.  The
``(trace_id, span_id)`` pair is a process-portable *trace context* —
:func:`current_trace_context` captures it at a dispatch site, the
carrier ships it over a queue or wire frame, and the receiving process
opens its span with ``begin_span(name, parent=ctx)`` so the remote span
parents under the dispatching one.  Adoption emits a flow-finish
(``"f"``) event paired with the dispatcher's flow-start (``"s"``), so
Perfetto draws arrows across process tracks.

Events store raw ``perf_counter_ns`` timestamps plus the OS thread id;
:meth:`Tracer.to_chrome_trace` converts them to the Chrome trace event
format (``"X"`` complete events, ``"i"`` instants, ``"s"``/``"f"``
flows, ``"M"`` thread-name metadata) that ``ui.perfetto.dev`` and
``chrome://tracing`` both open directly.  Perfetto nests same-thread
``X`` events by duration containment, which the block/run span
timestamps guarantee.  Worker processes ship their buffers home with
:meth:`Tracer.export_state`; the parent's :meth:`Tracer.absorb_remote`
folds them in, and ``to_chrome_trace`` then renders one merged document
with per-process tracks (``perf_counter_ns`` is CLOCK_MONOTONIC-based
on the platforms we run, so raw timestamps are comparable across
processes on one box).
"""

from __future__ import annotations

import itertools
import os
import threading
from collections import deque
from contextlib import contextmanager
from contextvars import ContextVar
from time import perf_counter_ns
from typing import Optional

__all__ = [
    "Tracer",
    "SpanCtx",
    "current_span",
    "current_trace_context",
    "flow_id",
]

#: the ambient span (innermost open span in this context), used to
#: stamp ``parent`` ids on nested spans and instants.
_span_var: ContextVar[Optional["SpanCtx"]] = ContextVar("repro_obs_span", default=None)

_span_ids = itertools.count(1)


class SpanCtx:
    """The ambient identity of an open span (carried in contextvars)."""

    __slots__ = ("id", "name", "trace")

    def __init__(self, name: str, trace: str = ""):
        self.id = next(_span_ids)
        self.name = name
        self.trace = trace


def current_span() -> Optional[SpanCtx]:
    """The innermost open span in the current context, if any."""
    return _span_var.get()


def current_trace_context() -> Optional[tuple]:
    """The ambient ``(trace_id, span_id)`` carrier, or None.

    This is the value a dispatch site ships across a process boundary
    so the remote side can parent its span here.  With telemetry
    disabled no span is ever open, so this is a single contextvar read
    returning None — nothing allocates.
    """
    ctx = _span_var.get()
    if ctx is None:
        return None
    return (ctx.trace, ctx.id)


def flow_id(tctx: tuple) -> str:
    """The Chrome-trace flow-event id for a trace context carrier."""
    return f"{tctx[0]}:{tctx[1]}"


class Tracer:
    """Bounded collector of trace events.

    Events are tuples ``(ph, name, cat, ts_ns, dur_ns, tid, args)``
    appended to a ``deque(maxlen=capacity)`` — the append is atomic
    under the GIL, so the hot path takes no lock; when the buffer is
    full the oldest events are dropped (``dropped_events`` estimates how
    many).
    """

    def __init__(self, capacity: int = 65536, trace_id: Optional[str] = None):
        self.capacity = capacity
        self.trace_id = trace_id or os.urandom(6).hex()
        self._events: deque = deque(maxlen=capacity)
        self._t0 = perf_counter_ns()
        self._pid = os.getpid()
        self._label: Optional[str] = None
        self._tid_names: dict[int, str] = {}
        self._appends = 0
        #: remote buffers folded in by pid (label, tid_names, events)
        self._remote: dict[int, tuple] = {}
        self._remote_lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._events)

    @property
    def dropped_events(self) -> int:
        return max(0, self._appends - len(self._events))

    def _note_thread(self) -> int:
        tid = threading.get_ident()
        if tid not in self._tid_names:
            self._tid_names[tid] = threading.current_thread().name
        return tid

    # emission ----------------------------------------------------------
    def complete(
        self,
        name: str,
        t0_ns: int,
        dur_ns: int,
        cat: str = "task",
        args: Optional[dict] = None,
    ) -> None:
        """Record a finished span (``"X"`` complete event)."""
        tid = self._note_thread()
        self._appends += 1
        self._events.append(("X", name, cat, t0_ns, dur_ns, tid, args))

    def instant(self, name: str, cat: str = "event", args: Optional[dict] = None) -> None:
        """Record a point-in-time event (``"i"`` instant)."""
        tid = self._note_thread()
        parent = _span_var.get()
        if parent is not None:
            args = dict(args) if args else {}
            args.setdefault("parent", parent.id)
            if parent.trace:
                args.setdefault("trace", parent.trace)
        self._appends += 1
        self._events.append(("i", name, cat, perf_counter_ns(), 0, tid, args))

    def flow(self, ph: str, name: str, fid: str, cat: str = "dispatch") -> None:
        """Record a flow endpoint (``"s"`` start / ``"f"`` finish).

        Flow events bind to the duration slice enclosing their timestamp
        on their (pid, tid) track; a start/finish pair sharing *fid*
        renders as an arrow between the two slices — across processes
        when the endpoints live in different buffers.
        """
        tid = self._note_thread()
        self._appends += 1
        self._events.append((ph, name, cat, perf_counter_ns(), 0, tid, {"id": fid}))

    def begin_span(self, name: str, parent: Optional[tuple] = None) -> tuple:
        """Open a span explicitly; pair with :meth:`end_span`.

        The explicit form exists for instrumentation sites that must not
        allocate a context manager when telemetry is disabled — they
        guard the begin/end pair behind an ``is None`` test instead.
        Returns an opaque handle ``(ctx, reset_token, t0_ns)``.

        *parent* is an optional **remote** ``(trace_id, span_id)``
        carrier from :func:`current_trace_context` in another process:
        the new span adopts the remote trace id, records the remote span
        as its parent, and emits the flow-finish event pairing with the
        dispatcher's flow-start.  Without it the span inherits the
        ambient span's trace id, or mints from the tracer's.
        """
        if parent is not None:
            ctx = SpanCtx(name, trace=parent[0])
        else:
            ambient = _span_var.get()
            ctx = SpanCtx(
                name, trace=ambient.trace if ambient is not None else self.trace_id
            )
        token = _span_var.set(ctx)
        if parent is not None:
            self.flow("f", name, flow_id(parent))
        return (ctx, token, perf_counter_ns())

    def end_span(self, handle: tuple, cat: str = "task", args: Optional[dict] = None) -> None:
        """Close a span opened with :meth:`begin_span` and emit it."""
        ctx, token, t0 = handle
        dur = perf_counter_ns() - t0
        parent = token.old_value
        _span_var.reset(token)
        payload = dict(args) if args else {}
        payload["span_id"] = ctx.id
        if ctx.trace:
            payload["trace"] = ctx.trace
        if parent is not None and parent is not token.MISSING:
            payload["parent"] = parent.id
        self.complete(ctx.name, t0, dur, cat=cat, args=payload)

    @contextmanager
    def span(self, name: str, cat: str = "task", **args):
        """Open a span; on exit emit it as a complete event.

        The span becomes the ambient span (contextvars) for its dynamic
        extent, so nested spans and instants record ``parent`` links.
        """
        handle = self.begin_span(name)
        try:
            yield handle[0]
        finally:
            self.end_span(handle, cat=cat, args=dict(args) if args else None)

    # export ------------------------------------------------------------
    def snapshot(self) -> list:
        """A stable copy of the buffered events (oldest first)."""
        return list(self._events)

    def export_state(self, label: Optional[str] = None) -> dict:
        """This buffer packaged for :meth:`absorb_remote` in another
        process (everything in it is queue-picklable)."""
        return {
            "pid": self._pid,
            "label": label if label is not None else self._label,
            "tid_names": dict(self._tid_names),
            "events": list(self._events),
        }

    def absorb_remote(self, state: dict) -> None:
        """Fold a remote tracer's :meth:`export_state` into this one.

        Repeated absorbs from the same pid *replace* the prior buffer —
        workers ship their full ring each push, so the latest push is
        the most complete view of that process.
        """
        with self._remote_lock:
            self._remote[int(state["pid"])] = (
                state.get("label"),
                # tid keys survive a JSON hop (the sidecar's stats reply)
                # as strings; coerce back so tracks keep integer tids.
                {int(k): v for k, v in (state.get("tid_names") or {}).items()},
                list(state.get("events") or ()),
            )

    def to_chrome_trace(self) -> dict:
        """Render buffered events (plus any absorbed remote buffers) as
        a Chrome trace / Perfetto JSON dict with per-process tracks."""
        with self._remote_lock:
            remote = dict(self._remote)
        groups = [(self._pid, self._label, self._tid_names, list(self._events))]
        for pid in sorted(remote):
            label, tid_names, evs = remote[pid]
            groups.append((pid, label, tid_names, evs))
        t0 = self._t0
        for _, _, _, evs in groups:
            for ev in evs:
                if ev[3] < t0:
                    t0 = ev[3]
        events = []
        for pid, label, tid_names, evs in groups:
            if label:
                events.append(
                    {
                        "ph": "M",
                        "name": "process_name",
                        "pid": pid,
                        "tid": 0,
                        "args": {"name": label},
                    }
                )
            for tid, tname in sorted(tid_names.items()):
                events.append(
                    {
                        "ph": "M",
                        "name": "thread_name",
                        "pid": pid,
                        "tid": tid,
                        "args": {"name": tname},
                    }
                )
            for ph, name, cat, ts, dur, tid, args in evs:
                ev = {
                    "ph": ph,
                    "name": name,
                    "cat": cat,
                    "ts": (ts - t0) / 1000.0,  # chrome trace wants microseconds
                    "pid": pid,
                    "tid": tid,
                }
                if ph == "X":
                    ev["dur"] = dur / 1000.0
                elif ph == "i":
                    ev["s"] = "t"  # thread-scoped instant
                elif ph in ("s", "f"):
                    ev["id"] = (args or {}).get("id", "")
                    if ph == "f":
                        ev["bp"] = "e"  # bind to the enclosing slice
                    events.append(ev)
                    continue  # the id rides top-level, not in args
                if args:
                    ev["args"] = args
                events.append(ev)
        return {"traceEvents": events, "displayTimeUnit": "ms"}
