"""A terminal ``top`` view over a live telemetry snapshot.

Renders, from one :class:`~repro.obs.Telemetry` session (or a saved
metrics-snapshot JSON), the state a human asks about first when a run
looks stuck or slow:

* the blocked-join table — who waits on whom, for how long, and how many
  OS-level wakeups the wait has burned;
* per-policy join-check latency histograms (and the other ns histograms:
  fork, blocked-wait, Armus cycle check, journal flush) as ASCII bars;
* the unified counter surface — verifier/armus/runtime/phaser/journal
  sources plus the event counters (quarantines, retries, wakeups).

With the PR 10 distributed plane it also renders *fleet* state: the
cross-process blocked-join table (plain dicts shipped by worker stats
pushes), the merged labelled registry, and the live screen
``repro top --live`` draws from an introspection ``stats`` snapshot.
``repro predict`` results render as a predicted-cycle table.

Pure rendering: every function takes data and returns a string, so the
CLI can re-render on a cadence (live mode) or once (post-mortem mode)
and tests can assert on the output without a terminal.
"""

from __future__ import annotations

import time
from typing import Optional

__all__ = [
    "render_top",
    "render_snapshot",
    "render_blocked_joins",
    "render_fleet_blocked",
    "render_predictions",
    "render_live_stats",
    "format_ns",
]

_BAR_WIDTH = 40


def format_ns(ns: float) -> str:
    """Human-readable duration from nanoseconds."""
    if ns < 1_000:
        return f"{ns:.0f}ns"
    if ns < 1_000_000:
        return f"{ns / 1_000:.1f}us"
    if ns < 1_000_000_000:
        return f"{ns / 1_000_000:.1f}ms"
    return f"{ns / 1_000_000_000:.2f}s"


def _render_histogram(name: str, snap: dict) -> list[str]:
    """ASCII bars for one histogram snapshot (empty rows trimmed)."""
    counts = snap["counts"]
    bounds = snap["buckets"]
    total = snap["count"]
    lines = [
        f"  {name}  count={total}  "
        f"mean={format_ns(snap['sum'] / total) if total else '-'}"
    ]
    nonzero = [i for i, c in enumerate(counts) if c]
    if not nonzero:
        return lines
    peak = max(counts)
    for i in range(nonzero[0], nonzero[-1] + 1):
        label = f"<= {format_ns(bounds[i])}" if i < len(bounds) else f" > {format_ns(bounds[-1])}"
        bar = "#" * max(1, round(counts[i] / peak * _BAR_WIDTH)) if counts[i] else ""
        lines.append(f"    {label:>10} |{bar:<{_BAR_WIDTH}}| {counts[i]}")
    return lines


def render_snapshot(snap: dict) -> str:
    """Render a :meth:`MetricsRegistry.snapshot` dict as a top screen."""
    out: list[str] = []
    sources = snap.get("sources", {})
    if sources:
        out.append("sources")
        for prefix in sorted(sources):
            fields = sources[prefix]
            body = "  ".join(f"{k}={fields[k]}" for k in sorted(fields))
            out.append(f"  {prefix:<12} {body}")
    counters = snap.get("counters", {})
    if counters:
        out.append("counters")
        for name in sorted(counters):
            out.append(f"  {name:<40} {counters[name]}")
    gauges = snap.get("gauges", {})
    if gauges:
        out.append("gauges")
        for name in sorted(gauges):
            out.append(f"  {name:<40} {gauges[name]}")
    histograms = snap.get("histograms", {})
    live = {n: h for n, h in sorted(histograms.items()) if h["count"]}
    if live:
        out.append("latency histograms (ns buckets)")
        for name, h in live.items():
            out.extend(_render_histogram(name, h))
    return "\n".join(out) if out else "(no telemetry data)"


def render_blocked_joins(blocked: list, now: Optional[float] = None) -> str:
    """The blocked-join table: joiner, joinee, wait age, wakeups."""
    if not blocked:
        return "blocked joins: none"
    now = time.monotonic() if now is None else now
    lines = ["blocked joins"]
    lines.append(f"  {'joiner':<20} {'joinee':<20} {'age':>9} {'wakeups':>8}")
    for record in sorted(blocked, key=lambda r: r.since):
        age = max(0.0, now - record.since)
        lines.append(
            f"  {record.joiner.name:<20} {record.joinee.name:<20} "
            f"{age:>8.2f}s {record.wakeups:>8}"
        )
    return "\n".join(lines)


def render_fleet_blocked(blocked: list) -> str:
    """The cross-process blocked-join table.

    *blocked* is the plain-dict form
    :meth:`~repro.runtime.procs.ProcessRuntime.fleet_blocked_joins`
    ships (``process``/``joiner``/``joinee``/``age``/``wakeups``) —
    worker rows are as-of that worker's latest telemetry push.
    """
    if not blocked:
        return "blocked joins: none"
    lines = ["blocked joins"]
    lines.append(
        f"  {'process':<12} {'joiner':<20} {'joinee':<20} {'age':>9} {'wakeups':>8}"
    )
    for rec in sorted(blocked, key=lambda r: -float(r.get("age", 0.0))):
        lines.append(
            f"  {str(rec.get('process', '?')):<12} "
            f"{str(rec.get('joiner', '?')):<20} "
            f"{str(rec.get('joinee', '?')):<20} "
            f"{float(rec.get('age', 0.0)):>8.2f}s {int(rec.get('wakeups', 0)):>8}"
        )
    return "\n".join(lines)


def render_predictions(report) -> str:
    """The ``repro predict`` results as a predicted-cycle table.

    *report* is a :class:`~repro.predict.PredictionReport` (or anything
    shaped like one: ``predictions`` with ``cycle``/``verdicts``).
    """
    skipped = getattr(report, "skipped", None)
    if skipped is not None:
        return f"predicted deadlocks: skipped ({skipped})"
    predictions = list(getattr(report, "predictions", report) or ())
    if not predictions:
        return "predicted deadlocks: none"
    lines = [f"predicted deadlocks ({len(predictions)})"]
    lines.append(f"  {'cycle':<44} {'policies':<30}")
    for pred in predictions:
        cycle = tuple(getattr(pred, "cycle", pred))
        arrow = " -> ".join((*cycle, cycle[0]))
        verdicts = getattr(pred, "verdicts", {}) or {}
        body = "  ".join(f"{p}={verdicts[p]}" for p in sorted(verdicts)) or "-"
        lines.append(f"  {arrow:<44} {body:<30}")
    return "\n".join(lines)


def render_live_stats(stats: dict) -> str:
    """One ``repro top --live`` screen from an introspection snapshot.

    *stats* is a wire ``stats_reply`` payload — either a
    :class:`~repro.runtime.procs.ProcessRuntime` introspection snapshot
    (``kind: "procs"``) or a ``repro serve`` server snapshot; the two
    shapes share the merged-registry and blocked-table sections where
    they have them.
    """
    parts: list[str] = []
    if stats.get("kind") == "procs":
        workers = stats.get("workers", [])
        alive = sum(1 for w in workers if w.get("alive"))
        header = (
            f"repro top — run {stats.get('run_id', '?')} — "
            f"workers {alive}/{len(workers)} alive"
        )
        if stats.get("sidecar"):
            header += f" — sidecar {stats['sidecar']}"
        parts.append(header)
        joins = stats.get("join_stats") or {}
        if joins:
            parts.append(
                "joins: "
                f"local={joins.get('local_joins', 0)} "
                f"cross={joins.get('cross_joins', 0)} "
                f"degraded={joins.get('degraded_joins', 0)} "
                f"escalation={joins.get('escalation_ratio', 0.0):.3f}"
            )
        parts.append(render_fleet_blocked(stats.get("blocked") or []))
        merged = stats.get("metrics")
        if merged:
            parts.append(render_snapshot(merged))
    else:
        header = (
            f"repro top — sidecar — sessions {stats.get('sessions', '?')} "
            f"accepted {stats.get('accepted', '?')}"
        )
        parts.append(header)
        merged = stats.get("metrics")
        if merged:
            parts.append(render_snapshot(merged))
        per_session = stats.get("per_session") or {}
        if per_session:
            lines = ["sessions"]
            for sid in sorted(per_session):
                fields = per_session[sid]
                body = "  ".join(
                    f"{k}={fields[k]}" for k in sorted(fields) if not isinstance(fields[k], (dict, list))
                )
                lines.append(f"  {sid:<24} {body}")
            parts.append("\n".join(lines))
    return "\n\n".join(parts)


def render_top(telemetry) -> str:
    """The full screen for a live :class:`~repro.obs.Telemetry` session."""
    uptime = time.time() - telemetry.started_at
    header = f"repro top — uptime {uptime:.1f}s"
    tracer = telemetry.tracer
    if tracer is not None:
        header += f" — trace events {len(tracer)}"
        if tracer.dropped_events:
            header += f" (dropped {tracer.dropped_events})"
    parts = [
        header,
        render_blocked_joins(telemetry.blocked_joins()),
        render_snapshot(telemetry.snapshot()),
    ]
    return "\n\n".join(parts)
