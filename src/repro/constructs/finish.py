"""The ``finish`` construct of X10 / Habanero Java (Sections 1, 2.3, 7.2).

A ``finish`` block waits for every task *transitively* spawned within it.
The paper argues the natural implementation — keep every spawned future
in a shared queue, join whatever you pop — is precisely an *arbitrary
descendant join* pattern: always deadlock-free and TJ-valid, but liable
to trip KJ unless the join order carefully respects fork order.

Soundness of the drain loop (the Listing 1 argument): every task
registers its children before terminating, and a join only unblocks
after termination; hence when the queue is observed empty, no registered
task (nor any of its descendants) is still running.
"""

from __future__ import annotations

import queue
from typing import Any, Callable, Optional, Union

from ..errors import RuntimeStateError, TaskFailedError
from ..runtime import Future, TaskRuntime

__all__ = ["FinishScope", "finish"]


class FinishScope:
    """A handle for spawning tasks that one ``finish`` block will await.

    Use via :func:`finish`; nested tasks may keep spawning into the scope
    they captured::

        with finish(rt) as scope:
            scope.async_(walk, tree.root, scope)
        # <- every transitively spawned walk() has terminated here
    """

    def __init__(self, rt: TaskRuntime) -> None:
        self._rt = rt
        self._futures: "queue.SimpleQueue[Future]" = queue.SimpleQueue()
        self._closed = False
        self._results: list[Any] = []
        self._failures: list[TaskFailedError] = []

    def async_(self, fn: Callable[..., Any], *args: Any, **kwargs: Any) -> Future:
        """Spawn *fn* as a task awaited by the enclosing finish block."""
        if self._closed:
            raise RuntimeStateError("finish scope already completed")
        fut = self._rt.fork(fn, *args, **kwargs)
        self._futures.put(fut)
        return fut

    # ------------------------------------------------------------------
    def _drain(self) -> None:
        """Join every registered future until none remain (Listing 1).

        Tasks may keep spawning into the scope *while* the drain runs (a
        joined task's descendants registered before it terminated), so
        the scope only closes once the queue is observed empty — at which
        point, by the Listing 1 argument, no scope task is running.

        Futures are drained in *batches*: everything currently queued is
        popped and handed to the runtime's ``join_batch`` (where
        available), which verifies the whole group against the policy in
        one call instead of paying per-join verifier overhead — the
        arbitrary-descendant-join pattern of a finish block is exactly
        the join-heavy shape that batching amortises.  Runtimes without
        ``join_batch`` fall back to one ``join`` per future.
        """
        join_batch = getattr(self._rt, "join_batch", None)
        while True:
            batch: list[Future] = []
            while True:
                try:
                    batch.append(self._futures.get_nowait())
                except queue.Empty:
                    break
            if not batch:
                break
            if join_batch is not None:
                for outcome in join_batch(batch, return_exceptions=True):
                    if isinstance(outcome, TaskFailedError):
                        self._failures.append(outcome)
                    else:
                        self._results.append(outcome)
            else:
                for fut in batch:
                    try:
                        self._results.append(fut.join())
                    except TaskFailedError as exc:
                        self._failures.append(exc)
        self._closed = True
        if self._failures:
            # surface the first failure, like an uncaught exception
            # escaping an X10 finish
            raise self._failures[0]

    @property
    def results(self) -> list[Any]:
        """Return values of all awaited tasks, in join order."""
        if not self._closed:
            raise RuntimeStateError("finish scope still open")
        return list(self._results)

    @property
    def failures(self) -> list[TaskFailedError]:
        return list(self._failures)


class finish:
    """Context manager form of the finish construct.

    ::

        with finish(rt) as scope:
            for item in items:
                scope.async_(process, item)
        total = sum(scope.results)
    """

    def __init__(self, rt: TaskRuntime) -> None:
        self._scope = FinishScope(rt)

    def __enter__(self) -> FinishScope:
        return self._scope

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is None:
            self._scope._drain()
        else:
            # On an exception in the block body, still await the spawned
            # tasks (they hold references to live state) but let the
            # original exception win.
            try:
                self._scope._drain()
            except TaskFailedError:
                pass
        return False
