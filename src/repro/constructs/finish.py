"""The ``finish`` construct of X10 / Habanero Java (Sections 1, 2.3, 7.2).

A ``finish`` block waits for every task *transitively* spawned within it.
The paper argues the natural implementation — keep every spawned future
in a shared queue, join whatever you pop — is precisely an *arbitrary
descendant join* pattern: always deadlock-free and TJ-valid, but liable
to trip KJ unless the join order carefully respects fork order.

Soundness of the drain loop (the Listing 1 argument): every task
registers its children before terminating, and a join only unblocks
after termination; hence when the queue is observed empty, no registered
task (nor any of its descendants) is still running.

Failure handling: the drain always awaits *every* spawned task (no task
is abandoned mid-flight), collects failures, and re-raises the first —
like an uncaught exception escaping an X10 finish.  With
``cancel_on_failure=True`` the scope additionally requests cooperative
cancellation of every still-pending task the moment the first failure is
observed, so long-running siblings wind down instead of completing
doomed work.
"""

from __future__ import annotations

import queue
from typing import Any, Callable, Optional, Union

from ..errors import RuntimeStateError, TaskFailedError
from ..runtime import Future, RetryPolicy, TaskRuntime

__all__ = ["FinishScope", "finish"]


class FinishScope:
    """A handle for spawning tasks that one ``finish`` block will await.

    Use via :func:`finish`; nested tasks may keep spawning into the scope
    they captured::

        with finish(rt) as scope:
            scope.async_(walk, tree.root, scope)
        # <- every transitively spawned walk() has terminated here
    """

    def __init__(
        self,
        rt: TaskRuntime,
        *,
        cancel_on_failure: bool = False,
        retry: Optional["RetryPolicy"] = None,
    ) -> None:
        self._rt = rt
        self._futures: "queue.SimpleQueue[Future]" = queue.SimpleQueue()
        self._spawned: list[Future] = []
        self._cancel_on_failure = cancel_on_failure
        self._cancel_requested = False
        self._retry = retry
        self._closed = False
        self._results: list[Any] = []
        self._failures: list[TaskFailedError] = []

    def async_(self, fn: Callable[..., Any], *args: Any, **kwargs: Any) -> Future:
        """Spawn *fn* as a task awaited by the enclosing finish block."""
        if self._closed:
            raise RuntimeStateError("finish scope already completed")
        if self._retry is not None:
            # Only forwarded when set: runtimes without fork(retry=)
            # (e.g. the cooperative scheduler) keep working untouched.
            fut = self._rt.fork(fn, *args, retry=self._retry, **kwargs)
        else:
            fut = self._rt.fork(fn, *args, **kwargs)
        self._futures.put(fut)
        self._spawned.append(fut)
        if self._cancel_requested:
            # The scope is already winding down: the newcomer inherits
            # the cancellation request immediately.
            fut.cancel()
        return fut

    # ------------------------------------------------------------------
    def cancel_pending(self) -> int:
        """Request cooperative cancellation of every unfinished scope task.

        Returns the number of tasks the request reached (futures already
        terminated are skipped).  Newly spawned tasks are cancelled on
        arrival from then on.  The drain still joins everything — a
        cancelled task terminates with
        :class:`~repro.errors.TaskCancelledError`, collected like any
        other failure.
        """
        self._cancel_requested = True
        return sum(1 for fut in list(self._spawned) if fut.cancel())

    # ------------------------------------------------------------------
    def _drain(self) -> None:
        """Join every registered future until none remain (Listing 1).

        Tasks may keep spawning into the scope *while* the drain runs (a
        joined task's descendants registered before it terminated), so
        the scope only closes once the queue is observed empty — at which
        point, by the Listing 1 argument, no scope task is running.

        Futures are drained in *batches*: everything currently queued is
        popped and handed to the runtime's ``join_batch`` (where
        available), which verifies the whole group against the policy in
        one call instead of paying per-join verifier overhead — the
        arbitrary-descendant-join pattern of a finish block is exactly
        the join-heavy shape that batching amortises.  On the blocking
        runtimes the batch also *blocks* collectively: ``join_batch``
        parks the draining task on one countdown latch, so a batch of N
        pending children costs a single wakeup (delivered when the last
        one terminates), not N sleeps.  Runtimes without
        ``join_batch`` fall back to one ``join`` per future — as does a
        ``cancel_on_failure`` scope, which joins one future at a time so
        the first failure can cancel the others *before* waiting on them.
        """
        join_batch = getattr(self._rt, "join_batch", None)
        if self._cancel_on_failure:
            join_batch = None  # per-future joins: cancel promptly
        while True:
            batch: list[Future] = []
            while True:
                try:
                    batch.append(self._futures.get_nowait())
                except queue.Empty:
                    break
            if not batch:
                break
            if join_batch is not None:
                for outcome in join_batch(batch, return_exceptions=True):
                    if isinstance(outcome, TaskFailedError):
                        self._failures.append(outcome)
                    else:
                        self._results.append(outcome)
            else:
                for fut in batch:
                    try:
                        self._results.append(fut.join())
                    except TaskFailedError as exc:
                        self._failures.append(exc)
                        if self._cancel_on_failure and not self._cancel_requested:
                            self.cancel_pending()
        self._closed = True
        if self._failures:
            # surface the first failure, like an uncaught exception
            # escaping an X10 finish
            raise self._failures[0]

    @property
    def results(self) -> list[Any]:
        """Return values of all awaited tasks, in join order."""
        if not self._closed:
            raise RuntimeStateError("finish scope still open")
        return list(self._results)

    @property
    def failures(self) -> list[TaskFailedError]:
        return list(self._failures)


class finish:
    """Context manager form of the finish construct.

    ::

        with finish(rt) as scope:
            for item in items:
                scope.async_(process, item)
        total = sum(scope.results)

    ``cancel_on_failure=True`` requests cooperative cancellation of all
    still-pending scope tasks as soon as the first failure is observed
    during the drain (the drain still awaits everything).

    ``retry`` (a :class:`~repro.runtime.retry.RetryPolicy`) is forwarded
    to every ``fork`` the scope performs: failing scope tasks are re-run
    with backoff and the drain only sees each task's final outcome.
    """

    def __init__(
        self,
        rt: TaskRuntime,
        *,
        cancel_on_failure: bool = False,
        retry: Optional["RetryPolicy"] = None,
    ) -> None:
        self._scope = FinishScope(rt, cancel_on_failure=cancel_on_failure, retry=retry)

    def __enter__(self) -> FinishScope:
        return self._scope

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is None:
            self._scope._drain()
        else:
            # On an exception in the block body, still await the spawned
            # tasks (they hold references to live state) but let the
            # original exception win.
            try:
                self._scope._drain()
            except TaskFailedError:
                pass
        return False
