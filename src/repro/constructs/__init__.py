"""Higher-level parallel constructs built on the futures runtime.

The paper situates Futures as the most general join model, with Cilk's
spawn/sync and X10/HJ's async-finish as restricted special cases
(Section 1).  This package implements all three on top of the verified
runtime:

* :class:`finish` / :class:`FinishScope` — await all transitively
  spawned tasks (arbitrary-descendant joins; TJ's home turf);
* :class:`FinishAccumulator` — finish plus an associative reduction;
* :class:`CilkFrame` — fully strict spawn/sync.
"""

from .accumulator import FinishAccumulator
from .cilk import CilkFrame
from .finish import FinishScope, finish

__all__ = ["finish", "FinishScope", "FinishAccumulator", "CilkFrame"]
