"""Cilk-style spawn/sync (Section 1's fully strict special case).

A Cilk function may only ``sync`` with tasks it spawned itself — fully
strict computation graphs.  Every ``sync`` join is a parent-joins-child
edge (rule I), so Cilk programs are trivially valid under both KJ and TJ;
this module exists to demonstrate that the general runtime subsumes the
restricted model, and to give tests a compact fully-strict workload
generator.
"""

from __future__ import annotations

from typing import Any, Callable

from ..errors import TaskFailedError
from ..runtime import Future, TaskRuntime

__all__ = ["CilkFrame"]


class CilkFrame:
    """The spawn/sync discipline for one function activation.

    ::

        def fib(n):
            frame = CilkFrame(rt)
            if n < 2:
                return n
            a = frame.spawn(fib, n - 1)
            b = frame.spawn(fib, n - 2)
            frame.sync()
            return a.join() + b.join()   # both already terminated

    ``sync`` blocks until everything this frame spawned has terminated;
    after it, the recorded futures can be read without further blocking.
    """

    def __init__(self, rt: TaskRuntime) -> None:
        self._rt = rt
        self._spawned: list[Future] = []

    def spawn(self, fn: Callable[..., Any], *args: Any, **kwargs: Any) -> Future:
        fut = self._rt.fork(fn, *args, **kwargs)
        self._spawned.append(fut)
        return fut

    def sync(self) -> list[Any]:
        """Join all tasks this frame spawned (in fork order); return their
        results.  Failures propagate as :class:`TaskFailedError`."""
        results = [fut.join() for fut in self._spawned]
        self._spawned.clear()
        return results

    @property
    def outstanding(self) -> int:
        """Spawned-but-not-yet-synced task count."""
        return len(self._spawned)

    def __enter__(self) -> "CilkFrame":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        # Cilk implicitly syncs at function return.
        if exc_type is None:
            self.sync()
        else:
            try:
                self.sync()
            except TaskFailedError:
                pass
        return False
