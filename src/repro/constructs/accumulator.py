"""Finish accumulators (Shirako et al.; the paper's footnote 2).

A finish accumulator joins on all tasks forked within a scope and folds
their results with an associative operator — "joins on all tasks that
were forked within some scope and collects their results".  Built
directly on :class:`FinishScope`, so its join pattern is the same
TJ-friendly arbitrary-descendant drain.
"""

from __future__ import annotations

import operator
from typing import Any, Callable, Optional

from .finish import FinishScope
from ..errors import RuntimeStateError
from ..runtime import TaskRuntime

__all__ = ["FinishAccumulator"]


class FinishAccumulator:
    """Accumulate task results under an associative operator.

    ::

        acc = FinishAccumulator(rt, op=operator.add, initial=0)
        acc.async_(count_leaves, tree, acc)   # tasks may spawn more tasks
        total = acc.get()                     # joins everything, folds
    """

    def __init__(
        self,
        rt: TaskRuntime,
        op: Callable[[Any, Any], Any] = operator.add,
        initial: Any = 0,
    ) -> None:
        self._scope = FinishScope(rt)
        self._op = op
        self._initial = initial
        self._value: Optional[Any] = None
        self._done = False

    def async_(self, fn: Callable[..., Any], *args: Any, **kwargs: Any) -> None:
        """Spawn a contributing task; its return value joins the fold."""
        self._scope.async_(fn, *args, **kwargs)

    def put(self, fn: Callable[..., Any], *args: Any, **kwargs: Any) -> None:
        """Alias for :meth:`async_` matching the accumulator literature."""
        self.async_(fn, *args, **kwargs)

    def get(self) -> Any:
        """Await every contributing task and return the folded value.

        Idempotent: later calls return the cached result.
        """
        if not self._done:
            self._scope._drain()
            value = self._initial
            for r in self._scope.results:
                value = self._op(value, r)
            self._value = value
            self._done = True
        return self._value

    @property
    def task_count(self) -> int:
        if not self._done:
            raise RuntimeStateError("accumulator not finalised; call get() first")
        return len(self._scope.results)
