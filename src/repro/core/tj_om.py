"""TJ-OM: order-maintenance labels (an extension beyond the paper).

Section 3.3 shows the TJ permission relation is a total order in which a
new task sits immediately after its parent.  That makes TJ verification an
instance of the classic *order-maintenance* problem (Dietz & Sleator):
maintain a list under insert-after so that order queries are O(1).

We implement the simple amortised scheme: 63-bit integer labels with
geometric gaps, relabelling the whole list when an insertion finds no gap.
Relabelling is O(n) but is triggered at most O(log gap) times per region,
so forks are amortised near-O(1) and ``Less`` is a single integer compare
— beating every Table 1 row asymptotically.

The price, and the reason this is an *extension* rather than a faithful
reimplementation, is synchronisation: unlike TJ-GT/JP/SP, insertions
mutate shared neighbours, so a lock serialises forks (queries stay
lock-free: labels are written before the node is published, and a
relabel holds the lock while readers only ever see a consistent snapshot
via the sequence counter check).
"""

from __future__ import annotations

import threading
from typing import Optional

from .policy import JoinPolicy, register_policy

__all__ = ["OMNode", "TJOrderMaintenance"]

#: label space; gaps start at _GAP and shrink towards 1 before a relabel
_MAX_LABEL = 1 << 62
_GAP = 1 << 20


class OMNode:
    """A list cell with an order label."""

    __slots__ = ("label", "next", "prev")

    def __init__(self, label: int) -> None:
        self.label = label
        self.next: Optional["OMNode"] = None
        self.prev: Optional["OMNode"] = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"OMNode(label={self.label})"


class TJOrderMaintenance(JoinPolicy):
    """Transitive Joins via an order-maintenance labelled list."""

    name = "TJ-OM"
    stable_permits = True  # <_T is fixed at fork time

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._head: Optional[OMNode] = None
        self._n_nodes = 0
        self._relabels = 0
        #: incremented (to odd, then back to even) around relabels so that
        #: unlocked readers can detect a concurrent relabel and retry
        self._seq = 0

    # ------------------------------------------------------------------
    def add_child(self, parent: Optional[OMNode]) -> OMNode:
        with self._lock:
            self._n_nodes += 1
            if parent is None:
                node = OMNode(_MAX_LABEL // 2)
                self._head = node
                return node
            succ = parent.next
            if succ is None:
                label = parent.label + _GAP
                if label >= _MAX_LABEL:
                    self._relabel()
                    label = parent.label + _GAP
            else:
                label = (parent.label + succ.label) // 2
                if label == parent.label:
                    self._relabel()
                    succ = parent.next
                    label = (
                        (parent.label + succ.label) // 2
                        if succ is not None
                        else parent.label + _GAP
                    )
            node = OMNode(label)
            node.prev = parent
            node.next = succ
            if succ is not None:
                succ.prev = node
            parent.next = node
            return node

    def _relabel(self) -> None:
        """Re-space all labels evenly; caller holds the lock."""
        self._seq += 1  # odd: relabel in progress
        try:
            n = self._n_nodes
            gap = max(1, min(_GAP, (_MAX_LABEL - 2) // max(1, n + 1)))
            label = gap
            node = self._head
            while node is not None:
                node.label = label
                label += gap
                node = node.next
            self._relabels += 1
        finally:
            self._seq += 1  # even: done

    # ------------------------------------------------------------------
    def permits(self, joiner: OMNode, joinee: OMNode) -> bool:
        while True:
            seq = self._seq
            if seq & 1:
                with self._lock:  # wait out the relabel
                    pass
                continue
            result = joiner.label < joinee.label
            if self._seq == seq:
                return result

    def space_units(self) -> int:
        return 3 * self._n_nodes

    @property
    def relabel_count(self) -> int:
        """How many full relabels have occurred (exposed for tests/benches)."""
        return self._relabels


register_policy(TJOrderMaintenance.name, TJOrderMaintenance)
