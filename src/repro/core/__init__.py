"""The paper's primary contribution: online Transitive Joins verifiers.

Four interchangeable algorithms decide the TJ order ``<_T``:

=========  ==========  ==========  ============  ==============
algorithm  fork time   join time   space         paper section
=========  ==========  ==========  ============  ==============
TJ-GT      O(1)        O(h)        O(n)          5.2.1 (Alg. 2)
TJ-JP      O(log h)    O(log h)    O(n log h)    5.2.2
TJ-SP      O(1)        O(h)        O(n)          5.2.3 (Alg. 3), flat arrays
TJ-OM      O(1) amort  O(1)        O(n)          extension
=========  ==========  ==========  ============  ==============

plus the :class:`NullPolicy` baseline and the Algorithm 1 verifier shell.
``"TJ-SP"`` resolves to the struct-of-arrays :class:`TJSpawnPathsFlat`
(compiled kernel when available, pure Python otherwise — see
:mod:`repro.core._cbuild`); the interned object implementation survives
as ``"TJ-SP-obj"`` and the seed tuples as ``"TJ-SP-legacy"``.
"""

from .policy import (
    JoinPolicy,
    NullPolicy,
    POLICY_REGISTRY,
    evict_chunk,
    make_policy,
    register_policy,
)
from .tj_gt import GTNode, TJGlobalTree
from .tj_jp import JPNode, TJJumpPointers
from .tj_om import OMNode, TJOrderMaintenance
from .tj_sp import LegacySPNode, SPNode, TJSpawnPaths, TJSpawnPathsLegacy
from .tj_sp_flat import FlatTreePy, TJSpawnPathsFlat
from .verifier import Verifier, VerifierStats

TJ_POLICIES = (TJGlobalTree, TJJumpPointers, TJSpawnPathsFlat, TJOrderMaintenance)

__all__ = [
    "JoinPolicy",
    "NullPolicy",
    "POLICY_REGISTRY",
    "register_policy",
    "make_policy",
    "evict_chunk",
    "TJGlobalTree",
    "TJJumpPointers",
    "TJSpawnPaths",
    "TJSpawnPathsFlat",
    "TJSpawnPathsLegacy",
    "TJOrderMaintenance",
    "FlatTreePy",
    "GTNode",
    "JPNode",
    "SPNode",
    "LegacySPNode",
    "OMNode",
    "Verifier",
    "VerifierStats",
    "TJ_POLICIES",
]
