/* Compiled kernel for the flat-array TJ-SP core (and the Armus DFS).
 *
 * This is the optional compiled backend of `repro.core.tj_sp_flat`: the
 * same struct-of-arrays representation as the pure-Python `FlatTreePy`
 * kernel — parallel int64 buffers `parent` / `edge` / `depth` /
 * `children` / `last_ok` indexed by a dense stable id, grown by
 * doubling — with `Less` as C-level index chasing and `permits_many` as
 * one C loop per batch.  It is built on demand by `repro.core._cbuild`
 * with whatever C compiler the host has; when none is available the
 * pure-Python kernel serves the identical semantics (the differential
 * suite in tests/core/test_flat_tj_sp.py proves verdict equality).
 *
 * Thread-safety: none of the functions below release the GIL, so every
 * call is atomic with respect to other Python threads.  That is
 * strictly stronger than the Section 5.1 contract needs (concurrent
 * `add_child` calls never share a parent; `permits` may race with
 * `add_child` but only ever names already-published ids).
 *
 * `find_path` is the Armus waits-for DFS (`WaitsForGraph._find_path`)
 * over the ordinary dict-of-sets adjacency, returning the same
 * `[src, ..., dst]` list (or None) as the Python implementation.
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>
#include <stdint.h>
#include <string.h>

/* ------------------------------------------------------------------ */
/* FlatTree: the struct-of-arrays spawn-path forest                    */
/* ------------------------------------------------------------------ */

typedef struct {
    PyObject_HEAD
    int64_t *parent;
    int64_t *edge;
    int64_t *depth;
    int64_t *children;
    int64_t *last_ok;
    Py_ssize_t n;
    Py_ssize_t cap;
} FlatTree;

static int
flattree_grow(FlatTree *self, Py_ssize_t need)
{
    Py_ssize_t cap;
    if (need <= self->cap)
        return 0;
    cap = self->cap > 0 ? self->cap : 8;
    while (cap < need)
        cap *= 2;
#define GROW(field)                                                        \
    do {                                                                   \
        int64_t *buf = PyMem_Realloc(self->field, cap * sizeof(int64_t));  \
        if (buf == NULL) {                                                 \
            PyErr_NoMemory();                                              \
            return -1;                                                     \
        }                                                                  \
        self->field = buf;                                                 \
    } while (0)
    GROW(parent);
    GROW(edge);
    GROW(depth);
    GROW(children);
    GROW(last_ok);
#undef GROW
    self->cap = cap;
    return 0;
}

static PyObject *
flattree_new(PyTypeObject *type, PyObject *args, PyObject *kwds)
{
    FlatTree *self = (FlatTree *)type->tp_alloc(type, 0);
    if (self == NULL)
        return NULL;
    self->parent = self->edge = self->depth = self->children = self->last_ok = NULL;
    self->n = 0;
    self->cap = 0;
    return (PyObject *)self;
}

static void
flattree_dealloc(FlatTree *self)
{
    PyMem_Free(self->parent);
    PyMem_Free(self->edge);
    PyMem_Free(self->depth);
    PyMem_Free(self->children);
    PyMem_Free(self->last_ok);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static int
flattree_check_id(FlatTree *self, Py_ssize_t id, const char *what)
{
    if (id < 0 || id >= self->n) {
        PyErr_Format(PyExc_ValueError, "unknown %s id %zd", what, id);
        return -1;
    }
    return 0;
}

static PyObject *
flattree_add_child(FlatTree *self, PyObject *arg)
{
    Py_ssize_t p = PyNumber_AsSsize_t(arg, PyExc_OverflowError);
    Py_ssize_t id;
    if (p == -1 && PyErr_Occurred())
        return NULL;
    if (p < -1 || p >= self->n) {
        PyErr_Format(PyExc_ValueError, "unknown parent id %zd", p);
        return NULL;
    }
    if (flattree_grow(self, self->n + 1) < 0)
        return NULL;
    id = self->n;
    if (p < 0) {
        self->parent[id] = -1;
        self->edge[id] = 0;
        self->depth[id] = 0;
    }
    else {
        self->parent[id] = p;
        self->edge[id] = self->children[p]++;
        self->depth[id] = self->depth[p] + 1;
    }
    self->children[id] = 0;
    self->last_ok[id] = -1;
    self->n = id + 1;
    return PyLong_FromSsize_t(id);
}

/* The Algorithm 3 ``Less`` on flat buffers: lift the deeper side to a
 * common depth remembering the last edge taken, climb in lockstep to
 * the LCA, and compare the dangling edges (later sibling is smaller;
 * only a proper ancestor is less). */
static int
flat_less(const FlatTree *t, int64_t a, int64_t b)
{
    const int64_t *parent = t->parent;
    const int64_t *edge = t->edge;
    int64_t e1 = -1, e2 = -1;
    int64_t d1, d2;
    if (a == b)
        return 0;
    d1 = t->depth[a];
    d2 = t->depth[b];
    while (d2 > d1) {
        e2 = edge[b];
        b = parent[b];
        d2--;
    }
    while (d1 > d2) {
        e1 = edge[a];
        a = parent[a];
        d1--;
    }
    while (a != b) {
        e1 = edge[a];
        e2 = edge[b];
        a = parent[a];
        b = parent[b];
    }
    if (e1 < 0)
        return e2 >= 0; /* anc+: a proper ancestor is permitted  */
    if (e2 < 0)
        return 0; /* dec*: a descendant never is */
    return e1 > e2;
}

/* permits(a, b) with the monotone last-ok fast path (verdicts are
 * fixed at fork time, so a permitted pair stays permitted forever). */
static int
flat_permits(FlatTree *self, int64_t a, int64_t b)
{
    int v;
    if (self->last_ok[a] == b)
        return 1;
    v = flat_less(self, a, b);
    if (v)
        self->last_ok[a] = b;
    return v;
}

static PyObject *
flattree_permits(FlatTree *self, PyObject *args)
{
    Py_ssize_t a, b;
    if (!PyArg_ParseTuple(args, "nn:permits", &a, &b))
        return NULL;
    if (flattree_check_id(self, a, "joiner") < 0 ||
        flattree_check_id(self, b, "joinee") < 0)
        return NULL;
    return PyBool_FromLong(flat_permits(self, a, b));
}

static PyObject *
flattree_permits_many(FlatTree *self, PyObject *args)
{
    Py_ssize_t a, n, i;
    PyObject *joinees, *fast, *out;
    if (!PyArg_ParseTuple(args, "nO:permits_many", &a, &joinees))
        return NULL;
    if (flattree_check_id(self, a, "joiner") < 0)
        return NULL;
    fast = PySequence_Fast(joinees, "joinees must be a sequence of ids");
    if (fast == NULL)
        return NULL;
    n = PySequence_Fast_GET_SIZE(fast);
    out = PyList_New(n);
    if (out == NULL) {
        Py_DECREF(fast);
        return NULL;
    }
    for (i = 0; i < n; i++) {
        Py_ssize_t b = PyNumber_AsSsize_t(PySequence_Fast_GET_ITEM(fast, i),
                                          PyExc_OverflowError);
        PyObject *v;
        if (b == -1 && PyErr_Occurred())
            goto fail;
        if (flattree_check_id(self, b, "joinee") < 0)
            goto fail;
        v = flat_permits(self, a, b) ? Py_True : Py_False;
        Py_INCREF(v);
        PyList_SET_ITEM(out, i, v);
    }
    Py_DECREF(fast);
    return out;
fail:
    Py_DECREF(fast);
    Py_DECREF(out);
    return NULL;
}

static PyObject *
flattree_depth_of(FlatTree *self, PyObject *arg)
{
    Py_ssize_t id = PyNumber_AsSsize_t(arg, PyExc_OverflowError);
    if (id == -1 && PyErr_Occurred())
        return NULL;
    if (flattree_check_id(self, id, "vertex") < 0)
        return NULL;
    return PyLong_FromLongLong(self->depth[id]);
}

/* The spawn path of *id* as the legacy tuple of edge labels (debugging
 * and differential tests; never on the hot path). */
static PyObject *
flattree_path_of(FlatTree *self, PyObject *arg)
{
    Py_ssize_t id = PyNumber_AsSsize_t(arg, PyExc_OverflowError);
    int64_t node, d;
    PyObject *out;
    if (id == -1 && PyErr_Occurred())
        return NULL;
    if (flattree_check_id(self, id, "vertex") < 0)
        return NULL;
    d = self->depth[id];
    out = PyTuple_New(d);
    if (out == NULL)
        return NULL;
    node = id;
    while (d > 0) {
        PyObject *e = PyLong_FromLongLong(self->edge[node]);
        if (e == NULL) {
            Py_DECREF(out);
            return NULL;
        }
        PyTuple_SET_ITEM(out, d - 1, e);
        node = self->parent[node];
        d--;
    }
    return out;
}

static PyObject *
flattree_len(FlatTree *self, PyObject *Py_UNUSED(ignored))
{
    return PyLong_FromSsize_t(self->n);
}

static PyMethodDef flattree_methods[] = {
    {"add_child", (PyCFunction)flattree_add_child, METH_O,
     "add_child(parent_id) -> id   (parent_id < 0 creates a root)"},
    {"permits", (PyCFunction)flattree_permits, METH_VARARGS,
     "permits(joiner_id, joinee_id) -> bool"},
    {"permits_many", (PyCFunction)flattree_permits_many, METH_VARARGS,
     "permits_many(joiner_id, joinee_ids) -> list[bool]"},
    {"depth_of", (PyCFunction)flattree_depth_of, METH_O,
     "depth_of(id) -> int"},
    {"path_of", (PyCFunction)flattree_path_of, METH_O,
     "path_of(id) -> tuple  (the legacy spawn-path tuple)"},
    {"__len__", (PyCFunction)flattree_len, METH_NOARGS, NULL},
    {NULL, NULL, 0, NULL},
};

static Py_ssize_t
flattree_length(FlatTree *self)
{
    return self->n;
}

static PySequenceMethods flattree_as_sequence = {
    .sq_length = (lenfunc)flattree_length,
};

static PyTypeObject FlatTreeType = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "_tj_sp_c.FlatTree",
    .tp_basicsize = sizeof(FlatTree),
    .tp_dealloc = (destructor)flattree_dealloc,
    .tp_as_sequence = &flattree_as_sequence,
    .tp_flags = Py_TPFLAGS_DEFAULT,
    .tp_doc = "Struct-of-arrays TJ-SP spawn-path forest (compiled kernel)",
    .tp_methods = flattree_methods,
    .tp_new = flattree_new,
};

/* ------------------------------------------------------------------ */
/* find_path: the Armus waits-for DFS over a dict-of-sets adjacency    */
/* ------------------------------------------------------------------ */

static PyObject *
reconstruct_path(PyObject *parent, PyObject *src, PyObject *dst)
{
    PyObject *path = PyList_New(0);
    PyObject *cur = dst;
    if (path == NULL)
        return NULL;
    Py_INCREF(cur);
    for (;;) {
        int eq;
        PyObject *prev;
        if (PyList_Append(path, cur) < 0)
            goto fail;
        eq = PyObject_RichCompareBool(cur, src, Py_EQ);
        if (eq < 0)
            goto fail;
        if (eq)
            break;
        prev = PyDict_GetItemWithError(parent, cur);
        if (prev == NULL) {
            if (!PyErr_Occurred())
                PyErr_SetString(PyExc_KeyError, "broken DFS parent chain");
            goto fail;
        }
        Py_INCREF(prev);
        Py_DECREF(cur);
        cur = prev;
    }
    Py_DECREF(cur);
    if (PyList_Reverse(path) < 0) {
        Py_DECREF(path);
        return NULL;
    }
    return path;
fail:
    Py_DECREF(cur);
    Py_DECREF(path);
    return NULL;
}

static PyObject *
mod_find_path(PyObject *Py_UNUSED(module), PyObject *args)
{
    PyObject *succ, *src, *dst;
    PyObject *parent = NULL, *seen = NULL, *stack = NULL, *result = NULL;
    int eq, contains;
    if (!PyArg_ParseTuple(args, "OOO:find_path", &succ, &src, &dst))
        return NULL;
    eq = PyObject_RichCompareBool(src, dst, Py_EQ);
    if (eq < 0)
        return NULL;
    if (eq) {
        PyObject *path = PyList_New(1);
        if (path == NULL)
            return NULL;
        Py_INCREF(src);
        PyList_SET_ITEM(path, 0, src);
        return path;
    }
    contains = PyDict_Contains(succ, src);
    if (contains < 0)
        return NULL;
    if (!contains)
        Py_RETURN_NONE;
    parent = PyDict_New();
    seen = PySet_New(NULL);
    stack = PyList_New(0);
    if (parent == NULL || seen == NULL || stack == NULL)
        goto done;
    if (PySet_Add(seen, src) < 0 || PyList_Append(stack, src) < 0)
        goto done;
    while (PyList_GET_SIZE(stack) > 0) {
        Py_ssize_t top = PyList_GET_SIZE(stack) - 1;
        PyObject *node = PyList_GET_ITEM(stack, top); /* borrowed */
        PyObject *succs, *iter, *s;
        Py_INCREF(node);
        if (PyList_SetSlice(stack, top, top + 1, NULL) < 0) {
            Py_DECREF(node);
            goto done;
        }
        succs = PyDict_GetItemWithError(succ, node);
        if (succs == NULL) {
            Py_DECREF(node);
            if (PyErr_Occurred())
                goto done;
            continue;
        }
        iter = PyObject_GetIter(succs);
        if (iter == NULL) {
            Py_DECREF(node);
            goto done;
        }
        while ((s = PyIter_Next(iter)) != NULL) {
            int in_seen = PySet_Contains(seen, s);
            if (in_seen < 0)
                goto inner_fail;
            if (in_seen) {
                Py_DECREF(s);
                continue;
            }
            if (PyDict_SetItem(parent, s, node) < 0)
                goto inner_fail;
            eq = PyObject_RichCompareBool(s, dst, Py_EQ);
            if (eq < 0)
                goto inner_fail;
            if (eq) {
                result = reconstruct_path(parent, src, dst);
                Py_DECREF(s);
                Py_DECREF(iter);
                Py_DECREF(node);
                goto done;
            }
            if (PySet_Add(seen, s) < 0 || PyList_Append(stack, s) < 0)
                goto inner_fail;
            Py_DECREF(s);
            continue;
        inner_fail:
            Py_DECREF(s);
            Py_DECREF(iter);
            Py_DECREF(node);
            goto done;
        }
        Py_DECREF(iter);
        Py_DECREF(node);
        if (PyErr_Occurred())
            goto done;
    }
    result = Py_None;
    Py_INCREF(result);
done:
    Py_XDECREF(parent);
    Py_XDECREF(seen);
    Py_XDECREF(stack);
    if (result == NULL && !PyErr_Occurred())
        PyErr_SetString(PyExc_SystemError, "find_path failed");
    return result;
}

static PyMethodDef module_methods[] = {
    {"find_path", mod_find_path, METH_VARARGS,
     "find_path(succ_dict, src, dst) -> [src, ..., dst] or None"},
    {NULL, NULL, 0, NULL},
};

static struct PyModuleDef tj_sp_c_module = {
    PyModuleDef_HEAD_INIT,
    .m_name = "_tj_sp_c",
    .m_doc = "Compiled flat-array TJ-SP kernel and Armus DFS",
    .m_size = -1,
    .m_methods = module_methods,
};

PyMODINIT_FUNC
PyInit__tj_sp_c(void)
{
    PyObject *m;
    if (PyType_Ready(&FlatTreeType) < 0)
        return NULL;
    m = PyModule_Create(&tj_sp_c_module);
    if (m == NULL)
        return NULL;
    Py_INCREF(&FlatTreeType);
    if (PyModule_AddObject(m, "FlatTree", (PyObject *)&FlatTreeType) < 0) {
        Py_DECREF(&FlatTreeType);
        Py_DECREF(m);
        return NULL;
    }
    return m;
}
