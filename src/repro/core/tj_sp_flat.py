"""TJ-SP over a struct-of-arrays core: the flat-array policy (``TJ-SP``).

The interned prefix tree of :mod:`repro.core.tj_sp` won the asymptotics
(O(1) forks, O(n) space) but kept one Python object per task, so every
``Less`` step paid attribute loads and every batch check paid a Python
loop.  This module removes the objects entirely, in the style of DePa's
machine-word path encodings: the whole spawn-path forest lives in
parallel int64 buffers —

* ``parent[id]`` — parent vertex id (-1 for a root),
* ``edge[id]``   — sibling index (the spawn-path entry),
* ``depth[id]``  — precomputed depth,
* ``children[id]`` — fork counter,
* ``last_ok[id]``  — the monotone per-task permission cache,

grown by doubling and indexed by a dense stable id.  **A vertex handle
is just that id** (a plain ``int``), so the runtimes never materialise a
node object on the hot path: ``task.vertex`` is an int, batch drains
pass lists of ints, and ``Less`` is index chasing over flat buffers.

Two interchangeable kernels serve the representation:

* :class:`FlatTreePy` — the portable pure-Python core.  Scalar ``Less``
  chases Python lists (faster than NumPy scalar indexing); batch
  verification uses a vectorized NumPy pass when the batch is wide
  enough (:data:`VECTOR_MIN`): climb all joinees to the joiner's depth
  with gathers, resolve the LCA for the whole batch in lockstep against
  the joiner's ancestor chain, and answer n joins in O(max depth) vector
  operations instead of n pointer walks.  NumPy mirrors of the buffers
  are synced lazily, at batch time — forks touch only Python lists.
* the compiled kernel of ``_tj_sp_c.c`` (built on demand by
  :mod:`repro.core._cbuild`) — the same arrays in C, with ``Less`` and
  ``permits_many`` as C loops.

:class:`TJSpawnPathsFlat` (registered as ``"TJ-SP"``) wraps either
kernel, binding the kernel's ``permits`` straight onto the instance so a
scalar check is one call into the core with no policy-level dispatch.
On top it adds one cache the kernels cannot see: a bounded **batch
cache** ``(joiner, joinee-tuple) -> verdicts`` serving ``permits_many``,
sound because TJ verdicts are fixed at fork time, which turns the
barrier/finish pattern of re-verifying the same join set every phase
into one dict hit per drain.  The cache evicts in chunks (the oldest
eighth, via :func:`repro.core.policy.evict_chunk`) rather than one
entry per insert, and counts evictions (``cache_stats()``).

The object policy survives as ``"TJ-SP-obj"`` and the seed tuples as
``"TJ-SP-legacy"``; ``tests/core/test_flat_tj_sp.py`` proves all four
implementations (legacy / object / flat-pure / flat-compiled) verdict
identical on 1000+ random trees.
"""

from __future__ import annotations

import threading
from typing import Optional, Sequence

from ._cbuild import backend_choice, compiled_module
from .policy import JoinPolicy, evict_chunk as _evict_chunk, register_policy

try:  # numpy is a declared dependency, but the flat core runs without it
    import numpy as _np
except Exception:  # pragma: no cover - exercised only on stripped installs
    _np = None

__all__ = ["FlatTreePy", "TJSpawnPathsFlat", "VECTOR_MIN"]

#: smallest batch the pure-Python kernel vectorizes with NumPy; below
#: this a plain loop over the list buffers is faster (NumPy scalar
#: indexing costs several times a list index from Python).
VECTOR_MIN = 48


class _ThreadBlock:
    """One thread's reserved id range inside a :class:`FlatTreePy`."""

    __slots__ = ("next", "limit", "size", "registered")

    def __init__(self) -> None:
        self.next = 0
        self.limit = 0
        self.size = 1  # doubles per reservation up to BLOCK_CAP
        self.registered = False


class FlatTreePy:
    """The pure-Python struct-of-arrays kernel.

    Python lists carry the scalar hot path; NumPy mirrors of
    ``parent``/``edge``/``depth`` carry the vectorized batch path.  The
    mirrors are synced *lazily*: ``add_child`` appends to the lists only
    (so forks never pay NumPy scalar-write costs), and a batch query
    copies the not-yet-mirrored suffix in one vectorized slice
    assignment, growing the mirror capacity by doubling.

    Forks are **thread-affine**: instead of taking the lock and paying
    five list appends per fork, each forking thread reserves a block of
    ids (geometrically growing, capped at :data:`BLOCK_CAP`) by
    extending the buffers with placeholder rows under the lock once per
    block, then fills rows from its own block with plain lock-free slot
    stores.  A reserved-but-unfilled row carries the parent sentinel
    ``-2`` and its id has never been handed out; ids are returned only
    after the row is fully written (parent stored last), so scalar
    readers stay lock-free exactly as before.  The per-parent fork
    counter is updated without the lock, which leans on the runtime
    contract that only the thread executing a task forks from it.

    Mirror syncs still take the lock; rows that were placeholders at
    sync time are remembered and re-copied once filled, so the batch
    kernel never reads a stale hole.
    """

    __slots__ = (
        "parent",
        "edge",
        "depth",
        "children",
        "last_ok",
        "n",
        "_lock",
        "_local",
        "_blocks",
        "_np_parent",
        "_np_edge",
        "_np_depth",
        "_np_cap",
        "_np_synced",
        "_np_holes",
    )

    #: initial mirror capacity (small, so tests cross growth boundaries)
    INITIAL_CAPACITY = 8
    #: largest per-thread id block (bounds placeholder waste per thread)
    BLOCK_CAP = 64
    #: parent sentinel of a reserved-but-unfilled row
    HOLE = -2

    def __init__(self) -> None:
        self.parent: list[int] = []
        self.edge: list[int] = []
        self.depth: list[int] = []
        self.children: list[int] = []
        self.last_ok: list[int] = []
        #: reserved high-water mark (the id-allocation fence); the
        #: *filled* count is ``len(self)``
        self.n = 0
        self._lock = threading.Lock()
        self._local = threading.local()
        #: every thread's block state, for exact filled accounting
        self._blocks: list[_ThreadBlock] = []
        self._np_cap = 0
        self._np_synced = 0
        self._np_parent = self._np_edge = self._np_depth = None
        #: mirror positions synced while still holes, to re-copy later
        self._np_holes: list[int] = []

    # ------------------------------------------------------------------
    def _reserve(self) -> "_ThreadBlock":
        """Give the calling thread a fresh block of placeholder rows."""
        local = self._local
        blk = getattr(local, "blk", None)
        if blk is None:
            blk = _ThreadBlock()
            local.blk = blk
        size = blk.size
        blk.size = min(size * 2, self.BLOCK_CAP)
        hole = self.HOLE
        with self._lock:
            if not blk.registered:
                blk.registered = True
                self._blocks.append(blk)
            start = self.n
            self.n = start + size
            self.parent.extend([hole] * size)
            self.edge.extend([0] * size)
            self.depth.extend([0] * size)
            self.children.extend([0] * size)
            self.last_ok.extend([-1] * size)
        blk.next = start
        blk.limit = start + size
        return blk

    def add_child(self, parent: int) -> int:
        """Append a vertex under *parent* (< 0 creates a root); returns its id."""
        blk = getattr(self._local, "blk", None)
        if blk is None or blk.next >= blk.limit:
            blk = self._reserve()
        vid = blk.next
        if parent < 0:
            p, e, d = -1, 0, 0
        else:
            if parent >= self.n or self.parent[parent] == self.HOLE:
                raise ValueError(f"unknown parent id {parent}")
            p = parent
            # Lock-free single-writer bump: only the thread running a
            # task forks from it (the runtimes' execution contract).
            e = self.children[parent]
            self.children[parent] = e + 1
            d = self.depth[parent] + 1
        self.edge[vid] = e
        self.depth[vid] = d
        # children[vid] and last_ok[vid] already hold 0 / -1 from the
        # reservation; parent is stored last so a row with a real parent
        # value is fully initialised.
        self.parent[vid] = p
        blk.next = vid + 1
        return vid

    def _sync_mirrors_locked(self, n: int):
        """Bring the NumPy mirrors up to *n* entries; returns them.

        Caller must hold the lock.  Growth allocates fresh doubled
        arrays and copies the synced prefix, then publishes by swap —
        a concurrent batch still reading the old arrays sees its full
        captured prefix untouched.
        """
        cap = self._np_cap
        if n > cap:
            cap = cap or self.INITIAL_CAPACITY
            while cap < n:
                cap *= 2
            m = self._np_synced
            for name in ("_np_parent", "_np_edge", "_np_depth"):
                old = getattr(self, name)
                buf = _np.empty(cap, dtype=_np.int64)
                if m:
                    buf[:m] = old[:m]
                setattr(self, name, buf)
            self._np_cap = cap
        # Holes synced earlier may have been filled since (thread-affine
        # blocks fill out of lockstep with the reservation order);
        # re-copy the ones that resolved, keep the rest pending.
        if self._np_holes:
            still = []
            hole = self.HOLE
            parents = self.parent
            for i in self._np_holes:
                p = parents[i]
                if p == hole:
                    still.append(i)
                else:
                    self._np_parent[i] = p
                    self._np_edge[i] = self.edge[i]
                    self._np_depth[i] = self.depth[i]
            self._np_holes = still
        m = self._np_synced
        if n > m:
            self._np_parent[m:n] = self.parent[m:n]
            self._np_edge[m:n] = self.edge[m:n]
            self._np_depth[m:n] = self.depth[m:n]
            holes = _np.flatnonzero(self._np_parent[m:n] == self.HOLE)
            if holes.size:
                self._np_holes.extend((holes + m).tolist())
            self._np_synced = n
        return self._np_parent, self._np_edge, self._np_depth

    # ------------------------------------------------------------------
    def less(self, a: int, b: int) -> bool:
        """Algorithm 3 ``Less`` as index chasing over the flat buffers."""
        if a == b:
            return False
        parent = self.parent
        edge = self.edge
        depth = self.depth
        e1 = e2 = -1
        d1 = depth[a]
        d2 = depth[b]
        while d2 > d1:
            e2 = edge[b]
            b = parent[b]
            d2 -= 1
        while d1 > d2:
            e1 = edge[a]
            a = parent[a]
            d1 -= 1
        while a != b:
            e1 = edge[a]
            e2 = edge[b]
            a = parent[a]
            b = parent[b]
        if e1 < 0:
            return e2 >= 0  # anc+: a proper ancestor is permitted
        if e2 < 0:
            return False  # dec*: a descendant never is
        return e1 > e2  # sib: the later sibling is smaller

    def permits(self, a: int, b: int) -> bool:
        last_ok = self.last_ok
        if last_ok[a] == b:
            return True
        if self.less(a, b):
            last_ok[a] = b
            return True
        return False

    def permits_many(self, joiner: int, joinees: Sequence[int]) -> list[bool]:
        if _np is not None and len(joinees) >= VECTOR_MIN:
            return self._permits_batch_np(joiner, joinees)
        permits = self.permits
        return [permits(joiner, joinee) for joinee in joinees]

    # ------------------------------------------------------------------
    def _permits_batch_np(self, joiner: int, joinees: Sequence[int]) -> list[bool]:
        """One vectorized ``Less`` pass: n joins against one joiner.

        All joinees are lifted to the joiner's depth with masked parent
        gathers (each iteration retires one level across the whole
        batch), then the batch climbs in lockstep against the joiner's
        precomputed ancestor chain until every element has met its LCA.
        The dangling-edge comparison is then a single vector expression.
        """
        np = _np
        n_pub = self.n
        with self._lock:
            parent, edge, depth = self._sync_mirrors_locked(n_pub)
        ids = np.asarray(joinees, dtype=np.int64)
        if ids.size and (
            ids.min() < 0
            or ids.max() >= n_pub
            or (parent[ids] == self.HOLE).any()  # reserved, never handed out
        ):
            raise ValueError("unknown joinee id in batch")
        # The joiner's ancestor chain, indexable by depth (chain[k] is
        # the ancestor at depth k).  O(depth) once per batch.
        plist = self.parent
        dj = self.depth[joiner]
        chain = [0] * (dj + 1)
        node = joiner
        for k in range(dj, -1, -1):
            chain[k] = node
            node = plist[node]
        chain_arr = np.asarray(chain, dtype=np.int64)
        cur = ids.copy()
        d = depth[cur]
        e1 = np.full(ids.shape, -1, dtype=np.int64)
        e2 = np.full(ids.shape, -1, dtype=np.int64)
        # Lift joinees deeper than the joiner (only the last edge taken
        # matters, so each masked step may overwrite e2).
        mask = d > dj
        while mask.any():
            c = cur[mask]
            e2[mask] = edge[c]
            cur[mask] = parent[c]
            d[mask] -= 1
            mask = d > dj
        # Joiner-side lift for shallower joinees is a chain lookup: the
        # surviving e1 is the edge of the ancestor one below depth d.
        k = d
        lift = k < dj
        if lift.any():
            e1[lift] = edge[chain_arr[k[lift] + 1]]
        # Lockstep climb to the LCA against the ancestor chain.
        while True:
            anc = chain_arr[k]
            neq = cur != anc
            if not neq.any():
                break
            c = cur[neq]
            e1[neq] = edge[anc[neq]]
            e2[neq] = edge[c]
            cur[neq] = parent[c]
            k[neq] -= 1
        verdict = np.where(e1 < 0, e2 >= 0, (e2 >= 0) & (e1 > e2))
        return verdict.tolist()

    # ------------------------------------------------------------------
    def depth_of(self, vid: int) -> int:
        return self.depth[vid]

    def path_of(self, vid: int) -> tuple[int, ...]:
        """The legacy spawn-path tuple (debugging/differential tests)."""
        rev = []
        parent = self.parent
        edge = self.edge
        while parent[vid] >= 0:
            rev.append(edge[vid])
            vid = parent[vid]
        return tuple(reversed(rev))

    def __len__(self) -> int:
        """Filled vertices (reserved placeholder rows are not tasks)."""
        with self._lock:
            unused = sum(b.limit - b.next for b in self._blocks)
            return self.n - unused


class TJSpawnPathsFlat(JoinPolicy):
    """Transitive Joins over the flat struct-of-arrays core.

    Vertex handles are dense ``int`` ids.  The kernel — compiled C or
    pure Python — is chosen per instance: explicitly via ``backend=``
    (``"c"``, ``"py"`` or ``"auto"``), else from the ``REPRO_TJ_BACKEND``
    environment variable (see :mod:`repro.core._cbuild`).  The resolved
    choice is exposed as :attr:`backend` (``"c"`` or ``"py"``), which
    the verifier stamps onto its latency histograms and the hot-path
    benchmark records next to every measurement.

    ``permits`` is rebound on the instance to the kernel's own method:
    a scalar check costs no policy-level Python frame at all, and the
    kernel's per-task ``last_ok`` slot (sound — TJ verdicts are fixed
    at fork time) is the only scalar cache.  ``permits_many`` keeps a
    policy-level bounded batch-verdict cache on top.
    """

    name = "TJ-SP"
    stable_permits = True

    #: batch-verdict cache capacity (both kernels)
    BATCH_CACHE_CAPACITY = 1 << 12

    def __init__(self, backend: Optional[str] = None) -> None:
        choice = backend_choice() if backend is None else backend.strip().lower()
        kernel = None
        if choice in ("auto", "c"):
            module = compiled_module() if backend is None else _resolve_explicit(choice)
            if module is not None:
                kernel = module.FlatTree()
        elif choice != "py":
            raise ValueError(f"backend must be 'auto', 'c' or 'py', got {backend!r}")
        if kernel is not None:
            self._core = kernel
            self.backend = "c"
        else:
            self._core = FlatTreePy()
            self.backend = "py"
        # Hot-path rebinds: instance attributes shadow the class methods,
        # so callers dispatch straight into the kernel.
        self.permits = self._core.permits
        self._batch_verdicts: dict[tuple, tuple[bool, ...]] = {}
        #: total batch-cache entries evicted over this policy's lifetime
        self.cache_evictions = 0

    # ------------------------------------------------------------------
    def add_child(self, parent: Optional[int]) -> int:
        return self._core.add_child(-1 if parent is None else parent)

    def permits(self, joiner: int, joinee: int) -> bool:  # pragma: no cover
        # Shadowed by the instance binding in __init__; kept so the ABC
        # contract is visibly satisfied at class level.
        return self._core.permits(joiner, joinee)

    def permits_many(self, joiner: int, joinees: Sequence[int]) -> list[bool]:
        ids = tuple(joinees)
        if not ids:
            return []
        cache = self._batch_verdicts
        key = (joiner, ids)
        hit = cache.get(key)
        if hit is None:
            hit = tuple(self._core.permits_many(joiner, ids))
            if len(cache) >= self.BATCH_CACHE_CAPACITY:
                self.cache_evictions += _evict_chunk(
                    cache, self.BATCH_CACHE_CAPACITY
                )
            cache[key] = hit
        return list(hit)

    # ------------------------------------------------------------------
    def cache_stats(self) -> dict[str, int]:
        """Size and total evictions of the batch-verdict cache."""
        return {
            "batch_entries": len(self._batch_verdicts),
            "evictions": self.cache_evictions,
        }

    def space_units(self) -> int:
        """Live storage in atomic slots: 4 per vertex (parent, edge,
        depth, last-ok), same accounting as the interned object policy;
        the bounded batch cache is O(1) by construction and not counted."""
        return 4 * len(self._core)

    # Debug/differential helpers (never on the hot path) -----------------
    def path_of(self, vid: int) -> tuple[int, ...]:
        return tuple(self._core.path_of(vid))


def _resolve_explicit(choice: str):
    """Resolve an *explicit* ``backend=`` argument against the loader."""
    import os

    from . import _cbuild

    if choice == "c":
        module = _cbuild.compiled_module()
        if module is None:
            # compiled_module only raises when the env demands "c"; an
            # explicit backend="c" argument must be just as strict.
            raise RuntimeError(
                f"backend='c' requested but the compiled TJ-SP kernel is "
                f"unavailable: {_cbuild.build_error()}"
            )
        return module
    if os.environ.get(_cbuild.BACKEND_ENV, "").strip().lower() == "py":
        # backend="auto" given explicitly still honours a hard py pin.
        return None
    return _cbuild.compiled_module()


register_policy(TJSpawnPathsFlat.name, TJSpawnPathsFlat)
