"""The verifier-facing policy interface (Section 5.1).

Algorithm 1 separates the fork/join bookkeeping from the underlying data
structure through two procedures, ``AddChild`` and ``Less``.  We generalise
``Less`` to ``permits`` so Known Joins implementations (whose permission
relation is knowledge, not an order) fit the same interface, and add an
``on_join`` hook for KJ-learn (a no-op for every TJ algorithm — the paper
highlights exactly this simplification in Section 7.2).

Concurrency contract (Section 5.1, requirements/guarantees 1–4):

* ``add_child`` returns a fresh handle on every call;
* ``add_child`` and ``permits`` may be called concurrently, *except* that
  no two ``add_child`` calls share a parent (a task forks sequentially);
* every handle passed to ``permits``/``on_join`` came from ``add_child``.

The TJ implementations honour the contract without locks, exactly as the
paper argues for Algorithm 2.
"""

from __future__ import annotations

import itertools
from abc import ABC, abstractmethod
from typing import Callable, Optional

__all__ = [
    "JoinPolicy",
    "NullPolicy",
    "POLICY_REGISTRY",
    "register_policy",
    "make_policy",
    "evict_chunk",
]


def evict_chunk(cache: dict, capacity: int) -> int:
    """Drop the oldest eighth of a bounded verdict cache; returns the count.

    One-at-a-time FIFO eviction thrashes as soon as the working set
    exceeds capacity (every insert pays an eviction forever); evicting
    in chunks amortises that to one sweep per eighth.  Insertion order
    is the eviction order (Python dicts preserve it).  A racy resize is
    resolved by clearing — policy verdict caches only ever hold
    deterministic, immutable verdicts, so losing the contents is benign.
    """
    chunk = max(1, capacity >> 3)
    try:
        for key in list(itertools.islice(iter(cache), chunk)):
            del cache[key]
    except (KeyError, RuntimeError):  # lost an eviction race; start fresh
        chunk = len(cache)
        cache.clear()
    return chunk


class JoinPolicy(ABC):
    """A pluggable online deadlock-avoidance policy.

    Handles are opaque to callers; each implementation defines its own
    vertex record type.
    """

    #: short identifier used in reports ("TJ-SP", "KJ-VC", ...)
    name: str = "abstract"

    #: which kernel answers ``permits`` for this instance: ``"py"`` for
    #: pure Python (everything except the flat TJ-SP core, which may
    #: resolve to ``"c"`` — see :mod:`repro.core._cbuild`).  Stamped onto
    #: verifier latency histograms and benchmark measurements so
    #: compiled and fallback timings are never conflated.
    backend: str = "py"

    #: True when the permission relation is fixed at fork time (all TJ
    #: algorithms: ``<_T`` never changes once both vertices exist).  KJ
    #: policies learn at joins, so their ``permits`` can flip False→True
    #: over time and must stay False here.  Batch verification in the
    #: runtimes pre-checks whole groups of joins only for stable
    #: policies — for a learning policy an early check could flag a join
    #: that a later sequential check would have permitted.
    stable_permits: bool = False

    @abstractmethod
    def add_child(self, parent: Optional[object]) -> object:
        """Install and return a new vertex; ``parent=None`` creates the root."""

    @abstractmethod
    def permits(self, joiner: object, joinee: object) -> bool:
        """May the task at *joiner* block on the task at *joinee*?"""

    def permits_many(self, joiner: object, joinees: list) -> list[bool]:
        """Vectorised ``permits`` for one joiner against many joinees.

        The default just loops; implementations may override to amortise
        per-call overhead (see :class:`~repro.core.tj_sp.TJSpawnPaths`).
        """
        permits = self.permits
        return [permits(joiner, joinee) for joinee in joinees]

    def on_join(self, joiner: object, joinee: object) -> None:
        """State update after a join completes (KJ-learn); default no-op."""

    def space_units(self) -> int:
        """Approximate live storage in atomic slots (pointers/ints).

        Used by the Table 1 empirical-complexity experiment; implementations
        override with an exact count of what they retain per task.
        """
        return 0


class NullPolicy(JoinPolicy):
    """The unchecked baseline: every join is permitted, nothing is stored.

    This is the "no policy enabled" configuration of Section 6.2 against
    which overhead factors are computed.  ``add_child`` still hands out
    distinct handles so instrumented runtimes need no special casing.
    """

    name = "none"
    stable_permits = True

    def __init__(self) -> None:
        self._count = 0

    def add_child(self, parent: Optional[object]) -> object:
        self._count += 1
        return self._count

    def permits(self, joiner: object, joinee: object) -> bool:
        return True

    def space_units(self) -> int:
        return 0


POLICY_REGISTRY: dict[str, Callable[[], JoinPolicy]] = {}


def register_policy(
    name: str, factory: Callable[[], JoinPolicy], *, override: bool = False
) -> None:
    """Register a policy factory under *name* (e.g. for the CLI).

    Re-registering an existing name with a *different* factory raises
    :class:`ValueError` unless ``override=True`` — a silent clobber
    would make every later ``make_policy(name)`` hand out the wrong
    implementation.  Re-registering the identical factory object is an
    idempotent no-op (module re-imports stay safe).
    """
    existing = POLICY_REGISTRY.get(name)
    if existing is not None and existing is not factory and not override:
        raise ValueError(
            f"policy {name!r} is already registered to {existing!r}; "
            "pass override=True to replace it"
        )
    POLICY_REGISTRY[name] = factory


def make_policy(name: str) -> JoinPolicy:
    """Instantiate a registered policy by name.

    Known names after importing :mod:`repro`: ``none``, ``TJ-GT``,
    ``TJ-JP``, ``TJ-SP``, ``TJ-OM``, ``KJ-VC``, ``KJ-SS``.
    """
    try:
        factory = POLICY_REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(POLICY_REGISTRY))
        raise KeyError(f"unknown policy {name!r}; known: {known}") from None
    return factory()


register_policy(NullPolicy.name, NullPolicy)
