"""TJ-JP: jump pointers / binary lifting (Section 5.2.2).

Each vertex stores pointers to its 2^i-th ancestors.  A fork at depth
``d`` sets up O(log d) pointers; ``Less`` lifts the deeper vertex to equal
depth and then binary-searches for the meeting point, giving O(log h) per
join.  Space is O(n log h) — the trade the paper declines to evaluate
because its benchmark fork trees are shallow (≤ 8); our ablation benchmark
(``benchmarks/bench_ablation_lca.py``) exercises the deep-tree regime
where TJ-JP pays off.
"""

from __future__ import annotations

from typing import Optional

from .policy import JoinPolicy, register_policy

__all__ = ["JPNode", "TJJumpPointers"]


class JPNode:
    """A vertex carrying binary-lifting jump pointers.

    ``up[k]`` is the 2^k-th ancestor; ``up`` is empty for the root.  ``ix``
    is the child index among siblings, used for the sibling comparison at
    the divergence point.
    """

    __slots__ = ("up", "ix", "depth", "children")

    def __init__(self) -> None:
        self.up: list["JPNode"] = []
        self.ix: Optional[int] = None
        self.depth = 0
        self.children = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"JPNode(depth={self.depth}, ix={self.ix})"


class TJJumpPointers(JoinPolicy):
    """Transitive Joins verified with a binary-lifting ancestor index."""

    name = "TJ-JP"
    stable_permits = True  # <_T is fixed at fork time

    def __init__(self) -> None:
        self._n_nodes = 0
        self._jump_slots = 0

    def add_child(self, parent: Optional[JPNode]) -> JPNode:
        v = JPNode()
        self._n_nodes += 1
        if parent is None:
            return v
        v.depth = parent.depth + 1
        v.ix = parent.children
        parent.children += 1
        # up[0] = parent; up[k] = up[k-1].up[k-1] while it exists.
        v.up.append(parent)
        k = 0
        while len(v.up[k].up) > k:
            v.up.append(v.up[k].up[k])
            k += 1
        self._jump_slots += len(v.up)
        return v

    @staticmethod
    def _lift(v: JPNode, steps: int) -> JPNode:
        """The ancestor of *v* exactly *steps* levels up."""
        k = 0
        while steps:
            if steps & 1:
                v = v.up[k]
            steps >>= 1
            k += 1
        return v

    def permits(self, joiner: JPNode, joinee: JPNode) -> bool:
        return self._less(joiner, joinee)

    def _less(self, v1: JPNode, v2: JPNode) -> bool:
        """Decide ``v1 <_T v2`` in O(log h)."""
        if v1 is v2:
            return False
        if v1.depth < v2.depth:
            w = self._lift(v2, v2.depth - v1.depth)
            if w is v1:
                return True  # anc+ case
            v2 = w
        elif v1.depth > v2.depth:
            w = self._lift(v1, v1.depth - v2.depth)
            if w is v2:
                return False  # dec* case
            v1 = w
        # Equal depth, different vertices: binary-lift both just below the
        # LCA, then compare sibling indices.
        for k in range(len(v1.up) - 1, -1, -1):
            if k < len(v1.up) and v1.up[k] is not v2.up[k]:
                v1 = v1.up[k]
                v2 = v2.up[k]
        assert v1.ix is not None and v2.ix is not None
        return v1.ix > v2.ix

    def space_units(self) -> int:
        return 3 * self._n_nodes + self._jump_slots


register_policy(TJJumpPointers.name, TJJumpPointers)
