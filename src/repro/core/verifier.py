"""The verifier interface of Algorithm 1.

``Verifier`` wraps any :class:`~repro.core.policy.JoinPolicy` and exposes
the fork/join protocol the runtimes drive:

* :meth:`on_fork` — install a vertex for a new task (``AddChild``);
* :meth:`check_join` / :meth:`require_join` — the ``Less`` gate of
  ``Join``; ``require_join`` faults with :class:`PolicyViolationError`
  exactly where Algorithm 1 says ``fault``;
* :meth:`on_join_completed` — post-wait state update (KJ-learn; no-op for
  TJ policies).

It also counts events, which the evaluation harness and the precision
ablation read off.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass
from typing import Optional

from .policy import JoinPolicy
from ..errors import PolicyViolationError

__all__ = ["Verifier", "VerifierStats"]


@dataclass
class VerifierStats:
    """Event counters accumulated by a :class:`Verifier`."""

    forks: int = 0
    joins_checked: int = 0
    joins_rejected: int = 0

    @property
    def joins_permitted(self) -> int:
        return self.joins_checked - self.joins_rejected

    @property
    def rejection_rate(self) -> float:
        return self.joins_rejected / self.joins_checked if self.joins_checked else 0.0


class Verifier:
    """Online policy verifier (Algorithm 1) around a pluggable policy."""

    def __init__(self, policy: JoinPolicy) -> None:
        self.policy = policy
        self.stats = VerifierStats()
        # Counter updates race benignly across tasks; a tiny lock keeps the
        # statistics exact without serialising the policy itself.
        self._stats_lock = threading.Lock()

    @property
    def name(self) -> str:
        return self.policy.name

    # ------------------------------------------------------------------
    def on_init(self) -> object:
        """Create the root vertex (``Fork(null, f)`` in Algorithm 1)."""
        with self._stats_lock:
            self.stats.forks += 1
        return self.policy.add_child(None)

    def on_fork(self, parent: object) -> object:
        """Create a vertex for a task forked by the task at *parent*."""
        with self._stats_lock:
            self.stats.forks += 1
        return self.policy.add_child(parent)

    # ------------------------------------------------------------------
    def check_join(self, joiner: object, joinee: object) -> bool:
        """Is the join permitted?  Records the verdict in the stats."""
        ok = self.policy.permits(joiner, joinee)
        with self._stats_lock:
            self.stats.joins_checked += 1
            if not ok:
                self.stats.joins_rejected += 1
        return ok

    def require_join(self, joiner: object, joinee: object) -> None:
        """Fault (raise) unless the join is permitted — Algorithm 1 line 13."""
        if not self.check_join(joiner, joinee):
            raise PolicyViolationError(self.policy.name, joiner, joinee)

    def on_join_completed(self, joiner: object, joinee: object) -> None:
        """Propagate post-join knowledge (KJ-learn); no-op under TJ."""
        self.policy.on_join(joiner, joinee)
