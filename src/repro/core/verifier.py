"""The verifier interface of Algorithm 1.

``Verifier`` wraps any :class:`~repro.core.policy.JoinPolicy` and exposes
the fork/join protocol the runtimes drive:

* :meth:`on_fork` — install a vertex for a new task (``AddChild``);
* :meth:`check_join` / :meth:`require_join` — the ``Less`` gate of
  ``Join``; ``require_join`` faults with :class:`PolicyViolationError`
  exactly where Algorithm 1 says ``fault``;
* :meth:`check_joins` / :meth:`require_joins` — batch forms that verify
  one joiner against many joinees in a single call, amortising the
  per-event overhead (used by ``finish`` drains and the runtimes'
  ``join_batch``);
* :meth:`on_join_completed` — post-wait state update (KJ-learn; no-op for
  TJ policies).

It also counts events, which the evaluation harness and the precision
ablation read off.  The counters are *sharded per thread*: each thread
owns a private cell it increments without any lock (the cell is
single-writer, so the counts stay exact), and the public :attr:`stats`
property aggregates all cells lazily into a :class:`VerifierStats`
snapshot on read.  The seed implementation took a global
``threading.Lock`` around every event — measurable overhead on the hot
path that bought nothing, since reads are rare and writes never contend
within a cell.  The sharding itself now lives in
:class:`repro.obs.metrics.CounterGroup` (dead-thread cells fold into a
retired accumulator there, exactly as before), so the verifier, the
runtimes, and the telemetry registry share one stats mechanism; when a
:class:`repro.obs.Telemetry` session is active at construction time the
verifier additionally registers its counters as a registry source and
records per-policy join-check latency histograms.

Policy quarantine (graceful degradation)
----------------------------------------
A policy verdict and a policy *bug* are different failures.
:class:`PolicyViolationError` is the former — Algorithm 1's ``fault``,
raised by the verifier itself from a False verdict.  Any other exception
escaping a policy call is the latter: the policy implementation broke.
Every policy call here sits behind a fault boundary whose behaviour is
chosen by ``fail_mode``:

* ``"raise"`` (default) — propagate the policy's exception unchanged,
  exactly like the seed.  Fault-injection harnesses rely on this.
* ``"open"`` — *quarantine* the policy: record a
  :class:`PolicyQuarantinedError` (with the original traceback), emit a
  :class:`PolicyQuarantineWarning`, and degrade: every later policy call
  is answered without consulting the policy (joins permitted, forks get
  placeholder vertices).  Soundness then rests on the Armus fallback —
  :class:`~repro.armus.hybrid.HybridVerifier` notices ``quarantined``
  and force-checks *every* blocking join against the wait-for graph, so
  true deadlocks are still caught (detection precision, avoidance lost).
* ``"closed"`` — quarantine, then raise the stored
  :class:`PolicyQuarantinedError` on the faulting call and
  deterministically on every policy-facing call thereafter.

Quarantine trips on the first internal error and is permanent for the
verifier's lifetime; ``stats.policy_faults`` counts the internal errors
observed (>1 only when threads fault concurrently).
"""

from __future__ import annotations

import threading
import traceback
import warnings
from dataclasses import asdict, dataclass
from time import perf_counter_ns
from typing import Optional, Sequence

from .policy import JoinPolicy
from ..errors import PolicyQuarantinedError, PolicyQuarantineWarning, PolicyViolationError
from ..obs import active as _active_telemetry
from ..obs.metrics import CounterGroup

__all__ = ["Verifier", "VerifierStats", "FAIL_MODES"]

#: accepted values for ``Verifier(fail_mode=...)``
FAIL_MODES = ("raise", "open", "closed")


@dataclass
class VerifierStats:
    """A point-in-time snapshot of the event counters of a :class:`Verifier`."""

    forks: int = 0
    joins_checked: int = 0
    joins_rejected: int = 0
    policy_faults: int = 0

    @property
    def joins_permitted(self) -> int:
        return self.joins_checked - self.joins_rejected

    @property
    def rejection_rate(self) -> float:
        return self.joins_rejected / self.joins_checked if self.joins_checked else 0.0

    def snapshot(self) -> dict:
        """The uniform stats-source protocol: a flat field dict."""
        return asdict(self)


#: the counter fields every verifier shards per thread
_EVENT_FIELDS = ("forks", "joins_checked", "joins_rejected", "policy_faults")


class _FallbackVertex:
    """Placeholder vertex handed out while the policy is quarantined.

    Carries no policy state — under degradation the policy never sees it.
    It only needs identity (the journal and runtimes key vertices by
    ``id``) and a parent link for debugging.
    """

    __slots__ = ("parent",)

    def __init__(self, parent: object = None) -> None:
        self.parent = parent

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<fallback-vertex at {id(self):#x}>"


class Verifier:
    """Online policy verifier (Algorithm 1) around a pluggable policy.

    Parameters
    ----------
    policy:
        The join policy to consult.
    fail_mode:
        What to do when the policy raises an *internal* error (anything
        but :class:`PolicyViolationError`): ``"raise"`` propagates it
        (seed behaviour), ``"open"`` quarantines and degrades to
        permit-everything (Armus takes over soundness), ``"closed"``
        quarantines and fails every subsequent call deterministically.
    journal:
        Optional :class:`~repro.tools.journal.TraceJournal`; when set,
        init/fork/verdict/quarantine events are written through as they
        happen.
    """

    def __init__(
        self,
        policy: JoinPolicy,
        *,
        fail_mode: str = "raise",
        journal: "object | None" = None,
    ) -> None:
        if fail_mode not in FAIL_MODES:
            raise ValueError(f"fail_mode must be one of {FAIL_MODES}, got {fail_mode!r}")
        self.policy = policy
        self.fail_mode = fail_mode
        self.journal = journal
        self._quarantine: Optional[PolicyQuarantinedError] = None
        self._quarantine_lock = threading.Lock()
        # Sharded statistics: one cell per thread, registered once under
        # a lock, then incremented lock-free (single-writer per cell).
        # Cells of dead threads are folded into a retired accumulator (a
        # thread's writes all happen-before its death, so the fold is
        # exact) — without the fold, thread-per-task runtimes would leak
        # one cell per task forever.  The mechanism is the registry's
        # CounterGroup, so telemetry and `stats` read the same counters.
        self._events = CounterGroup(_EVENT_FIELDS)
        self._shard = self._events.cell  # bound method: the hot-path handle
        obs = _active_telemetry()
        self._obs = obs
        if obs is not None:
            obs.registry.add_source("verifier", self._events.totals)
            self._check_hist = obs.registry.histogram(
                "repro_verifier_join_check_ns",
                labels={
                    "policy": policy.name,
                    # compiled vs pure-Python kernel (flat TJ-SP resolves
                    # this at construction; everything else is "py"), so
                    # `top` and Prometheus export never conflate the two
                    "backend": getattr(policy, "backend", "py"),
                },
            )
        else:
            self._check_hist = None

    @property
    def name(self) -> str:
        return self.policy.name

    # ------------------------------------------------------------------
    # sharded statistics
    # ------------------------------------------------------------------
    @property
    def _shards(self) -> list:
        """The live per-thread counter cells (bounded by live threads)."""
        return self._events._cells

    @property
    def stats(self) -> VerifierStats:
        """Aggregate retired counts and every live cell into one exact
        snapshot.

        Threads die, their counts do not: a dead thread's cell is folded
        into the retired accumulator (on snapshot and at cell
        registration), so the sum is exactly the number of events ever
        recorded while the cell list stays bounded by live threads.
        """
        return VerifierStats(**self._events.totals())

    # ------------------------------------------------------------------
    # the quarantine fault boundary
    # ------------------------------------------------------------------
    @property
    def quarantined(self) -> bool:
        """True once the policy has been taken out of service."""
        return self._quarantine is not None

    @property
    def quarantine_error(self) -> Optional[PolicyQuarantinedError]:
        """The stored quarantine diagnosis, or None while healthy."""
        return self._quarantine

    @property
    def unsound(self) -> bool:
        """True while the policy's soundness theorem cannot be relied on.

        For a local verifier this is exactly :attr:`quarantined`;
        subclasses with other ways of losing the policy (the
        :class:`~repro.service.client.RemoteVerifier` while degraded)
        widen it.  :class:`~repro.armus.hybrid.HybridVerifier` and the
        supervision layer consult this — not ``quarantined`` — to decide
        when every blocking join must face the precise cycle check.
        """
        return self._quarantine is not None

    def _degraded(self) -> bool:
        """Entry guard for every policy-facing call.

        Returns True when the caller must use degraded (policy-free)
        behaviour; raises under ``fail_mode="closed"``.
        """
        q = self._quarantine
        if q is None:
            return False
        if self.fail_mode == "closed":
            raise q
        return True

    def _policy_fault(self, site: str, exc: BaseException) -> "PolicyQuarantinedError | None":
        """Handle an internal policy error according to ``fail_mode``.

        Returns None when the caller should re-raise the original
        exception (``fail_mode="raise"``); otherwise quarantines (first
        fault wins, later faults reuse the stored diagnosis) and returns
        the error — the caller raises it under ``"closed"`` and swallows
        it under ``"open"``.
        """
        if self.fail_mode == "raise":
            return None
        self._shard().policy_faults += 1
        obs = self._obs
        if obs is not None:
            obs.quarantines.inc()
            if obs.tracer is not None:
                obs.tracer.instant(
                    "quarantine",
                    cat="verifier",
                    args={"policy": self.policy.name, "site": site},
                )
        with self._quarantine_lock:
            q = self._quarantine
            if q is None:
                q = PolicyQuarantinedError(
                    self.policy.name, site, original=traceback.format_exc()
                )
                q.__cause__ = exc
                self._quarantine = q
                if self.journal is not None:
                    self.journal.log_quarantine(self.policy.name, site, repr(exc))
        if q.__cause__ is exc:  # warn only for the fault that tripped it
            warnings.warn(
                f"policy {self.policy.name!r} quarantined after {site}() raised "
                f"{exc!r}; degrading to {'closed failure' if self.fail_mode == 'closed' else 'Armus-only checking'}",
                PolicyQuarantineWarning,
                stacklevel=3,
            )
        if self.fail_mode == "closed":
            raise q
        return q

    # ------------------------------------------------------------------
    def on_init(self) -> object:
        """Create the root vertex (``Fork(null, f)`` in Algorithm 1)."""
        self._shard().forks += 1
        if self._degraded():
            vertex = _FallbackVertex()
        else:
            try:
                vertex = self.policy.add_child(None)
            except Exception as exc:
                if self._policy_fault("add_child", exc) is None:
                    raise
                vertex = _FallbackVertex()
        if self.journal is not None:
            self.journal.log_init(vertex)
        return vertex

    def on_fork(self, parent: object) -> object:
        """Create a vertex for a task forked by the task at *parent*."""
        self._shard().forks += 1
        if self._degraded():
            vertex = _FallbackVertex(parent)
        else:
            try:
                vertex = self.policy.add_child(parent)
            except Exception as exc:
                if self._policy_fault("add_child", exc) is None:
                    raise
                vertex = _FallbackVertex(parent)
        if self.journal is not None:
            self.journal.log_fork(parent, vertex)
        return vertex

    # ------------------------------------------------------------------
    def check_join(self, joiner: object, joinee: object) -> bool:
        """Is the join permitted?  Records the verdict in the stats."""
        hist = self._check_hist
        if hist is not None:
            t0 = perf_counter_ns()
        if self._degraded():
            ok = True
        else:
            try:
                ok = self.policy.permits(joiner, joinee)
            except PolicyViolationError:
                raise
            except Exception as exc:
                if self._policy_fault("permits", exc) is None:
                    raise
                ok = True
        shard = self._shard()
        shard.joins_checked += 1
        if not ok:
            shard.joins_rejected += 1
        if hist is not None:
            hist.observe(perf_counter_ns() - t0)
        if self.journal is not None:
            self.journal.log_verdict(joiner, joinee, ok)
        return ok

    def check_joins(self, joiner: object, joinees: Sequence[object]) -> list[bool]:
        """Batch ``check_join``: one joiner against many joinees.

        One shard update covers the whole batch, and the policy's
        ``permits_many`` gets the chance to amortise its own per-call
        overhead.  Verdicts are returned in joinee order.
        """
        joinees = list(joinees)
        hist = self._check_hist
        if hist is not None:
            t0 = perf_counter_ns()
        if self._degraded():
            verdicts = [True] * len(joinees)
        else:
            try:
                verdicts = self.policy.permits_many(joiner, joinees)
            except PolicyViolationError:
                raise
            except Exception as exc:
                if self._policy_fault("permits", exc) is None:
                    raise
                verdicts = [True] * len(joinees)
        shard = self._shard()
        shard.joins_checked += len(verdicts)
        shard.joins_rejected += verdicts.count(False)
        if hist is not None:
            hist.observe(perf_counter_ns() - t0)
        if self.journal is not None:
            for joinee, ok in zip(joinees, verdicts):
                self.journal.log_verdict(joiner, joinee, ok)
        return verdicts

    def require_join(self, joiner: object, joinee: object) -> None:
        """Fault (raise) unless the join is permitted — Algorithm 1 line 13."""
        if not self.check_join(joiner, joinee):
            raise PolicyViolationError(self.policy.name, joiner, joinee)

    def require_joins(self, joiner: object, joinees: Sequence[object]) -> None:
        """Batch ``require_join``; faults on the first rejected joinee."""
        joinees = list(joinees)
        for joinee, ok in zip(joinees, self.check_joins(joiner, joinees)):
            if not ok:
                raise PolicyViolationError(self.policy.name, joiner, joinee)

    def on_join_completed(self, joiner: object, joinee: object) -> None:
        """Propagate post-join knowledge (KJ-learn); no-op under TJ."""
        if self._degraded():
            return
        try:
            self.policy.on_join(joiner, joinee)
        except Exception as exc:
            if self._policy_fault("on_join", exc) is None:
                raise
