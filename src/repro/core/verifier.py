"""The verifier interface of Algorithm 1.

``Verifier`` wraps any :class:`~repro.core.policy.JoinPolicy` and exposes
the fork/join protocol the runtimes drive:

* :meth:`on_fork` — install a vertex for a new task (``AddChild``);
* :meth:`check_join` / :meth:`require_join` — the ``Less`` gate of
  ``Join``; ``require_join`` faults with :class:`PolicyViolationError`
  exactly where Algorithm 1 says ``fault``;
* :meth:`check_joins` / :meth:`require_joins` — batch forms that verify
  one joiner against many joinees in a single call, amortising the
  per-event overhead (used by ``finish`` drains and the runtimes'
  ``join_batch``);
* :meth:`on_join_completed` — post-wait state update (KJ-learn; no-op for
  TJ policies).

It also counts events, which the evaluation harness and the precision
ablation read off.  The counters are *sharded per thread*: each thread
owns a private :class:`_StatsShard` it increments without any lock (the
shard is single-writer, so the counts stay exact), and the public
:attr:`stats` property aggregates all shards lazily into a
:class:`VerifierStats` snapshot on read.  The seed implementation took a
global ``threading.Lock`` around every event — measurable overhead on
the hot path that bought nothing, since reads are rare and writes never
contend within a shard.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Sequence

from .policy import JoinPolicy
from ..errors import PolicyViolationError

__all__ = ["Verifier", "VerifierStats"]


@dataclass
class VerifierStats:
    """A point-in-time snapshot of the event counters of a :class:`Verifier`."""

    forks: int = 0
    joins_checked: int = 0
    joins_rejected: int = 0

    @property
    def joins_permitted(self) -> int:
        return self.joins_checked - self.joins_rejected

    @property
    def rejection_rate(self) -> float:
        return self.joins_rejected / self.joins_checked if self.joins_checked else 0.0


class _StatsShard:
    """One thread's private counters; written lock-free by its owner."""

    __slots__ = ("forks", "joins_checked", "joins_rejected", "owner")

    def __init__(self, owner: "threading.Thread | None" = None) -> None:
        self.forks = 0
        self.joins_checked = 0
        self.joins_rejected = 0
        #: the owning thread, or None for the retired-counts accumulator
        self.owner = owner


class Verifier:
    """Online policy verifier (Algorithm 1) around a pluggable policy."""

    def __init__(self, policy: JoinPolicy) -> None:
        self.policy = policy
        # Sharded statistics: one shard per thread, registered once under
        # a lock, then incremented lock-free (single-writer per shard).
        # Shards of dead threads are folded into `_retired` (a thread's
        # writes all happen-before its death, so the fold is exact) —
        # without the fold, thread-per-task runtimes would leak one shard
        # per task forever.
        self._shards: list[_StatsShard] = []
        self._retired = _StatsShard()
        self._shards_lock = threading.Lock()
        self._local = threading.local()

    @property
    def name(self) -> str:
        return self.policy.name

    # ------------------------------------------------------------------
    # sharded statistics
    # ------------------------------------------------------------------
    def _fold_dead_shards(self) -> None:
        """Fold dead threads' shards into the retired counters.

        Caller holds ``_shards_lock``.  A dead thread can never write
        its shard again, so moving the counts is race-free and exact.
        """
        live: list[_StatsShard] = []
        retired = self._retired
        for shard in self._shards:
            if shard.owner is not None and shard.owner.is_alive():
                live.append(shard)
            else:
                retired.forks += shard.forks
                retired.joins_checked += shard.joins_checked
                retired.joins_rejected += shard.joins_rejected
        self._shards = live

    def _shard(self) -> _StatsShard:
        shard = getattr(self._local, "shard", None)
        if shard is None:
            shard = _StatsShard(threading.current_thread())
            with self._shards_lock:
                self._fold_dead_shards()
                self._shards.append(shard)
            self._local.shard = shard
        return shard

    @property
    def stats(self) -> VerifierStats:
        """Aggregate retired counts and every live shard into one exact
        snapshot.

        Threads die, their counts do not: a dead thread's shard is
        folded into the retired accumulator (here and at shard
        registration), so the sum is exactly the number of events ever
        recorded while the shard list stays bounded by live threads.
        """
        with self._shards_lock:
            self._fold_dead_shards()
            shards = list(self._shards)
            retired = self._retired
            snap = VerifierStats(
                forks=retired.forks,
                joins_checked=retired.joins_checked,
                joins_rejected=retired.joins_rejected,
            )
        for s in shards:
            snap.forks += s.forks
            snap.joins_checked += s.joins_checked
            snap.joins_rejected += s.joins_rejected
        return snap

    # ------------------------------------------------------------------
    def on_init(self) -> object:
        """Create the root vertex (``Fork(null, f)`` in Algorithm 1)."""
        self._shard().forks += 1
        return self.policy.add_child(None)

    def on_fork(self, parent: object) -> object:
        """Create a vertex for a task forked by the task at *parent*."""
        self._shard().forks += 1
        return self.policy.add_child(parent)

    # ------------------------------------------------------------------
    def check_join(self, joiner: object, joinee: object) -> bool:
        """Is the join permitted?  Records the verdict in the stats."""
        ok = self.policy.permits(joiner, joinee)
        shard = self._shard()
        shard.joins_checked += 1
        if not ok:
            shard.joins_rejected += 1
        return ok

    def check_joins(self, joiner: object, joinees: Sequence[object]) -> list[bool]:
        """Batch ``check_join``: one joiner against many joinees.

        One shard update covers the whole batch, and the policy's
        ``permits_many`` gets the chance to amortise its own per-call
        overhead.  Verdicts are returned in joinee order.
        """
        verdicts = self.policy.permits_many(joiner, list(joinees))
        shard = self._shard()
        shard.joins_checked += len(verdicts)
        shard.joins_rejected += verdicts.count(False)
        return verdicts

    def require_join(self, joiner: object, joinee: object) -> None:
        """Fault (raise) unless the join is permitted — Algorithm 1 line 13."""
        if not self.check_join(joiner, joinee):
            raise PolicyViolationError(self.policy.name, joiner, joinee)

    def require_joins(self, joiner: object, joinees: Sequence[object]) -> None:
        """Batch ``require_join``; faults on the first rejected joinee."""
        joinees = list(joinees)
        for joinee, ok in zip(joinees, self.check_joins(joiner, joinees)):
            if not ok:
                raise PolicyViolationError(self.policy.name, joiner, joinee)

    def on_join_completed(self, joiner: object, joinee: object) -> None:
        """Propagate post-join knowledge (KJ-learn); no-op under TJ."""
        self.policy.on_join(joiner, joinee)
