"""On-demand build of the compiled TJ-SP kernel (`_tj_sp_c.c`).

The repository has no binary artifacts and no build-time dependency on
Cython or mypyc: the compiled backend is a plain CPython extension
compiled *lazily*, the first time a caller asks for it, with whatever C
compiler the host provides (``cc``/``gcc``/``clang`` or the compiler
recorded in ``sysconfig``).  The resulting shared object is cached next
to the package (or under ``~/.cache/repro`` when the package directory
is read-only), keyed by a hash of the C source and the interpreter ABI,
so rebuilds happen only when the source changes.

Backend selection is governed by the ``REPRO_TJ_BACKEND`` environment
variable, read on every query so tests can monkeypatch it:

* ``auto`` (default, also when unset) — try the compiled kernel, fall
  back silently to pure Python when the toolchain is missing or the
  build fails;
* ``c`` — require the compiled kernel; raise with the build diagnostic
  when it cannot be produced (CI uses this to make sure the compiled
  arm really measured compiled code);
* ``py`` — never load compiled code, even when a cached build exists
  (CI uses this to gate the portable fallback on its own).

Everything that has a compiled fast path — the flat TJ-SP policy and
the Armus waits-for DFS — funnels through :func:`compiled_module`, so
one switch disables all of it.
"""

from __future__ import annotations

import hashlib
import importlib.util
import os
import shlex
import shutil
import subprocess
import sys
import sysconfig
import threading
from typing import Optional

__all__ = ["backend_choice", "compiled_module", "build_error", "BACKEND_ENV"]

#: the environment variable that selects the backend
BACKEND_ENV = "REPRO_TJ_BACKEND"

_CHOICES = ("auto", "c", "py")

_SOURCE = os.path.join(os.path.dirname(os.path.abspath(__file__)), "_tj_sp_c.c")

_lock = threading.Lock()
_attempted = False
_module = None
_error: Optional[str] = None


def backend_choice() -> str:
    """The requested backend: ``auto``, ``c`` or ``py`` (from the env)."""
    value = os.environ.get(BACKEND_ENV, "auto").strip().lower() or "auto"
    if value not in _CHOICES:
        raise ValueError(
            f"{BACKEND_ENV} must be one of {_CHOICES}, got {value!r}"
        )
    return value


def build_error() -> Optional[str]:
    """The diagnostic of the last failed build attempt, or None."""
    return _error


def _find_compiler() -> Optional[list[str]]:
    cc = sysconfig.get_config_var("CC")
    if cc:
        parts = shlex.split(cc)
        if parts and shutil.which(parts[0]):
            return parts
    for name in ("cc", "gcc", "clang"):
        path = shutil.which(name)
        if path:
            return [path]
    return None


def _build_tag() -> str:
    with open(_SOURCE, "rb") as fh:
        digest = hashlib.sha256(fh.read())
    digest.update(sys.version.encode())
    digest.update(sys.platform.encode())
    return digest.hexdigest()[:16]


def _build_dirs() -> list[str]:
    here = os.path.dirname(_SOURCE)
    return [
        os.path.join(here, "_build"),
        os.path.join(
            os.environ.get("XDG_CACHE_HOME")
            or os.path.join(os.path.expanduser("~"), ".cache"),
            "repro",
            "cbuild",
        ),
    ]


def _compile() -> str:
    """Compile the kernel (if not cached) and return the .so path."""
    compiler = _find_compiler()
    if compiler is None:
        raise RuntimeError("no C compiler found (tried sysconfig CC, cc, gcc, clang)")
    suffix = sysconfig.get_config_var("EXT_SUFFIX") or ".so"
    name = f"_tj_sp_c_{_build_tag()}{suffix}"
    last_exc: Optional[Exception] = None
    for build_dir in _build_dirs():
        target = os.path.join(build_dir, name)
        if os.path.exists(target):
            return target
        try:
            os.makedirs(build_dir, exist_ok=True)
            cmd = compiler + [
                "-O2",
                "-fPIC",
                "-shared",
                f"-I{sysconfig.get_paths()['include']}",
                _SOURCE,
                "-o",
                target + ".tmp",
            ]
            if sys.platform == "darwin":
                cmd.insert(-3, "-undefined")
                cmd.insert(-3, "dynamic_lookup")
            proc = subprocess.run(
                cmd, capture_output=True, text=True, timeout=120
            )
            if proc.returncode != 0:
                raise RuntimeError(
                    f"{' '.join(cmd)} failed:\n{proc.stderr.strip()}"
                )
            # Atomic publish so a concurrent builder never loads a torn file.
            os.replace(target + ".tmp", target)
            return target
        except Exception as exc:  # try the next candidate directory
            last_exc = exc
    raise RuntimeError(f"could not build compiled kernel: {last_exc}")


def _load(path: str):
    spec = importlib.util.spec_from_file_location("_tj_sp_c", path)
    if spec is None or spec.loader is None:
        raise ImportError(f"cannot load compiled kernel from {path}")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def compiled_module():
    """The compiled kernel module, or None when running pure Python.

    Respects :func:`backend_choice`: returns None without touching the
    toolchain under ``py``; raises under ``c`` when the kernel cannot be
    built; builds at most once per process under ``auto``/``c`` and
    remembers the outcome.
    """
    global _attempted, _module, _error
    choice = backend_choice()
    if choice == "py":
        return None
    with _lock:
        if not _attempted:
            _attempted = True
            try:
                _module = _load(_compile())
            except Exception as exc:
                _error = str(exc)
        module = _module
    if module is None and choice == "c":
        raise RuntimeError(
            f"{BACKEND_ENV}=c but the compiled TJ-SP kernel is unavailable: {_error}"
        )
    return module
