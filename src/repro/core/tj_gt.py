"""TJ-GT: the shared-global-tree algorithm (Algorithm 2).

Each vertex stores a parent pointer, its child index (``ix``), its depth
and a count of children forked so far.  ``Less`` walks the two root paths
to their meeting point, tracking the child indices it arrives by, and
compares them — O(h) per join, O(1) per fork, O(n) space.

No synchronisation is used: the only mutable shared field is the parent's
``children`` counter, which is written solely by the owning task (the
Section 5.1 contract) and never read by ``Less``.
"""

from __future__ import annotations

from typing import Optional

from .policy import JoinPolicy, register_policy

__all__ = ["GTNode", "TJGlobalTree"]


class GTNode:
    """A vertex of the shared fork tree."""

    __slots__ = ("parent", "ix", "depth", "children")

    def __init__(self, parent: Optional["GTNode"]) -> None:
        self.parent = parent
        self.ix: Optional[int] = None
        self.depth = 0
        self.children = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"GTNode(depth={self.depth}, ix={self.ix})"


class TJGlobalTree(JoinPolicy):
    """Transitive Joins verified over a global tree of parent pointers."""

    name = "TJ-GT"
    stable_permits = True  # <_T is fixed at fork time

    def __init__(self) -> None:
        self._n_nodes = 0

    def add_child(self, parent: Optional[GTNode]) -> GTNode:
        v = GTNode(parent)
        self._n_nodes += 1
        if parent is None:
            return v
        v.depth = parent.depth + 1
        v.ix = parent.children
        parent.children += 1
        return v

    def permits(self, joiner: GTNode, joinee: GTNode) -> bool:
        return self._less(joiner, joinee)

    def _less(self, v1: GTNode, v2: GTNode) -> bool:
        """Algorithm 2's ``Less``: decide ``v1 <_T v2``.

        Note: as printed, the paper's lines 12/15 compare depths in a way
        whose lifting loop cannot run; the prose (lift the deeper vertex to
        the shallower one's depth, then climb in lockstep) pins down the
        intended algorithm, implemented here.
        """
        if v1 is v2:
            return False
        if v1.depth > v2.depth:
            # v1 <T v2  <=>  v1 != v2 and not (v2 <T v1) — trichotomy.
            return not self._less(v2, v1)
        # depth(v1) <= depth(v2): lift v2, then climb in lockstep.
        i1: Optional[int] = None  # child indices we arrive by
        i2: Optional[int] = None
        while v2.depth > v1.depth:
            i2 = v2.ix
            assert v2.parent is not None
            v2 = v2.parent
        while v1 is not v2:
            i1 = v1.ix
            i2 = v2.ix
            assert v1.parent is not None and v2.parent is not None
            v1 = v1.parent
            v2 = v2.parent
        if i1 is None:
            # v1 never moved: it is a proper ancestor of the original v2
            # (anc+ case); i2 is never None here since the originals differ.
            return True
        assert i2 is not None and i1 != i2  # siblings diverge
        return i1 > i2

    def space_units(self) -> int:
        return 4 * self._n_nodes  # parent, ix, depth, children per vertex


register_policy(TJGlobalTree.name, TJGlobalTree)
