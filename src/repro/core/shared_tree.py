"""TJ-SP spawn paths in shared memory: the cross-process flat core.

The flat TJ-SP representation of :mod:`repro.core.tj_sp_flat` is one
parent pointer, one edge index, one depth and one fork counter per task
— a struct-of-arrays that serialises trivially, which is exactly what a
*multi-process* runtime needs: put the arrays in
:mod:`multiprocessing.shared_memory` and every process reads the same
spawn-path forest through plain int64 loads, so a worker's local
verifier shard answers joins without any round trip.

Layout
------
One *control* segment (``{base}-ctl``) holds the immutable geometry —
stripe width, first-segment capacity, process count — plus an advisory
high-water segment index.  Vertex rows live in *data* segments
``{base}-s0, {base}-s1, ...`` whose capacities double (``seg0``,
``2*seg0``, ``4*seg0``...), each laid out as four consecutive int64
arrays ``parent | edge | depth | children``.  Segment ``k`` covers ids
``[(2^k - 1) * seg0, (2^(k+1) - 1) * seg0)``, so a row never moves:
growth creates a *new* segment instead of copying, which is what makes
the whole structure lock-free — there is no reallocation for a
concurrent writer to race.

The generation handshake
------------------------
Readers attach data segments lazily: touching an id beyond the locally
attached generation attaches the next segment(s) by name.  Segment
creation itself is idempotent — whichever process first needs a
generation creates it with ``O_CREAT|O_EXCL`` semantics and everyone
else attaches; an attacher that races the creator's ``ftruncate``
simply retries.  An id is only ever published (handed to another task
or process) *after* its row is fully written, and ids are allocated
below the capacity their generation provides, so a reader that can see
an id can always reach — and trust — its row.

Id allocation (SIGKILL-safe)
----------------------------
Ids are striped per process: process ``p`` of ``nprocs`` owns the
stripes ``[(i*nprocs + p) * stripe, ...)`` for ``i = 0, 1, ...`` and
bump-allocates inside them with no synchronisation at all.  There is
deliberately **no interprocess allocation lock**: a worker SIGKILLed
mid-fork (the chaos suite does exactly this) can therefore never strand
a lock and hang the survivors — it just leaves a partially used stripe
behind, bounded waste of at most ``nprocs * stripe`` rows.

Fork counters follow the policy concurrency contract
(:class:`~repro.core.policy.JoinPolicy`): all forks of one task happen
in the one process executing that task, so ``children[parent]`` is a
single-writer counter and needs no atomicity.

Resource-tracker hygiene: on this Python, *attaching* registers the
segment with the process's resource tracker, so an attached-then-killed
worker would take the whole forest down with it.  Non-owner processes
therefore suppress tracker registration entirely (see
:func:`_no_tracking`); the owner (the parent runtime) keeps its
registrations and unlinks everything in :meth:`close` — and its tracker
still reclaims the segments if the parent itself dies uncleanly.
"""

from __future__ import annotations

import secrets
import threading
import time
from contextlib import contextmanager
from contextlib import nullcontext as _nullcontext
from typing import NamedTuple, Optional, Sequence

from .policy import JoinPolicy

try:  # pragma: no cover - always present on CPython >= 3.8
    from multiprocessing import resource_tracker, shared_memory
except ImportError:  # pragma: no cover - exotic platforms
    shared_memory = None
    resource_tracker = None

__all__ = ["SharedTreeHandle", "SharedFlatTree", "SharedTJPolicy", "shm_available"]

_I64 = 8
#: data segments hold 4 int64 arrays per row: parent | edge | depth | children
_FIELDS = 4
#: control words: [stripe, seg0, nprocs, segment high-water hint]
_CTL_WORDS = 4


def shm_available() -> bool:
    """Can this platform host the shared-memory spawn-path forest?"""
    return shared_memory is not None


class SharedTreeHandle(NamedTuple):
    """The picklable coordinates a worker needs to attach the forest."""

    base: str
    stripe: int
    seg0: int
    nprocs: int


_track_lock = threading.Lock()


@contextmanager
def _no_tracking():
    """Open/create shared memory without resource-tracker registration.

    On this Python, *attaching* a segment registers it with the resource
    tracker, so a worker that merely mapped the forest would destroy it
    when the worker exits — cleanly or by SIGKILL (the chaos suite does
    exactly that).  Register-then-unregister is no fix either: worker
    processes share the parent's tracker, whose name cache is a set, so
    overlapping register/unregister pairs from several processes strand
    or double-remove entries.  Non-owner processes therefore suppress
    registration outright; the owning runtime keeps its registrations
    (crash insurance) and unlinks everything in :meth:`close`.
    """
    if resource_tracker is None:  # pragma: no cover
        yield
        return
    with _track_lock:
        real = resource_tracker.register
        resource_tracker.register = lambda name, rtype: None
        try:
            yield
        finally:
            resource_tracker.register = real


class _Segment:
    """One attached data segment: its shm plus the four array views."""

    __slots__ = ("shm", "parent", "edge", "depth", "children", "start", "cap")

    def __init__(self, shm, start: int, cap: int) -> None:
        self.shm = shm
        self.start = start
        self.cap = cap
        mv = memoryview(shm.buf)
        self.parent = mv[0 : cap * _I64].cast("q")
        self.edge = mv[cap * _I64 : 2 * cap * _I64].cast("q")
        self.depth = mv[2 * cap * _I64 : 3 * cap * _I64].cast("q")
        self.children = mv[3 * cap * _I64 : 4 * cap * _I64].cast("q")

    def release(self) -> None:
        for name in ("parent", "edge", "depth", "children"):
            view = getattr(self, name, None)
            if view is not None:
                view.release()
                setattr(self, name, None)
        self.shm.close()


class SharedFlatTree:
    """The spawn-path forest over shared-memory int64 segments.

    Construct with :meth:`create` in the owning (parent) process and
    :meth:`attach` everywhere else; each process passes its own
    ``region`` index (0..nprocs-1) and allocates ids only from its own
    stripes, so ``add_child`` is lock-free end to end.
    """

    def __init__(
        self,
        handle: SharedTreeHandle,
        region: int,
        *,
        owner: bool,
        ctl_shm,
    ) -> None:
        if not 0 <= region < handle.nprocs:
            raise ValueError(f"region {region} out of range for {handle.nprocs} processes")
        self.handle_tuple = handle
        self.region = region
        self.owner = owner
        self._ctl_shm = ctl_shm
        self._ctl = memoryview(ctl_shm.buf).cast("q")
        self._segs: list[Optional[_Segment]] = []
        # per-process bump allocator over this region's stripes
        self._stripe_no = 0  # stripes this region has finished or opened
        self._next = -1
        self._limit = -1
        self._allocated = 0
        self._closed = False

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        *,
        nprocs: int,
        base: Optional[str] = None,
        stripe: int = 1024,
        seg0: int = 1 << 14,
    ) -> "SharedFlatTree":
        if shared_memory is None:  # pragma: no cover
            raise RuntimeError("multiprocessing.shared_memory unavailable")
        if nprocs < 1:
            raise ValueError("nprocs must be at least 1")
        if stripe < 1 or seg0 < stripe:
            raise ValueError("need stripe >= 1 and seg0 >= stripe")
        if base is None:
            base = f"repro-tj-{secrets.token_hex(6)}"
        handle = SharedTreeHandle(base, stripe, seg0, nprocs)
        ctl = shared_memory.SharedMemory(
            name=f"{base}-ctl", create=True, size=_CTL_WORDS * _I64
        )
        words = memoryview(ctl.buf).cast("q")
        words[0], words[1], words[2], words[3] = stripe, seg0, nprocs, 0
        words.release()
        tree = cls(handle, 0, owner=True, ctl_shm=ctl)
        tree._segment(0)  # eagerly create generation 0
        return tree

    @classmethod
    def attach(cls, handle: SharedTreeHandle, region: int) -> "SharedFlatTree":
        if shared_memory is None:  # pragma: no cover
            raise RuntimeError("multiprocessing.shared_memory unavailable")
        handle = SharedTreeHandle(*handle)
        with _no_tracking():
            ctl = shared_memory.SharedMemory(name=f"{handle.base}-ctl")
        return cls(handle, region, owner=False, ctl_shm=ctl)

    def handle(self) -> SharedTreeHandle:
        return self.handle_tuple

    # ------------------------------------------------------------------
    # segments (the generation handshake)
    # ------------------------------------------------------------------
    def _segment(self, k: int) -> _Segment:
        segs = self._segs
        if k < len(segs):
            seg = segs[k]
            if seg is not None:
                return seg
        else:
            segs.extend([None] * (k + 1 - len(segs)))
        h = self.handle_tuple
        cap = h.seg0 << k
        start = ((1 << k) - 1) * h.seg0
        name = f"{h.base}-s{k}"
        size = _FIELDS * cap * _I64
        shm = None
        created = False
        with _no_tracking() if not self.owner else _nullcontext():
            try:
                shm = shared_memory.SharedMemory(name=name, create=True, size=size)
                created = True
            except FileExistsError:
                # Someone else is the creator; attach, retrying across
                # the tiny window between its O_CREAT and ftruncate.
                for _ in range(2000):
                    try:
                        shm = shared_memory.SharedMemory(name=name)
                        if shm.size >= size:
                            break
                        shm.close()
                        shm = None
                    except (FileNotFoundError, ValueError):
                        pass
                    time.sleep(0.001)
                if shm is None:  # pragma: no cover - 2s of failed attaches
                    raise RuntimeError(f"could not attach shared segment {name}")
        if created and self._ctl[3] < k:  # advisory high-water for unlink sweeps
            self._ctl[3] = k
        seg = _Segment(shm, start, cap)
        segs[k] = seg
        return seg

    def _locate(self, vid: int):
        """(segment, offset) for *vid*, attaching its generation if new."""
        seg0 = self.handle_tuple.seg0
        k = (vid // seg0 + 1).bit_length() - 1
        seg = self._segment(k)
        return seg, vid - seg.start

    # ------------------------------------------------------------------
    # id allocation: striped, per-process, lock-free
    # ------------------------------------------------------------------
    def _refill(self) -> None:
        h = self.handle_tuple
        start = (self._stripe_no * h.nprocs + self.region) * h.stripe
        self._stripe_no += 1
        self._next = start
        self._limit = start + h.stripe
        # Make sure the whole stripe's generation(s) exist before any id
        # from it escapes: ids are published only below known capacity.
        self._locate(self._limit - 1)

    def add_child(self, parent: int) -> int:
        """Append a vertex under *parent* (< 0 creates a root); returns its id.

        Lock-free: the id comes from this process's own stripe, and the
        fork counter bump relies on the policy contract that all forks
        of one task run in one process.
        """
        vid = self._next
        if vid >= self._limit:
            self._refill()
            vid = self._next
        self._next = vid + 1
        self._allocated += 1
        seg, off = self._locate(vid)
        if parent < 0:
            p, e, d = -1, 0, 0
        else:
            pseg, poff = self._locate(parent)
            e = pseg.children[poff]
            pseg.children[poff] = e + 1
            d = pseg.depth[poff] + 1
            p = parent
        seg.edge[off] = e
        seg.depth[off] = d
        seg.children[off] = 0
        # parent is written last: a row whose parent slot is set is fully
        # initialised (roots use -1, so 0 never doubles as a sentinel).
        seg.parent[off] = p
        return vid

    # ------------------------------------------------------------------
    # Algorithm 3 ``Less`` over the shared rows
    # ------------------------------------------------------------------
    def less(self, a: int, b: int) -> bool:
        if a == b:
            return False
        locate = self._locate
        sa, oa = locate(a)
        sb, ob = locate(b)
        d1 = sa.depth[oa]
        d2 = sb.depth[ob]
        e1 = e2 = -1
        while d2 > d1:
            e2 = sb.edge[ob]
            b = sb.parent[ob]
            sb, ob = locate(b)
            d2 -= 1
        while d1 > d2:
            e1 = sa.edge[oa]
            a = sa.parent[oa]
            sa, oa = locate(a)
            d1 -= 1
        while a != b:
            e1 = sa.edge[oa]
            e2 = sb.edge[ob]
            a = sa.parent[oa]
            b = sb.parent[ob]
            sa, oa = locate(a)
            sb, ob = locate(b)
        if e1 < 0:
            return e2 >= 0  # anc+: a proper ancestor is permitted
        if e2 < 0:
            return False  # dec*: a descendant never is
        return e1 > e2  # sib: the later sibling is smaller

    # ------------------------------------------------------------------
    def depth_of(self, vid: int) -> int:
        seg, off = self._locate(vid)
        return seg.depth[off]

    def row_of(self, vid: int) -> tuple[int, int, int]:
        """``(parent, edge, depth)`` of *vid* — the placement the sidecar
        announcements carry (roots report parent -1)."""
        seg, off = self._locate(vid)
        return seg.parent[off], seg.edge[off], seg.depth[off]

    def path_of(self, vid: int) -> tuple[int, ...]:
        """The spawn-path tuple (DePa-style edge list; debugging)."""
        rev = []
        seg, off = self._locate(vid)
        while seg.parent[off] >= 0:
            rev.append(seg.edge[off])
            vid = seg.parent[off]
            seg, off = self._locate(vid)
        return tuple(reversed(rev))

    @property
    def allocated(self) -> int:
        """Vertices this process has created (per-process, exact)."""
        return self._allocated

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Detach; the owner additionally unlinks every segment."""
        if self._closed:
            return
        self._closed = True
        attached = max(len(self._segs), int(self._ctl[3]) + 1 if self.owner else 0)
        for seg in self._segs:
            if seg is not None:
                seg.release()
        self._segs.clear()
        self._ctl.release()
        base = self.handle_tuple.base
        if self.owner:
            # Sweep a little past the high-water hint: the hint is
            # advisory (racy max), so a worker-created generation could
            # sit one past it.
            for k in range(attached + 4):
                try:
                    shm = shared_memory.SharedMemory(name=f"{base}-s{k}")
                    shm.close()
                    shm.unlink()
                except FileNotFoundError:
                    continue
                except Exception:  # noqa: BLE001 - cleanup is best effort
                    continue
            self._ctl_shm.close()
            try:
                self._ctl_shm.unlink()
            except FileNotFoundError:  # pragma: no cover
                pass
        else:
            self._ctl_shm.close()

    def __enter__(self) -> "SharedFlatTree":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False


class SharedTJPolicy(JoinPolicy):
    """Transitive Joins over a :class:`SharedFlatTree` (``TJ-SP-shm``).

    The same Algorithm 3 verdicts as the flat TJ-SP policy, but every
    process in the runtime sees one forest: a vertex handle is a
    globally unique int id, valid (and identically interpreted) in the
    parent, every worker, and on the sidecar wire.  The monotone
    ``last_ok`` permission cache stays *process-local* — shared caches
    would need cross-process atomicity the verdicts themselves never
    need, since TJ verdicts are fixed at fork time.

    Not in the policy registry: an instance is bound to a live shared
    forest, so the :class:`~repro.runtime.procs.ProcessRuntime`
    constructs it directly.
    """

    name = "TJ-SP-shm"
    backend = "shm"
    stable_permits = True

    def __init__(self, tree: SharedFlatTree) -> None:
        self.tree = tree
        self._last_ok: dict[int, int] = {}

    def add_child(self, parent: Optional[int]) -> int:
        return self.tree.add_child(-1 if parent is None else parent)

    def permits(self, joiner: int, joinee: int) -> bool:
        if self._last_ok.get(joiner) == joinee:
            return True
        if self.tree.less(joiner, joinee):
            self._last_ok[joiner] = joinee
            return True
        return False

    def permits_many(self, joiner: int, joinees: Sequence[int]) -> list[bool]:
        permits = self.permits
        return [permits(joiner, joinee) for joinee in joinees]

    def space_units(self) -> int:
        """4 slots per vertex *this process* created, plus the cache.

        Global accounting would need a cross-process reduction; the
        per-process view is what the parent's metrics merge sums.
        """
        return 4 * self.tree.allocated + len(self._last_ok)

    def path_of(self, vid: int) -> tuple[int, ...]:
        return self.tree.path_of(vid)

    def placement(self, vid: int) -> tuple[int, int, int]:
        """``(parent, edge, depth)`` — what a sidecar announcement needs."""
        return self.tree.row_of(vid)
