"""TJ-SP: the task-local spawn-path algorithm (Algorithm 3), interned.

The seed implementation stored each task's *spawn path* — the array of
child indices from the root down to itself — as an immutable Python
tuple: a fork copied the parent's path (O(h) allocation) and ``Less``
scanned for the longest common prefix.  That is the variant the paper
evaluates, and it is kept verbatim below as :class:`TJSpawnPathsLegacy`
(registered as ``"TJ-SP-legacy"``) so benchmarks can measure against it.

:class:`TJSpawnPaths` (registered as ``"TJ-SP-obj"``) replaces the
per-task tuple with a *hash-consed prefix tree* in the style of DePa's
compact fork paths: every task holds one interned :class:`SPNode` with a
parent pointer, its edge label (sibling index), a precomputed depth and
a stable id.  The production ``"TJ-SP"`` name now resolves to the
struct-of-arrays policy of :mod:`repro.core.tj_sp_flat`, which drops the
node objects altogether; this object implementation is retained for
differential testing and as a benchmark rung between the legacy tuples
and the flat core.  A fork is then a single O(1) node allocation — the whole
prefix is shared structurally — and ``Less`` resolves at the lowest
common ancestor by climbing the two node chains in lockstep instead of
re-scanning tuples from the root.

On top of the interned representation sit two caches that exploit TJ's
key invariant: the fork-tree order ``<_T`` is *fixed at fork time*, so
the verdict of ``Less(a, b)`` can never change over the lifetime of the
program (monotonicity — see docs/verifiers.md).  Both positive and
negative verdicts are therefore stable and safe to memoise:

* each node remembers the id of the joinee it was most recently
  permitted against (``_last_ok``), making the phaser/barrier pattern of
  re-joining the same partner an O(1) field compare;
* the policy keeps a bounded insertion-ordered cache of
  ``(joiner-id, joinee-id) -> verdict`` entries, so repeated joins in
  finish/fan-in patterns become O(1) dict hits.  The cache is capacity
  bounded and so adds O(1) space; at capacity the *oldest eighth* is
  evicted in one sweep (one-at-a-time FIFO eviction thrashed: a working
  set just over capacity paid an eviction on every insert, forever).
  Evictions are counted in ``cache_evictions``; races on the cache are
  benign because verdicts are deterministic and immutable, so a racy
  eviction may simply clear it wholesale.

The Section 5.1 concurrency contract still holds without locks: the only
shared mutable fields are the parent's ``children`` counter (written
solely by the owning task) and the caches (benign, idempotent writes).
"""

from __future__ import annotations

import itertools
from typing import Optional

from .policy import JoinPolicy, evict_chunk as _evict_chunk, register_policy

__all__ = ["SPNode", "TJSpawnPaths", "TJSpawnPathsLegacy", "LegacySPNode"]


class SPNode:
    """An interned spawn-path node: one vertex of the shared prefix tree.

    ``parent``/``edge``/``depth`` encode the spawn path structurally
    (the path is the edge labels from the root down); ``sid`` is a
    stable id used as a cache key; ``children`` is the fork counter;
    ``_path`` lazily materialises the legacy tuple form for debugging
    and differential tests; ``_last_ok`` is the per-task monotone
    permission cache (id of the last joinee this node was permitted
    against, or -1).
    """

    __slots__ = ("parent", "edge", "depth", "sid", "children", "_path", "_last_ok")

    def __init__(self, parent: Optional["SPNode"], edge: int, depth: int, sid: int) -> None:
        self.parent = parent
        self.edge = edge
        self.depth = depth
        self.sid = sid
        self.children = 0
        self._path: Optional[tuple[int, ...]] = () if parent is None else None
        self._last_ok = -1

    @property
    def path(self) -> tuple[int, ...]:
        """The spawn path as the legacy tuple, materialised on demand."""
        cached = self._path
        if cached is not None:
            return cached
        rev: list[int] = []
        node: SPNode = self
        while node._path is None:
            rev.append(node.edge)
            assert node.parent is not None
            node = node.parent
        path = node._path + tuple(reversed(rev))
        self._path = path
        return path

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SPNode(path={self.path})"


class TJSpawnPaths(JoinPolicy):
    """Transitive Joins over interned (structurally shared) spawn paths."""

    name = "TJ-SP-obj"
    stable_permits = True

    #: verdict-cache capacity; past it the oldest eighth is evicted
    CACHE_CAPACITY = 1 << 16

    def __init__(self) -> None:
        self._n_nodes = 0
        self._sid = itertools.count()
        self._verdicts: dict[tuple[int, int], bool] = {}
        #: total verdict-cache entries evicted over this policy's lifetime
        self.cache_evictions = 0

    def add_child(self, parent: Optional[SPNode]) -> SPNode:
        self._n_nodes += 1
        if parent is None:
            return SPNode(None, 0, 0, next(self._sid))
        node = SPNode(parent, parent.children, parent.depth + 1, next(self._sid))
        parent.children += 1
        return node

    # ------------------------------------------------------------------
    def permits(self, joiner: SPNode, joinee: SPNode) -> bool:
        jid = joinee.sid
        if joiner._last_ok == jid:
            return True  # monotone: a permitted pair stays permitted
        cache = self._verdicts
        key = (joiner.sid, jid)
        verdict = cache.get(key)
        if verdict is None:
            verdict = self._less_nodes(joiner, joinee)
            if len(cache) >= self.CACHE_CAPACITY:
                self.cache_evictions += _evict_chunk(cache, self.CACHE_CAPACITY)
            cache[key] = verdict
        if verdict:
            joiner._last_ok = jid
        return verdict

    def cache_stats(self) -> dict[str, int]:
        """Size and total evictions of the verdict cache."""
        return {
            "pair_entries": len(self._verdicts),
            "evictions": self.cache_evictions,
        }

    # ------------------------------------------------------------------
    @staticmethod
    def _less_nodes(a: SPNode, b: SPNode) -> bool:
        """``Less`` on interned nodes: lockstep climb to the LCA.

        Equivalent to the legacy tuple LCP scan: the edges taken from
        the LCA toward the two originals are exactly the tuple entries
        at the divergence index.
        """
        if a is b:
            return False
        e1: Optional[int] = None
        e2: Optional[int] = None
        d1, d2 = a.depth, b.depth
        while d2 > d1:
            e2 = b.edge
            b = b.parent  # type: ignore[assignment]
            d2 -= 1
        while d1 > d2:
            e1 = a.edge
            a = a.parent  # type: ignore[assignment]
            d1 -= 1
        while a is not b:
            e1 = a.edge
            e2 = b.edge
            a = a.parent  # type: ignore[assignment]
            b = b.parent  # type: ignore[assignment]
        if e1 is None:
            # a never moved: proper ancestor of the original b (anc+).
            return e2 is not None
        if e2 is None:
            # b is a proper ancestor of a (dec*): never permitted.
            return False
        return e1 > e2  # sib case: later sibling is smaller

    @staticmethod
    def _less(p1: tuple[int, ...], p2: tuple[int, ...]) -> bool:
        """The seed Algorithm 3 ``Less``: longest-common-prefix scan.

        Kept as the executable reference semantics; the property tests
        assert :meth:`_less_nodes` agrees with it on random fork trees.
        """
        for i in range(min(len(p1), len(p2))):
            if p1[i] != p2[i]:
                return p1[i] > p2[i]  # sib case: later sibling is smaller
        # One path is a prefix of the other (or they are equal): the
        # shorter path is the ancestor, and only a proper ancestor is less.
        return len(p1) < len(p2)

    def space_units(self) -> int:
        """Live storage in atomic slots.

        Each *unique prefix-tree node* is counted exactly once, at 4
        slots (parent pointer, edge label, depth, stable id) — interned
        prefixes are shared, so total space is O(n) in the number of
        tasks, not the legacy O(n·h) of one full tuple per task.  The
        bounded verdict cache is O(1) by construction and not counted.
        """
        return 4 * self._n_nodes


class LegacySPNode:
    """A task record holding its spawn path and a fork counter (seed)."""

    __slots__ = ("path", "children")

    def __init__(self, path: tuple[int, ...]) -> None:
        self.path = path
        self.children = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LegacySPNode(path={self.path})"


class TJSpawnPathsLegacy(JoinPolicy):
    """The seed tuple-per-task TJ-SP, kept as a benchmark baseline.

    Task-local arrays trade O(n·h) total space for zero sharing: a fork
    copies the parent's tuple and appends the child index; ``Less`` is
    the Algorithm 3 LCP scan.  ``bench_hotpath`` measures the interned
    :class:`TJSpawnPaths` against this implementation.
    """

    name = "TJ-SP-legacy"
    stable_permits = True

    def __init__(self) -> None:
        self._n_nodes = 0
        self._path_slots = 0

    def add_child(self, parent: Optional[LegacySPNode]) -> LegacySPNode:
        self._n_nodes += 1
        if parent is None:
            return LegacySPNode(())
        path = parent.path + (parent.children,)
        parent.children += 1
        self._path_slots += len(path)
        return LegacySPNode(path)

    def permits(self, joiner: LegacySPNode, joinee: LegacySPNode) -> bool:
        return TJSpawnPaths._less(joiner.path, joinee.path)

    _less = staticmethod(TJSpawnPaths._less)

    def space_units(self) -> int:
        return self._n_nodes + self._path_slots


register_policy(TJSpawnPaths.name, TJSpawnPaths)
register_policy(TJSpawnPathsLegacy.name, TJSpawnPathsLegacy)
