"""TJ-SP: the task-local spawn-path algorithm (Algorithm 3).

Instead of a shared tree, each task carries its *spawn path* — the array
of child indices from the root down to itself.  A fork copies the parent's
path and appends the new child's sibling index; ``Less`` scans for the
longest common prefix and compares at the divergence (or path lengths when
one path is a prefix of the other, the anc+/dec* cases).

This is the variant the paper evaluates: task-local arrays trade O(n·h)
total space for cache locality and zero sharing.  Paths are Python tuples,
so the "copy" is one allocation and the structure is immutable after
creation — the Section 5.1 concurrency contract is satisfied trivially.
"""

from __future__ import annotations

from typing import Optional

from .policy import JoinPolicy, register_policy

__all__ = ["SPNode", "TJSpawnPaths"]


class SPNode:
    """A task record holding its spawn path and a fork counter."""

    __slots__ = ("path", "children")

    def __init__(self, path: tuple[int, ...]) -> None:
        self.path = path
        self.children = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SPNode(path={self.path})"


class TJSpawnPaths(JoinPolicy):
    """Transitive Joins verified over per-task spawn paths."""

    name = "TJ-SP"

    def __init__(self) -> None:
        self._n_nodes = 0
        self._path_slots = 0

    def add_child(self, parent: Optional[SPNode]) -> SPNode:
        self._n_nodes += 1
        if parent is None:
            return SPNode(())
        path = parent.path + (parent.children,)
        parent.children += 1
        self._path_slots += len(path)
        return SPNode(path)

    def permits(self, joiner: SPNode, joinee: SPNode) -> bool:
        return self._less(joiner.path, joinee.path)

    @staticmethod
    def _less(p1: tuple[int, ...], p2: tuple[int, ...]) -> bool:
        """Algorithm 3's ``Less``: longest-common-prefix comparison."""
        for i in range(min(len(p1), len(p2))):
            if p1[i] != p2[i]:
                return p1[i] > p2[i]  # sib case: later sibling is smaller
        # One path is a prefix of the other (or they are equal): the
        # shorter path is the ancestor, and only a proper ancestor is less.
        return len(p1) < len(p2)

    def space_units(self) -> int:
        return self._n_nodes + self._path_slots


register_policy(TJSpawnPaths.name, TJSpawnPaths)
