"""Crypt: the Java Grande Forum IDEA benchmark (Section 6.1).

The program encrypts and then decrypts a byte buffer.  Each phase is
embarrassingly parallel: the root forks one worker per slice and joins
them all, in order.  The paper forks 8192 tasks over 50 MB; the scaled
default forks 256 tasks over 512 KB.

With so many sibling tasks joined by the root, this benchmark stresses
per-fork verifier cost — the regime where KJ-VC's O(n) clock copies blow
up (its 9.15x entry in Table 2).
"""

from __future__ import annotations

from typing import Any

import numpy as np

from .base import Benchmark, register_benchmark
from .idea import crypt_blocks, expand_key, invert_key, random_key

__all__ = ["Crypt"]


@register_benchmark
class Crypt(Benchmark):
    name = "Crypt"
    paper_params = {"size_bytes": 50_000_000, "tasks": 8192}

    @classmethod
    def default_params(cls) -> dict[str, Any]:
        return {"size_bytes": 512 * 1024, "tasks": 256, "seed": 7}

    def build(self) -> None:
        size, tasks = self.params["size_bytes"], self.params["tasks"]
        block_bytes = 8
        if size % (tasks * block_bytes):
            raise ValueError("size must divide evenly into 8-byte blocks per task")
        rng = np.random.default_rng(self.params["seed"])
        self.plaintext = rng.integers(0, 256, size=size, dtype=np.uint8)
        key = random_key(rng)
        self.enc_key = expand_key(key)
        self.dec_key = invert_key(self.enc_key)
        super().build()

    def run(self, rt) -> tuple[int, int]:
        tasks = self.params["tasks"]
        size = len(self.plaintext)
        slice_len = size // tasks
        ciphertext = np.empty_like(self.plaintext)
        recovered = np.empty_like(self.plaintext)

        def worker(src, dst, lo, hi, subkeys):
            dst[lo:hi] = crypt_blocks(src[lo:hi], subkeys)

        for src, dst, key in (
            (self.plaintext, ciphertext, self.enc_key),
            (ciphertext, recovered, self.dec_key),
        ):
            futures = [
                rt.fork(worker, src, dst, i * slice_len, (i + 1) * slice_len, key)
                for i in range(tasks)
            ]
            for fut in futures:
                fut.join()
        # cheap checksums stand in for the full arrays
        return int(ciphertext.sum()), int((recovered == self.plaintext).sum())

    def verify(self, result: tuple[int, int]) -> bool:
        _, matching = result
        return matching == len(self.plaintext)
