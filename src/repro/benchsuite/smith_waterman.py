"""Smith-Waterman: DNA sequence alignment by dynamic programming.

The score matrix is divided into a grid of chunks; each chunk task joins
the futures of its west, north and north-west neighbour chunks before
filling its region (a wavefront dependence pattern).  The root forks the
chunk tasks in row-major order, so every join targets an older sibling —
valid under both KJ and TJ.

Paper scale: sequences of 21,726 bases, 40x40 chunks.
Default here: 360 bases, 6x6 chunks.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from .base import Benchmark, register_benchmark

__all__ = ["SmithWaterman", "smith_waterman_reference"]

_MATCH = 2
_MISMATCH = -1
_GAP = -1


def smith_waterman_reference(a: np.ndarray, b: np.ndarray) -> int:
    """Sequential Smith-Waterman local-alignment score (linear gaps)."""
    h = np.zeros((len(a) + 1, len(b) + 1), dtype=np.int64)
    _fill_region(h, a, b, 1, len(a) + 1, 1, len(b) + 1)
    return int(h.max())


def _fill_region(
    h: np.ndarray,
    a: np.ndarray,
    b: np.ndarray,
    r0: int,
    r1: int,
    c0: int,
    c1: int,
) -> None:
    """Fill h[r0:r1, c0:c1] assuming west/north/north-west are final.

    The inner loop runs over rows with a vectorised column body where
    possible; the column-wise data dependence (west neighbour) forces a
    scalar scan, kept tight.
    """
    for i in range(r0, r1):
        ai = a[i - 1]
        row = h[i]
        prev_row = h[i - 1]
        for j in range(c0, c1):
            score = _MATCH if ai == b[j - 1] else _MISMATCH
            best = prev_row[j - 1] + score
            up = prev_row[j] + _GAP
            if up > best:
                best = up
            left = row[j - 1] + _GAP
            if left > best:
                best = left
            row[j] = best if best > 0 else 0


@register_benchmark
class SmithWaterman(Benchmark):
    name = "Smith-Waterman"
    paper_params = {"length": 21_726, "chunks": 40}

    @classmethod
    def default_params(cls) -> dict[str, Any]:
        return {"length": 360, "chunks": 6, "seed": 99}

    def build(self) -> None:
        length, chunks = self.params["length"], self.params["chunks"]
        if length % chunks:
            raise ValueError("sequence length must divide evenly into chunks")
        rng = np.random.default_rng(self.params["seed"])
        self.seq_a = rng.integers(0, 4, size=length, dtype=np.int8)
        self.seq_b = rng.integers(0, 4, size=length, dtype=np.int8)
        self.expected = smith_waterman_reference(self.seq_a, self.seq_b)
        super().build()

    def run(self, rt) -> int:
        length, nc = self.params["length"], self.params["chunks"]
        cs = length // nc
        h = np.zeros((length + 1, length + 1), dtype=np.int64)

        def chunk_task(ci, cj, deps):
            for dep in deps:
                dep.join()
            _fill_region(
                h,
                self.seq_a,
                self.seq_b,
                ci * cs + 1,
                (ci + 1) * cs + 1,
                cj * cs + 1,
                (cj + 1) * cs + 1,
            )
            return int(
                h[ci * cs + 1 : (ci + 1) * cs + 1, cj * cs + 1 : (cj + 1) * cs + 1].max()
            )

        futures: dict[tuple[int, int], Any] = {}
        for ci in range(nc):
            for cj in range(nc):
                deps = [
                    futures[pos]
                    for pos in ((ci - 1, cj), (ci, cj - 1), (ci - 1, cj - 1))
                    if pos in futures
                ]
                futures[ci, cj] = rt.fork(chunk_task, ci, cj, deps)
        return max(f.join() for f in futures.values())

    def verify(self, result: int) -> bool:
        return result == self.expected
