"""The six evaluation benchmarks of Section 6.1 and the measurement
harness.

===============  ==========================================  ==============
benchmark        join pattern                                policy validity
===============  ==========================================  ==============
Jacobi           block joins 5 older siblings per iteration  KJ ok, TJ ok
Smith-Waterman   chunk joins 3 older siblings (wavefront)    KJ ok, TJ ok
Crypt            root joins 2x N children in order           KJ ok, TJ ok
Strassen         task joins own children / older siblings    KJ ok, TJ ok
Series           root joins N children in order              KJ ok, TJ ok
NQueens          root joins all descendants, any order       KJ x,  TJ ok
===============  ==========================================  ==============
"""

from .base import BENCHMARK_REGISTRY, Benchmark, make_benchmark, register_benchmark
from .crypt import Crypt
from .extras import FanInReduce, Fib, MergeSort
from .harness import (
    DEFAULT_POLICIES,
    BenchmarkReport,
    Harness,
    PolicyMeasurement,
    RunSample,
)
from .jacobi import Jacobi, jacobi_reference
from .nqueens import KNOWN_SOLUTIONS, NQueens, count_queens_sequential
from .series import Series, fourier_coefficient
from .smith_waterman import SmithWaterman, smith_waterman_reference
from .strassen import Strassen, strassen_sequential
from . import idea

#: the paper's Table 2 suite
ALL_BENCHMARKS = ("Jacobi", "Smith-Waterman", "Crypt", "Strassen", "Series", "NQueens")
#: additional workloads (runtime ablations, integration tests)
EXTRA_BENCHMARKS = ("Fib", "MergeSort", "FanInReduce")

__all__ = [
    "Benchmark",
    "BENCHMARK_REGISTRY",
    "register_benchmark",
    "make_benchmark",
    "ALL_BENCHMARKS",
    "EXTRA_BENCHMARKS",
    "Fib",
    "MergeSort",
    "FanInReduce",
    "Jacobi",
    "SmithWaterman",
    "Crypt",
    "Strassen",
    "Series",
    "NQueens",
    "Harness",
    "BenchmarkReport",
    "PolicyMeasurement",
    "RunSample",
    "DEFAULT_POLICIES",
    "KNOWN_SOLUTIONS",
    "count_queens_sequential",
    "fourier_coefficient",
    "jacobi_reference",
    "smith_waterman_reference",
    "strassen_sequential",
    "idea",
]
