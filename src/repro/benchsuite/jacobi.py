"""Jacobi: iterative central finite-difference stencil (Section 6.1).

On each iteration a grid of block tasks is forked; each block task joins
the futures of its own block and up to four neighbouring blocks from the
*previous* iteration before computing its block of the 5-point stencil.
All tasks are forked by the root in iteration-major order, so every join
targets an older sibling — valid under both KJ and TJ.

Paper scale: 8192x8192 matrix, 16x16 blocks, 30 iterations.
Default here: 192x192, 4x4 blocks, 6 iterations.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from .base import Benchmark, register_benchmark

__all__ = ["Jacobi", "jacobi_reference"]


def jacobi_reference(grid: np.ndarray, iterations: int) -> np.ndarray:
    """Sequential 5-point Jacobi smoothing with fixed boundary."""
    a = grid.copy()
    for _ in range(iterations):
        b = a.copy()
        b[1:-1, 1:-1] = 0.25 * (
            a[:-2, 1:-1] + a[2:, 1:-1] + a[1:-1, :-2] + a[1:-1, 2:]
        )
        a = b
    return a


@register_benchmark
class Jacobi(Benchmark):
    name = "Jacobi"
    paper_params = {"n": 8192, "blocks": 16, "iterations": 30}

    @classmethod
    def default_params(cls) -> dict[str, Any]:
        return {"n": 192, "blocks": 4, "iterations": 6, "seed": 1234}

    def build(self) -> None:
        n = self.params["n"]
        if n % self.params["blocks"]:
            raise ValueError("matrix size must divide evenly into blocks")
        rng = np.random.default_rng(self.params["seed"])
        self.initial = rng.random((n, n))
        self.expected = jacobi_reference(self.initial, self.params["iterations"])
        super().build()

    def run(self, rt) -> np.ndarray:
        n, nb, iters = self.params["n"], self.params["blocks"], self.params["iterations"]
        bs = n // nb
        # grids[t] is the state after t iterations
        grids = [self.initial] + [np.empty((n, n)) for _ in range(iters)]

        def block_task(t, bi, bj, deps):
            for dep in deps:
                dep.join()
            src, dst = grids[t - 1], grids[t]
            r0, r1 = bi * bs, (bi + 1) * bs
            c0, c1 = bj * bs, (bj + 1) * bs
            # interior points only; boundary rows/columns stay fixed
            ri0, ri1 = max(r0, 1), min(r1, n - 1)
            ci0, ci1 = max(c0, 1), min(c1, n - 1)
            dst[ri0:ri1, ci0:ci1] = 0.25 * (
                src[ri0 - 1 : ri1 - 1, ci0:ci1]
                + src[ri0 + 1 : ri1 + 1, ci0:ci1]
                + src[ri0:ri1, ci0 - 1 : ci1 - 1]
                + src[ri0:ri1, ci0 + 1 : ci1 + 1]
            )
            if r0 == 0:
                dst[0, c0:c1] = src[0, c0:c1]
            if r1 == n:
                dst[n - 1, c0:c1] = src[n - 1, c0:c1]
            if c0 == 0:
                dst[r0:r1, 0] = src[r0:r1, 0]
            if c1 == n:
                dst[r0:r1, n - 1] = src[r0:r1, n - 1]

        prev: dict[tuple[int, int], Any] = {}
        for t in range(1, iters + 1):
            cur: dict[tuple[int, int], Any] = {}
            for bi in range(nb):
                for bj in range(nb):
                    deps = []
                    if prev:
                        # own block plus the four neighbours, as in the paper
                        for di, dj in ((0, 0), (-1, 0), (1, 0), (0, -1), (0, 1)):
                            f = prev.get((bi + di, bj + dj))
                            if f is not None:
                                deps.append(f)
                    cur[bi, bj] = rt.fork(block_task, t, bi, bj, deps)
            prev = cur
        for fut in prev.values():
            fut.join()
        return grids[iters]

    def verify(self, result: np.ndarray) -> bool:
        return np.allclose(result, self.expected)
