"""Steady-state measurement harness (Section 6.2 / Artifact A.5).

For each benchmark x policy configuration the harness runs one discarded
warmup followed by ``repetitions`` timed runs (the paper's steady-state
methodology of Georges et al., scaled down from its 30 repetitions) and
reports:

* execution time — mean of the timed runs, with the per-run samples kept
  so the analysis layer can compute 95% confidence intervals (Figure 2);
* memory — the verifier's own live footprint via ``policy.space_units``
  plus a tracemalloc peak taken in one *separate* pass, so allocation
  tracing never distorts the timing runs.

Overheads are reported as factors over the ``policy=None`` baseline,
exactly like Table 2.
"""

from __future__ import annotations

import gc
import math
import time
import tracemalloc
from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

from .base import Benchmark, make_benchmark

__all__ = ["RunSample", "PolicyMeasurement", "BenchmarkReport", "Harness", "DEFAULT_POLICIES"]

DEFAULT_POLICIES = ("KJ-VC", "KJ-SS", "TJ-SP")


@dataclass
class RunSample:
    """One timed run."""

    seconds: float
    verified: bool


@dataclass
class PolicyMeasurement:
    """All samples for one benchmark under one policy configuration."""

    policy: Optional[str]
    times: list[float] = field(default_factory=list)
    verified: bool = True
    peak_bytes: int = 0
    verifier_space_units: int = 0
    false_positives: int = 0
    deadlocks_avoided: int = 0
    joins_checked: int = 0
    forks: int = 0

    @property
    def mean_time(self) -> float:
        """Mean of the timed samples.

        A measurement with no timed samples (e.g. a crashed or skipped
        run) yields ``nan`` instead of raising ``ZeroDivisionError``,
        and the measurement is marked unverified so downstream tables
        cannot silently treat it as a clean result.
        """
        if not self.times:
            self.verified = False
            return math.nan
        return sum(self.times) / len(self.times)

    @property
    def stdev_time(self) -> float:
        """Sample standard deviation; ``nan`` when there are no samples."""
        if not self.times:
            self.verified = False
            return math.nan
        if len(self.times) < 2:
            return 0.0
        mu = self.mean_time
        return math.sqrt(sum((t - mu) ** 2 for t in self.times) / (len(self.times) - 1))


@dataclass
class BenchmarkReport:
    """One benchmark across the baseline and all policies."""

    name: str
    params: dict[str, Any]
    baseline: PolicyMeasurement
    policies: dict[str, PolicyMeasurement]

    def time_overhead(self, policy: str) -> float:
        return self.policies[policy].mean_time / self.baseline.mean_time

    def memory_overhead(self, policy: str) -> float:
        """Peak-footprint factor over the baseline.

        Baselines can be allocation-light, so a tiny floor guards against
        division blow-ups on degenerate configurations.
        """
        base = max(self.baseline.peak_bytes, 1)
        return self.policies[policy].peak_bytes / base


class Harness:
    """Runs benchmark x policy grids and produces :class:`BenchmarkReport` s."""

    def __init__(
        self,
        repetitions: int = 5,
        warmup: int = 1,
        policies: Sequence[str] = DEFAULT_POLICIES,
        measure_memory: bool = True,
    ) -> None:
        if repetitions < 1:
            raise ValueError("need at least one timed repetition")
        self.repetitions = repetitions
        self.warmup = warmup
        self.policies = tuple(policies)
        self.measure_memory = measure_memory

    # ------------------------------------------------------------------
    def measure_policy(
        self, benchmark: Benchmark, policy: Optional[str]
    ) -> PolicyMeasurement:
        """Warmup + timed runs + one traced memory run for one policy."""
        benchmark.build()
        m = PolicyMeasurement(policy=policy)
        for _ in range(self.warmup):
            benchmark.execute(policy)
        for _ in range(self.repetitions):
            gc.collect()
            t0 = time.perf_counter()
            result, rt = benchmark.execute(policy)
            m.times.append(time.perf_counter() - t0)
            m.verified = m.verified and benchmark.verify(result)
        # statistics from the last timed run's runtime
        m.verifier_space_units = rt.policy.space_units()
        m.joins_checked = rt.verifier.stats.joins_checked
        m.forks = rt.verifier.stats.forks
        if rt.detector is not None:
            m.false_positives = rt.detector.stats.false_positives
            m.deadlocks_avoided = rt.detector.stats.deadlocks_avoided
        if self.measure_memory:
            gc.collect()
            tracemalloc.start()
            benchmark.execute(policy)
            _, peak = tracemalloc.get_traced_memory()
            tracemalloc.stop()
            m.peak_bytes = peak
        return m

    def measure_benchmark(self, benchmark: Benchmark) -> BenchmarkReport:
        baseline = self.measure_policy(benchmark, None)
        policies = {p: self.measure_policy(benchmark, p) for p in self.policies}
        return BenchmarkReport(
            name=benchmark.name,
            params=dict(benchmark.params),
            baseline=baseline,
            policies=policies,
        )

    def measure_suite(
        self, names: Sequence[str], **param_overrides: dict[str, Any]
    ) -> list[BenchmarkReport]:
        """Measure several registered benchmarks.

        ``param_overrides`` maps a benchmark name (with '-' replaced by
        '_') to a parameter dict.
        """
        reports = []
        for name in names:
            params = param_overrides.get(name.replace("-", "_"), {})
            reports.append(self.measure_benchmark(make_benchmark(name, **params)))
        return reports
