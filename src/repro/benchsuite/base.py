"""Common infrastructure for the six evaluation benchmarks (Section 6.1).

Every benchmark is a small task-parallel program with a verifiable
result.  A benchmark declares which runtime flavour it uses (all use the
blocking thread-per-task runtime except NQueens, which — following the
paper's footnote 4 — runs on the cooperative runtime) and exposes:

* :meth:`build`   — input preparation, excluded from measurement;
* :meth:`run`     — the parallel program, returning a checksummable value;
* :meth:`verify`  — correctness check against a sequential reference.

Parameters default to laptop-scale versions of the paper's inputs; the
paper-scale values are kept in ``paper_params`` for documentation and for
anyone with hours to spare.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Callable, Mapping, Optional, Union

from ..core.policy import JoinPolicy
from ..runtime import CooperativeRuntime, TaskRuntime

__all__ = ["Benchmark", "BENCHMARK_REGISTRY", "register_benchmark", "make_benchmark"]


class Benchmark(ABC):
    """One evaluation program."""

    #: short name used in Table 2 / Figure 2
    name: str = "abstract"
    #: "threaded" or "cooperative"
    runtime_kind: str = "threaded"
    #: the parameters the paper ran (documentation; far too big for CI)
    paper_params: Mapping[str, Any] = {}

    def __init__(self, **params: Any) -> None:
        self.params = dict(self.default_params())
        unknown = set(params) - set(self.params)
        if unknown:
            raise TypeError(f"{self.name}: unknown parameters {sorted(unknown)}")
        self.params.update(params)
        self._built = False

    # ------------------------------------------------------------------
    @classmethod
    @abstractmethod
    def default_params(cls) -> dict[str, Any]:
        """Scaled-down defaults that run in roughly a second."""

    def build(self) -> None:
        """Prepare inputs.  Idempotent; called automatically by execute()."""
        self._built = True

    @abstractmethod
    def run(self, rt: Union[TaskRuntime, CooperativeRuntime]) -> Any:
        """The parallel program.  Returns a verifiable result value."""

    @abstractmethod
    def verify(self, result: Any) -> bool:
        """Check *result* against a sequential reference computation."""

    # ------------------------------------------------------------------
    def make_runtime(
        self,
        policy: Union[None, str, JoinPolicy],
        *,
        fallback: bool = True,
    ) -> Union[TaskRuntime, CooperativeRuntime]:
        cls = CooperativeRuntime if self.runtime_kind == "cooperative" else TaskRuntime
        return cls(policy, fallback=fallback)

    def execute(
        self,
        policy: Union[None, str, JoinPolicy] = None,
        *,
        fallback: bool = True,
    ) -> tuple[Any, Union[TaskRuntime, CooperativeRuntime]]:
        """Build (if needed), run under a fresh runtime, return (result, rt)."""
        if not self._built:
            self.build()
        rt = self.make_runtime(policy, fallback=fallback)
        result = rt.run(self.run, rt)
        return result, rt

    def __repr__(self) -> str:
        args = ", ".join(f"{k}={v!r}" for k, v in self.params.items())
        return f"{type(self).__name__}({args})"


BENCHMARK_REGISTRY: dict[str, Callable[..., Benchmark]] = {}


def register_benchmark(cls: type[Benchmark]) -> type[Benchmark]:
    """Class decorator adding a benchmark to the global registry."""
    BENCHMARK_REGISTRY[cls.name] = cls
    return cls


def make_benchmark(name: str, **params: Any) -> Benchmark:
    try:
        cls = BENCHMARK_REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(BENCHMARK_REGISTRY))
        raise KeyError(f"unknown benchmark {name!r}; known: {known}") from None
    return cls(**params)
