"""NQueens: divide-and-conquer search with unordered root joins.

Unlike Strassen (each task joins its own children/siblings), the root of
NQueens drains a shared queue of futures for *all* tasks in the tree and
joins them in whatever order they were enqueued — the Listing 1 pattern.
A grandchild's future can be joined before (or instead of) its parent's,
which violates Known Joins nondeterministically but never violates
Transitive Joins: this is the benchmark the paper added to exercise the
KJ fallback path (and, per footnote 4, the one run on the cooperative
runtime).

The emptiness check is sound because every task enqueues its children's
futures before terminating, and a join only unblocks after termination:
when the root finds the queue empty, no task remains.

Paper scale: N=14, cutoff depth 8 (~3.4M tasks).
Default here: N=9, cutoff depth 3.
"""

from __future__ import annotations

import random
from typing import Any

from .base import Benchmark, register_benchmark

__all__ = ["NQueens", "count_queens_sequential", "KNOWN_SOLUTIONS"]

#: number of N-queens solutions for N = 0..14
KNOWN_SOLUTIONS = [1, 1, 0, 0, 2, 10, 4, 40, 92, 352, 724, 2680, 14200, 73712, 365596]


def count_queens_sequential(n: int, cols: int = 0, diag1: int = 0, diag2: int = 0, row: int = 0) -> int:
    """Bitmask backtracking count of completions of a partial placement."""
    if row == n:
        return 1
    total = 0
    free = ~(cols | diag1 | diag2) & ((1 << n) - 1)
    while free:
        bit = free & -free
        free ^= bit
        total += count_queens_sequential(
            n, cols | bit, (diag1 | bit) << 1, (diag2 | bit) >> 1, row + 1
        )
    return total


@register_benchmark
class NQueens(Benchmark):
    name = "NQueens"
    runtime_kind = "cooperative"
    paper_params = {"n": 14, "cutoff": 8}

    @classmethod
    def default_params(cls) -> dict[str, Any]:
        # join_order "random" joins at a seeded-random queue position each
        # step — the deterministic reproduction of the arbitrary join order
        # that makes NQueens "potentially violate" KJ; "fifo" joins in BFS
        # order, which happens to always satisfy KJ.
        return {"n": 9, "cutoff": 3, "join_order": "random", "seed": 2019}

    def build(self) -> None:
        n = self.params["n"]
        self.expected = (
            KNOWN_SOLUTIONS[n]
            if n < len(KNOWN_SOLUTIONS)
            else count_queens_sequential(n)
        )
        super().build()

    def run(self, rt):
        n, cutoff = self.params["n"], self.params["cutoff"]
        rng = (
            random.Random(self.params["seed"])
            if self.params["join_order"] == "random"
            else None
        )
        queue: list = []

        def solver(cols, diag1, diag2, row):
            if row == n:
                return 1
            if row >= cutoff:
                return count_queens_sequential(n, cols, diag1, diag2, row)
            free = ~(cols | diag1 | diag2) & ((1 << n) - 1)
            while free:
                bit = free & -free
                free ^= bit
                # child enqueued before this task can terminate
                queue.append(
                    rt.fork(
                        solver, cols | bit, (diag1 | bit) << 1, (diag2 | bit) >> 1, row + 1
                    )
                )
            return 0

        queue.append(rt.fork(solver, 0, 0, 0, 0))
        total = 0
        while queue:
            at = rng.randrange(len(queue)) if rng is not None else 0
            total += yield queue.pop(at)
        return total

    def verify(self, result: int) -> bool:
        return result == self.expected
