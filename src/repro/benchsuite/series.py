"""Series: Fourier coefficients of (x+1)^x (the JGF Series benchmark).

The root forks one independent task per coefficient pair and joins them
all in order.  The baseline footprint is tiny and dominated by the task
count — exactly the regime where every verifier's per-task state shows up
as memory overhead (the Series row of Table 2).

Paper scale: 1,000,000 tasks.  Default here: 1,000.
"""

from __future__ import annotations

import math
from typing import Any

import numpy as np

from .base import Benchmark, register_benchmark

__all__ = ["Series", "fourier_coefficient"]

_INTERVAL = 2.0  # integrate over [0, 2], as in JGF


def _f(x: np.ndarray) -> np.ndarray:
    return np.power(x + 1.0, x)


def fourier_coefficient(j: int, samples: int = 1000) -> tuple[float, float]:
    """(a_j, b_j) of (x+1)^x on [0,2] by the trapezoidal rule.

    ``a_0`` is returned in the first slot with ``b_0 = 0``.
    """
    x = np.linspace(0.0, _INTERVAL, samples + 1)
    fx = _f(x)
    omega = 2.0 * math.pi / _INTERVAL
    if j == 0:
        a = np.trapezoid(fx, x) * 2.0 / _INTERVAL
        return float(a), 0.0
    a = np.trapezoid(fx * np.cos(omega * j * x), x) * 2.0 / _INTERVAL
    b = np.trapezoid(fx * np.sin(omega * j * x), x) * 2.0 / _INTERVAL
    return float(a), float(b)


@register_benchmark
class Series(Benchmark):
    name = "Series"
    paper_params = {"coefficients": 1_000_000}

    @classmethod
    def default_params(cls) -> dict[str, Any]:
        return {"coefficients": 1000, "samples": 200}

    def build(self) -> None:
        # reference values for the first few coefficients
        self.expected_first = [
            fourier_coefficient(j, self.params["samples"]) for j in range(4)
        ]
        super().build()

    def run(self, rt) -> list[tuple[float, float]]:
        samples = self.params["samples"]
        futures = [
            rt.fork(fourier_coefficient, j, samples)
            for j in range(self.params["coefficients"])
        ]
        return [f.join() for f in futures]

    def verify(self, result: list[tuple[float, float]]) -> bool:
        if len(result) != self.params["coefficients"]:
            return False
        head_ok = all(
            math.isclose(got[0], exp[0], rel_tol=1e-9)
            and math.isclose(got[1], exp[1], rel_tol=1e-9, abs_tol=1e-12)
            for got, exp in zip(result[:4], self.expected_first)
        )
        # sanity window: a_0/2 (the mean of (x+1)^x on [0,2]) is ~2.88;
        # JGF's published first coefficient is the same quantity at its
        # own sampling resolution (2.87293...).
        return head_ok and 2.8 < result[0][0] / 2.0 < 2.95
