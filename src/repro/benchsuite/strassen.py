"""Strassen: divide-and-conquer matrix multiplication with 7 recursive
multiplies per level (Section 6.1).

At each level the current task forks seven recursive multiplication tasks
and then four addition tasks that combine them into the result quadrants;
the addition tasks join their older multiply siblings and the parent joins
the addition tasks — every join is on a child or an older sibling, so the
benchmark is valid under both KJ and TJ.

Paper scale: 4096x4096, recursion depth 5 (30,811 tasks).
Default here: 256x256 with a 64x64 cutoff (depth 2).
"""

from __future__ import annotations

from typing import Any

import numpy as np

from .base import Benchmark, register_benchmark

__all__ = ["Strassen", "strassen_sequential"]


def _quadrants(m: np.ndarray):
    h = m.shape[0] // 2
    return m[:h, :h], m[:h, h:], m[h:, :h], m[h:, h:]


def strassen_sequential(a: np.ndarray, b: np.ndarray, cutoff: int) -> np.ndarray:
    """Sequential Strassen recursion (reference for the parallel version)."""
    n = a.shape[0]
    if n <= cutoff:
        return a @ b
    a11, a12, a21, a22 = _quadrants(a)
    b11, b12, b21, b22 = _quadrants(b)
    m1 = strassen_sequential(a11 + a22, b11 + b22, cutoff)
    m2 = strassen_sequential(a21 + a22, b11, cutoff)
    m3 = strassen_sequential(a11, b12 - b22, cutoff)
    m4 = strassen_sequential(a22, b21 - b11, cutoff)
    m5 = strassen_sequential(a11 + a12, b22, cutoff)
    m6 = strassen_sequential(a21 - a11, b11 + b12, cutoff)
    m7 = strassen_sequential(a12 - a22, b21 + b22, cutoff)
    c = np.empty((n, n), dtype=a.dtype)
    h = n // 2
    c[:h, :h] = m1 + m4 - m5 + m7
    c[:h, h:] = m3 + m5
    c[h:, :h] = m2 + m4
    c[h:, h:] = m1 - m2 + m3 + m6
    return c


@register_benchmark
class Strassen(Benchmark):
    name = "Strassen"
    paper_params = {"n": 4096, "cutoff": 128}

    @classmethod
    def default_params(cls) -> dict[str, Any]:
        return {"n": 256, "cutoff": 64, "seed": 5}

    def build(self) -> None:
        n = self.params["n"]
        if n & (n - 1):
            raise ValueError("matrix size must be a power of two")
        rng = np.random.default_rng(self.params["seed"])
        self.a = rng.random((n, n))
        self.b = rng.random((n, n))
        self.expected = self.a @ self.b
        super().build()

    def run(self, rt) -> np.ndarray:
        cutoff = self.params["cutoff"]

        def multiply(a, b):
            n = a.shape[0]
            if n <= cutoff:
                return a @ b
            a11, a12, a21, a22 = _quadrants(a)
            b11, b12, b21, b22 = _quadrants(b)
            ms = [
                rt.fork(multiply, a11 + a22, b11 + b22),
                rt.fork(multiply, a21 + a22, b11),
                rt.fork(multiply, a11, b12 - b22),
                rt.fork(multiply, a22, b21 - b11),
                rt.fork(multiply, a11 + a12, b22),
                rt.fork(multiply, a21 - a11, b11 + b12),
                rt.fork(multiply, a12 - a22, b21 + b22),
            ]
            m1, m2, m3, m4, m5, m6, m7 = ms

            # four addition tasks, each joining its older multiply siblings
            def add(expr_deps, combine):
                vals = [f.join() for f in expr_deps]
                return combine(*vals)

            c11 = rt.fork(add, [m1, m4, m5, m7], lambda x1, x4, x5, x7: x1 + x4 - x5 + x7)
            c12 = rt.fork(add, [m3, m5], lambda x3, x5: x3 + x5)
            c21 = rt.fork(add, [m2, m4], lambda x2, x4: x2 + x4)
            c22 = rt.fork(add, [m1, m2, m3, m6], lambda x1, x2, x3, x6: x1 - x2 + x3 + x6)

            c = np.empty((n, n), dtype=a.dtype)
            h = n // 2
            c[:h, :h] = c11.join()
            c[:h, h:] = c12.join()
            c[h:, :h] = c21.join()
            c[h:, h:] = c22.join()
            return c

        return multiply(self.a, self.b)

    def verify(self, result: np.ndarray) -> bool:
        return np.allclose(result, self.expected)
