"""Extra benchmark programs beyond the paper's six (Section 6.1 cites the
Cilk and BOTS suites these shapes come from).

Not part of Table 2; used by the runtime-ablation benchmark and as
additional integration workloads:

* :class:`Fib` — the Cilk classic: deep fully strict recursion, tiny
  tasks (verifier overhead per fork/join dominates);
* :class:`MergeSort` — divide-and-conquer with parent-joins-children and
  a NumPy merge (mixed compute/sync);
* :class:`FanInReduce` — a tournament reduction where every round's
  tasks join *older siblings* from the previous round (fork tree of
  height 1, joins across the whole sibling range — TJ/KJ valid but
  maximally wide).
"""

from __future__ import annotations

from typing import Any

import numpy as np

from .base import Benchmark, register_benchmark

__all__ = ["Fib", "MergeSort", "FanInReduce"]


def _fib_seq(n: int) -> int:
    a, b = 0, 1
    for _ in range(n):
        a, b = b, a + b
    return a


@register_benchmark
class Fib(Benchmark):
    name = "Fib"
    paper_params = {"n": 30, "cutoff": 10}

    @classmethod
    def default_params(cls) -> dict[str, Any]:
        return {"n": 16, "cutoff": 8}

    def build(self) -> None:
        self.expected = _fib_seq(self.params["n"])
        super().build()

    def run(self, rt) -> int:
        cutoff = self.params["cutoff"]

        def fib(n):
            if n < cutoff:
                return _fib_seq(n)
            a = rt.fork(fib, n - 1)
            b = rt.fork(fib, n - 2)
            return a.join() + b.join()

        return fib(self.params["n"])

    def verify(self, result: int) -> bool:
        return result == self.expected


@register_benchmark
class MergeSort(Benchmark):
    name = "MergeSort"
    paper_params = {"n": 1 << 22, "cutoff": 1 << 14}

    @classmethod
    def default_params(cls) -> dict[str, Any]:
        return {"n": 1 << 14, "cutoff": 1 << 11, "seed": 11}

    def build(self) -> None:
        rng = np.random.default_rng(self.params["seed"])
        self.data = rng.random(self.params["n"])
        self.expected_checksum = float(np.sort(self.data)[:: max(1, len(self.data) // 64)].sum())
        super().build()

    def run(self, rt) -> float:
        cutoff = self.params["cutoff"]

        def sort(arr):
            if len(arr) <= cutoff:
                return np.sort(arr)
            mid = len(arr) // 2
            left = rt.fork(sort, arr[:mid])
            right = rt.fork(sort, arr[mid:])
            a, b = left.join(), right.join()
            merged = np.empty(len(arr), dtype=arr.dtype)
            # classic two-finger merge, vectorised via searchsorted
            idx = np.searchsorted(a, b)
            merged[idx + np.arange(len(b))] = b
            mask = np.ones(len(arr), dtype=bool)
            mask[idx + np.arange(len(b))] = False
            merged[mask] = a
            return merged

        result = sort(self.data)
        assert (np.diff(result) >= 0).all()
        return float(result[:: max(1, len(result) // 64)].sum())

    def verify(self, result: float) -> bool:
        import math

        return math.isclose(result, self.expected_checksum, rel_tol=1e-12)


@register_benchmark
class FanInReduce(Benchmark):
    name = "FanInReduce"
    paper_params = {"leaves": 1 << 14}

    @classmethod
    def default_params(cls) -> dict[str, Any]:
        return {"leaves": 64, "seed": 3}

    def build(self) -> None:
        if self.params["leaves"] & (self.params["leaves"] - 1):
            raise ValueError("leaves must be a power of two")
        rng = np.random.default_rng(self.params["seed"])
        self.values = rng.integers(0, 1000, size=self.params["leaves"])
        self.expected = int(self.values.sum())
        super().build()

    def run(self, rt) -> int:
        # round 0: leaves; round k: pairs of round k-1, joined by tasks
        # that are *younger siblings* of their inputs (all forked by the
        # root, in round order)
        futures = [rt.fork(lambda v=int(v): v) for v in self.values]
        while len(futures) > 1:
            futures = [
                rt.fork(lambda x=futures[i], y=futures[i + 1]: x.join() + y.join())
                for i in range(0, len(futures), 2)
            ]
        return futures[0].join()

    def verify(self, result: int) -> bool:
        return result == self.expected
