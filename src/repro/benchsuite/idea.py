"""The IDEA block cipher, vectorised with NumPy.

The Java Grande Forum *Crypt* benchmark (which Section 6.1 adapts to
Habanero Java) encrypts and decrypts a byte buffer with IDEA
(International Data Encryption Algorithm): 8.5 rounds of 16-bit modular
arithmetic over 64-bit blocks with a 52-subkey schedule.

This module is a faithful, self-contained reimplementation.  All block
lanes are processed simultaneously with NumPy — the analogue of JGF's
tight scalar loop — so a worker task's kernel is one vectorised call.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "expand_key",
    "invert_key",
    "crypt_blocks",
    "encrypt",
    "decrypt",
    "random_key",
]

_MOD = 0x10001  # 2^16 + 1, the multiplicative modulus
_MASK = 0xFFFF


def random_key(rng: np.random.Generator) -> bytes:
    """A random 128-bit user key."""
    return rng.integers(0, 256, size=16, dtype=np.uint8).tobytes()


def expand_key(user_key: bytes) -> np.ndarray:
    """Expand a 16-byte user key into the 52 16-bit encryption subkeys.

    The schedule fills the first 8 subkeys with the user key and then
    repeatedly rotates the 128-bit key left by 25 bits.
    """
    if len(user_key) != 16:
        raise ValueError("IDEA user key must be exactly 16 bytes")
    subkeys = np.zeros(52, dtype=np.int64)
    for i in range(8):
        subkeys[i] = (user_key[2 * i] << 8) | user_key[2 * i + 1]
    # The classic 25-bit rotation, expressed via the reference
    # implementation's index arithmetic.
    for i in range(8, 52):
        if (i & 7) < 6:
            lo, hi = i - 7, i - 6
        elif (i & 7) == 6:
            lo, hi = i - 7, i - 14
        else:
            lo, hi = i - 15, i - 14
        subkeys[i] = (((subkeys[lo] & 127) << 9) | (subkeys[hi] >> 7)) & _MASK
    return subkeys


def _mul_inv(x: int) -> int:
    """Multiplicative inverse mod 2^16 + 1 under IDEA's 0 ≡ 2^16 convention."""
    if x <= 1:
        return x  # 0 and 1 are self-inverse
    return pow(x, _MOD - 2, _MOD)


def _add_inv(x: int) -> int:
    """Additive inverse mod 2^16."""
    return (0x10000 - x) & _MASK


def invert_key(enc_key: np.ndarray) -> np.ndarray:
    """Compute the 52 decryption subkeys from the encryption subkeys.

    The schedule is reversed group-wise; in the seven middle rounds the
    two addition subkeys are swapped because the round function itself
    swaps the middle words.
    """
    ek = [int(x) for x in enc_key]
    out: list[int] = []  # built back-to-front
    it = iter(ek)

    def grab() -> int:
        return next(it)

    # output transform of decryption <- input transform of encryption
    t1 = _mul_inv(grab())
    t2 = _add_inv(grab())
    t3 = _add_inv(grab())
    out.extend([_mul_inv(grab()), t3, t2, t1])
    for _ in range(7):
        t1 = grab()
        out.append(grab())
        out.append(t1)
        t1 = _mul_inv(grab())
        t2 = _add_inv(grab())
        t3 = _add_inv(grab())
        out.extend([_mul_inv(grab()), t2, t3, t1])  # note the t2/t3 swap
    t1 = grab()
    out.append(grab())
    out.append(t1)
    t1 = _mul_inv(grab())
    t2 = _add_inv(grab())
    t3 = _add_inv(grab())
    out.extend([_mul_inv(grab()), t3, t2, t1])
    out.reverse()
    return np.array(out, dtype=np.int64)


def _mul(a: np.ndarray, b: int) -> np.ndarray:
    """IDEA multiplication mod 2^16+1 with 0 representing 2^16, vectorised."""
    aa = np.where(a == 0, 0x10000, a).astype(np.int64)
    bb = 0x10000 if b == 0 else b
    prod = (aa * bb) % _MOD
    return np.where(prod == 0x10000, 0, prod)


def crypt_blocks(data: np.ndarray, subkeys: np.ndarray) -> np.ndarray:
    """Run IDEA over all 8-byte blocks of *data* (uint8 array) at once.

    *subkeys* selects the direction: encryption subkeys encrypt,
    inverted subkeys decrypt.  Returns a new uint8 array of equal length
    (which must be a multiple of 8).
    """
    if data.dtype != np.uint8:
        raise ValueError("data must be a uint8 array")
    if len(data) % 8 != 0:
        raise ValueError("data length must be a multiple of the 8-byte block")
    words = data.reshape(-1, 4, 2).astype(np.int64)
    x1 = (words[:, 0, 0] << 8) | words[:, 0, 1]
    x2 = (words[:, 1, 0] << 8) | words[:, 1, 1]
    x3 = (words[:, 2, 0] << 8) | words[:, 2, 1]
    x4 = (words[:, 3, 0] << 8) | words[:, 3, 1]
    k = [int(s) for s in subkeys]
    ki = 0
    for _ in range(8):
        x1 = _mul(x1, k[ki])
        x2 = (x2 + k[ki + 1]) & _MASK
        x3 = (x3 + k[ki + 2]) & _MASK
        x4 = _mul(x4, k[ki + 3])
        s3 = x3
        x3 = _mul(x3 ^ x1, k[ki + 4])
        s2 = x2
        x2 = _mul(((x2 ^ x4) + x3) & _MASK, k[ki + 5])
        x3 = (x3 + x2) & _MASK
        x1 = x1 ^ x2
        x4 = x4 ^ x3
        x2 = x2 ^ s3
        x3 = x3 ^ s2
        ki += 6
    # output transform; note x2/x3 enter swapped
    y1 = _mul(x1, k[48])
    y2 = (x3 + k[49]) & _MASK
    y3 = (x2 + k[50]) & _MASK
    y4 = _mul(x4, k[51])
    out = np.empty_like(words)
    for col, y in zip(range(4), (y1, y2, y3, y4)):
        out[:, col, 0] = y >> 8
        out[:, col, 1] = y & 0xFF
    return out.astype(np.uint8).reshape(-1)


def encrypt(data: np.ndarray, user_key: bytes) -> np.ndarray:
    """Encrypt a uint8 array (length a multiple of 8) with IDEA."""
    return crypt_blocks(data, expand_key(user_key))


def decrypt(data: np.ndarray, user_key: bytes) -> np.ndarray:
    """Decrypt a uint8 array previously encrypted with the same key."""
    return crypt_blocks(data, invert_key(expand_key(user_key)))
