"""Hot-path microbenchmarks for the verifier fork/join pipeline.

Unlike the Table 2 harness (whole benchmark programs on real runtimes),
this module measures the *verifier hot path itself* — ``on_fork`` /
``check_join`` / ``check_joins`` through :class:`~repro.core.verifier.Verifier`
— on four synthetic workload shapes chosen to stress different cost
terms:

* ``join-heavy`` — a balanced tree, then repeated barrier-style rounds
  in which the same waiters re-check joins against the same targets
  (the phaser/finish pattern the monotone verdict cache accelerates);
* ``fork-heavy`` — thousands of forks on a bushy tree with only a few
  checks (stresses per-fork allocation: O(1) interned node vs O(h)
  tuple copy);
* ``deep-tree`` — a degenerate chain with random order queries
  (stresses the ``Less`` walk length);
* ``wide-tree`` — a star with sibling-heavy queries (the shallow bushy
  shape real programs produce).

Every shape runs each policy through the *same* verifier code path, so
the numbers include the statistics plumbing — which is the point: this
is the per-event overhead the paper argues can stay near 1.06×.

Results serialise to ``BENCH_hotpath.json`` via :mod:`repro.analysis.io`
so every future change has a stored perf trajectory to compare against;
``benchmarks/bench_hotpath.py`` asserts the headline regression gates
(flat TJ-SP at least 2× the legacy tuple implementation on join-heavy,
and within 1.1× of KJ-VC per-event cost when the compiled kernel is in
play).  Each measurement records which kernel backend produced it
(``"c"``/``"py"`` for flat TJ-SP, ``"py"`` for everything else), so
stored trajectories from different arms are never conflated.
"""

from __future__ import annotations

import math
import random
import time
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from ..core.policy import make_policy
from ..core.verifier import Verifier

__all__ = [
    "HotpathMeasurement",
    "HOTPATH_SHAPES",
    "HOTPATH_POLICIES",
    "SHAPE_PARAMS",
    "SMOKE_PARAMS",
    "run_shape",
    "run_hotpath_suite",
    "speedup",
    "render_hotpath_table",
]

#: policies covered by the suite: the flat TJ-SP, its object and seed
#: baselines, the other TJ variants, and the KJ baselines.
HOTPATH_POLICIES = (
    "TJ-SP",
    "TJ-SP-obj",
    "TJ-SP-legacy",
    "TJ-GT",
    "TJ-JP",
    "TJ-OM",
    "KJ-VC",
    "KJ-SS",
)

#: default workload parameters per shape (kept small enough that the
#: whole suite across all policies finishes well under a minute).
SHAPE_PARAMS: dict[str, dict[str, int]] = {
    "join-heavy": {"tasks": 512, "waiters": 32, "targets": 32, "rounds": 24},
    "fork-heavy": {"tasks": 4000, "queries": 200, "window": 64},
    "deep-tree": {"tasks": 1200, "queries": 2500},
    "wide-tree": {"tasks": 3000, "queries": 4000},
}

#: tiny parameters for CI smoke runs (~seconds across all policies).
SMOKE_PARAMS: dict[str, dict[str, int]] = {
    "join-heavy": {"tasks": 128, "waiters": 12, "targets": 12, "rounds": 8},
    "fork-heavy": {"tasks": 800, "queries": 60, "window": 32},
    "deep-tree": {"tasks": 300, "queries": 500},
    "wide-tree": {"tasks": 600, "queries": 800},
}

HOTPATH_SHAPES = tuple(SHAPE_PARAMS)

_SEED = 0x7A015


@dataclass
class HotpathMeasurement:
    """All timed repetitions of one (shape, policy) cell."""

    shape: str
    policy: str
    times: list[float] = field(default_factory=list)
    events: int = 0  # verifier events (forks + join checks) per repetition
    backend: str = "py"  # the kernel that answered: "c" or "py"

    @property
    def best_time(self) -> float:
        return min(self.times) if self.times else math.nan

    @property
    def mean_time(self) -> float:
        return sum(self.times) / len(self.times) if self.times else math.nan

    @property
    def events_per_sec(self) -> float:
        best = self.best_time
        return self.events / best if best and best == best else math.nan


# ----------------------------------------------------------------------
# tree builders (all events funnel through the Verifier, stats included)
# ----------------------------------------------------------------------
def _build_balanced(verifier: Verifier, n: int) -> list:
    nodes = [verifier.on_init()]
    for k in range(1, n):
        nodes.append(verifier.on_fork(nodes[(k - 1) // 2]))
    return nodes


def _build_chain(verifier: Verifier, n: int) -> list:
    nodes = [verifier.on_init()]
    for _ in range(1, n):
        nodes.append(verifier.on_fork(nodes[-1]))
    return nodes


def _build_star(verifier: Verifier, n: int) -> list:
    nodes = [verifier.on_init()]
    root = nodes[0]
    for _ in range(1, n):
        nodes.append(verifier.on_fork(root))
    return nodes


def _build_bushy(verifier: Verifier, n: int, window: int, rng: random.Random) -> list:
    """Attach each new task to a random recent node — deepish, bushy."""
    nodes = [verifier.on_init()]
    for _ in range(1, n):
        parent = nodes[-rng.randint(1, min(window, len(nodes)))]
        nodes.append(verifier.on_fork(parent))
    return nodes


# ----------------------------------------------------------------------
# workload bodies — each returns after driving one full repetition
# ----------------------------------------------------------------------
def _run_join_heavy(verifier: Verifier, p: dict[str, int]) -> None:
    rng = random.Random(_SEED)
    nodes = _build_balanced(verifier, p["tasks"])
    waiters = rng.sample(nodes, p["waiters"])
    targets = rng.sample(nodes, p["targets"])
    for _ in range(p["rounds"]):
        for waiter in waiters:
            verifier.check_joins(waiter, targets)


def _run_fork_heavy(verifier: Verifier, p: dict[str, int]) -> None:
    rng = random.Random(_SEED)
    nodes = _build_bushy(verifier, p["tasks"], p["window"], rng)
    for _ in range(p["queries"]):
        verifier.check_join(rng.choice(nodes), rng.choice(nodes))


def _run_deep_tree(verifier: Verifier, p: dict[str, int]) -> None:
    rng = random.Random(_SEED)
    nodes = _build_chain(verifier, p["tasks"])
    pairs = [(rng.choice(nodes), rng.choice(nodes)) for _ in range(p["queries"])]
    check = verifier.check_join
    for a, b in pairs:
        check(a, b)


def _run_wide_tree(verifier: Verifier, p: dict[str, int]) -> None:
    rng = random.Random(_SEED)
    nodes = _build_star(verifier, p["tasks"])
    pairs = [(rng.choice(nodes), rng.choice(nodes)) for _ in range(p["queries"])]
    check = verifier.check_join
    for a, b in pairs:
        check(a, b)


_SHAPE_RUNNERS: dict[str, Callable[[Verifier, dict[str, int]], None]] = {
    "join-heavy": _run_join_heavy,
    "fork-heavy": _run_fork_heavy,
    "deep-tree": _run_deep_tree,
    "wide-tree": _run_wide_tree,
}


# ----------------------------------------------------------------------
# the suite
# ----------------------------------------------------------------------
def run_shape(
    shape: str,
    policy: str,
    *,
    repetitions: int = 3,
    warmup: int = 1,
    params: Optional[dict[str, int]] = None,
) -> HotpathMeasurement:
    """Measure one (shape, policy) cell: warmups then timed repetitions.

    Every repetition builds a fresh policy + verifier, so caches start
    cold each time and cross-repetition state cannot flatter a policy;
    within a repetition, repeated joins (the join-heavy rounds) hit the
    caches exactly as a real barrier loop would.
    """
    runner = _SHAPE_RUNNERS[shape]
    p = dict(params if params is not None else SHAPE_PARAMS[shape])
    m = HotpathMeasurement(shape=shape, policy=policy)
    for i in range(warmup + repetitions):
        verifier = Verifier(make_policy(policy))
        t0 = time.perf_counter()
        runner(verifier, p)
        elapsed = time.perf_counter() - t0
        if i >= warmup:
            m.times.append(elapsed)
    stats = verifier.stats
    m.events = stats.forks + stats.joins_checked
    m.backend = getattr(verifier.policy, "backend", "py")
    return m


def run_hotpath_suite(
    *,
    policies: Sequence[str] = HOTPATH_POLICIES,
    shapes: Sequence[str] = HOTPATH_SHAPES,
    repetitions: int = 3,
    warmup: int = 1,
    params: Optional[dict[str, dict[str, int]]] = None,
) -> list[HotpathMeasurement]:
    """Run the full shape x policy grid; returns one measurement per cell."""
    table = params if params is not None else SHAPE_PARAMS
    return [
        run_shape(
            shape,
            policy,
            repetitions=repetitions,
            warmup=warmup,
            params=table.get(shape),
        )
        for shape in shapes
        for policy in policies
    ]


def speedup(
    measurements: Sequence[HotpathMeasurement],
    shape: str,
    policy: str = "TJ-SP",
    baseline: str = "TJ-SP-legacy",
) -> float:
    """Best-time speedup factor of *policy* over *baseline* on *shape*."""
    by_key = {(m.shape, m.policy): m for m in measurements}
    return by_key[(shape, baseline)].best_time / by_key[(shape, policy)].best_time


def render_hotpath_table(measurements: Sequence[HotpathMeasurement]) -> str:
    """ASCII summary: one row per cell, with the TJ-SP speedup column."""
    lines = [
        f"{'shape':<12} {'policy':<14} {'backend':>7} {'best ms':>9} "
        f"{'mean ms':>9} {'events':>8} {'Mev/s':>7}",
        "-" * 72,
    ]
    for m in measurements:
        lines.append(
            f"{m.shape:<12} {m.policy:<14} {m.backend:>7} "
            f"{m.best_time * 1e3:>9.2f} {m.mean_time * 1e3:>9.2f} "
            f"{m.events:>8} {m.events_per_sec / 1e6:>7.2f}"
        )
    shapes = sorted({m.shape for m in measurements})
    have = {(m.shape, m.policy) for m in measurements}
    factors = []
    for shape in shapes:
        if (shape, "TJ-SP") in have and (shape, "TJ-SP-legacy") in have:
            factors.append(f"{shape}: {speedup(measurements, shape):.2f}x")
    if factors:
        lines.append("")
        lines.append("TJ-SP speedup over TJ-SP-legacy (best times): " + ", ".join(factors))
    return "\n".join(lines)
