"""One-shot reproduction report: every table/figure plus verdicts.

``build_report`` runs the whole evaluation (scaled parameters) and
renders a single markdown document — the programmatic equivalent of the
artifact appendix's "a second script parses the data to produce
aggregate results and plots".  Exposed on the CLI as
``python -m repro.tools.cli report``.
"""

from __future__ import annotations

import platform
import sys
from dataclasses import dataclass
from typing import Optional, Sequence

from .figure2 import render_figure2
from .stats import geometric_mean
from .table1 import measure_policy_costs, render_table1
from .table2 import overhead_summary, render_table2
from ..benchsuite import ALL_BENCHMARKS, Harness
from ..formal.generators import balanced_fork_trace, chain_fork_trace, star_fork_trace

__all__ = ["ReportConfig", "build_report"]


@dataclass
class ReportConfig:
    repetitions: int = 3
    table1_sizes: Sequence[int] = (256, 2048)
    policies: Sequence[str] = ("KJ-VC", "KJ-SS", "TJ-SP")
    benchmark_params: Optional[dict] = None

    DEFAULT_PARAMS = {
        "Jacobi": {"n": 96, "blocks": 4, "iterations": 4},
        "Smith-Waterman": {"length": 240, "chunks": 6},
        "Crypt": {"size_bytes": 256 * 1024, "tasks": 128},
        "Strassen": {"n": 128, "cutoff": 64},
        "Series": {"coefficients": 300, "samples": 100},
        "NQueens": {"n": 8, "cutoff": 3},
    }


def _verdicts(reports, policies) -> list[str]:
    """The paper's qualitative claims, checked against this run."""
    summary = overhead_summary(reports, list(policies))
    lines = []

    def verdict(ok: bool, text: str) -> None:
        lines.append(f"- {'REPRODUCED' if ok else 'NOT REPRODUCED'}: {text}")

    best_time = min(summary, key=lambda p: summary[p]["time"])
    best_mem = min(summary, key=lambda p: summary[p]["memory"])
    verdict(
        best_time == "TJ-SP",
        f"TJ-SP has the best geometric-mean time overhead (best: {best_time})",
    )
    verdict(
        best_mem == "TJ-SP",
        f"TJ-SP has the best geometric-mean memory overhead (best: {best_mem})",
    )
    nqueens = next(r for r in reports if r.name == "NQueens")
    others = [r for r in reports if r.name != "NQueens"]
    verdict(
        all(
            m.false_positives == 0
            for r in reports
            for p, m in r.policies.items()
            if p.startswith("TJ")
        ),
        "TJ never triggers the cycle-detection fallback on any benchmark",
    )
    verdict(
        any(m.false_positives > 0 for p, m in nqueens.policies.items() if p.startswith("KJ"))
        and all(
            m.false_positives == 0
            for r in others
            for p, m in r.policies.items()
            if p.startswith("KJ")
        ),
        "NQueens is the only benchmark that violates KJ",
    )
    kj_mem = [summary[p]["memory"] for p in policies if p.startswith("KJ")]
    verdict(
        summary.get("TJ-SP", {}).get("memory", 9e9) <= min(kj_mem) + 0.05,
        "TJ-SP's memory footprint is the lowest of the evaluated verifiers",
    )
    return lines


def build_report(config: Optional[ReportConfig] = None) -> str:
    """Run the evaluation and return the markdown report."""
    config = config or ReportConfig()
    params = config.benchmark_params or ReportConfig.DEFAULT_PARAMS

    points = []
    for policy in ("KJ-VC", "KJ-SS", "KJ-CC", "TJ-GT", "TJ-JP", "TJ-SP", "TJ-OM"):
        for shape, gen in (
            ("chain", chain_fork_trace),
            ("star", star_fork_trace),
            ("balanced", balanced_fork_trace),
        ):
            for n in config.table1_sizes:
                points.append(measure_policy_costs(policy, shape, gen(n), queries=400))

    harness = Harness(
        repetitions=config.repetitions, warmup=1, policies=tuple(config.policies)
    )
    overrides = {k.replace("-", "_"): v for k, v in params.items()}
    reports = harness.measure_suite(ALL_BENCHMARKS, **overrides)

    summary = overhead_summary(reports, list(config.policies))
    parts = [
        "# Transitive Joins — reproduction report",
        "",
        f"Python {sys.version.split()[0]} on {platform.platform()}; "
        f"{config.repetitions} repetitions per cell after 1 warmup.",
        "",
        "## Verdicts",
        "",
        *_verdicts(reports, config.policies),
        "",
        "## Table 1 — empirical verifier complexity",
        "",
        "```",
        render_table1(points),
        "```",
        "",
        "## Table 2 — verification overheads",
        "",
        "```",
        render_table2(reports),
        "```",
        "",
        "## Figure 2 — execution times (95% CI)",
        "",
        "```",
        render_figure2(reports),
        "```",
        "",
        "## Fallback activity",
        "",
    ]
    for r in reports:
        cells = ", ".join(
            f"{p}: {m.false_positives}" for p, m in r.policies.items()
        )
        parts.append(f"- {r.name}: {cells}")
    geo = ", ".join(
        f"{p} time {summary[p]['time']:.2f}x / mem {summary[p]['memory']:.2f}x"
        for p in config.policies
    )
    parts += ["", f"Geometric means: {geo}", ""]
    return "\n".join(parts)
