"""Deep (recursive) memory measurement of verifier data structures.

``space_units`` counts abstract slots — good for asymptotic comparisons,
blind to constant factors.  This module measures real bytes: a recursive
``sys.getsizeof`` walk over an object graph with cycle protection and
support for ``__slots__``-based classes (which all verifier vertex types
use).  The Table 1 experiment uses it to report bytes-per-task, and the
property tests sanity-check it against known structures.
"""

from __future__ import annotations

import sys
from typing import Any, Iterable, Optional

__all__ = ["deep_size_of", "policy_bytes_per_task"]

_ATOMIC = (type(None), bool, int, float, complex, str, bytes, bytearray, range)


def _slot_values(obj: Any) -> Iterable[Any]:
    for klass in type(obj).__mro__:
        for name in getattr(klass, "__slots__", ()):
            if name in ("__weakref__", "__dict__"):
                continue
            try:
                yield getattr(obj, name)
            except AttributeError:
                continue


def deep_size_of(obj: Any, *, _seen: Optional[set[int]] = None) -> int:
    """Total bytes reachable from *obj*, each object counted once.

    Follows containers (dict/list/tuple/set and friends), instance
    ``__dict__`` s and ``__slots__``.  Atomic immutables are counted but
    not descended into.  Shared sub-objects are charged to the first
    reference encountered, so the sum over disjoint roots never double
    counts.
    """
    seen = _seen if _seen is not None else set()
    oid = id(obj)
    if oid in seen:
        return 0
    seen.add(oid)
    size = sys.getsizeof(obj)
    if isinstance(obj, _ATOMIC):
        return size
    if isinstance(obj, dict):
        for k, v in obj.items():
            size += deep_size_of(k, _seen=seen)
            size += deep_size_of(v, _seen=seen)
        return size
    if isinstance(obj, (list, tuple, set, frozenset)):
        for item in obj:
            size += deep_size_of(item, _seen=seen)
        return size
    d = getattr(obj, "__dict__", None)
    if d is not None:
        size += deep_size_of(d, _seen=seen)
    for value in _slot_values(obj):
        size += deep_size_of(value, _seen=seen)
    return size


def policy_bytes_per_task(policy: Any, vertices: Iterable[Any]) -> float:
    """Mean bytes retained per task by *policy*'s vertex structures.

    Measures the whole reachable graph from all vertices at once (shared
    state like TJ-GT's tree or KJ-VC's interned sets is counted once) and
    divides by the vertex count.
    """
    vertices = list(vertices)
    if not vertices:
        raise ValueError("no vertices to measure")
    seen: set[int] = set()
    total = 0
    for v in vertices:
        total += deep_size_of(v, _seen=seen)
    return total / len(vertices)
