"""Result aggregation: regeneration of Table 1, Table 2 and Figure 2."""

# importing the policy packages guarantees the registry is populated for
# anyone who imports the analysis layer directly
from .. import core as _core  # noqa: F401
from .. import kj as _kj  # noqa: F401

from .figure2 import figure2_data, render_figure2
from .stats import confidence_interval, geometric_mean, mean, stdev, t_critical
from .table1 import (
    TABLE1_BOUNDS,
    ComplexityPoint,
    measure_policy_costs,
    render_table1,
)
from .figure2_svg import render_figure2_svg
from .hotpath import (
    HOTPATH_POLICIES,
    HOTPATH_SHAPES,
    HotpathMeasurement,
    render_hotpath_table,
    run_hotpath_suite,
    speedup,
)
from .io import (
    load_hotpath,
    load_reports,
    load_runtime,
    reports_from_json,
    reports_to_json,
    save_hotpath,
    save_reports,
    save_runtime,
)
from .runtime_overhead import (
    RUNTIME_POLICIES,
    JoinChainMeasurement,
    RuntimeOverheadResult,
    join_wakeup_speedup,
    render_runtime_table,
    run_runtime_suite,
)
from .memsize import deep_size_of, policy_bytes_per_task
from .report import ReportConfig, build_report
from .table2 import overhead_summary, render_table2

__all__ = [
    "deep_size_of",
    "policy_bytes_per_task",
    "build_report",
    "ReportConfig",
    "render_figure2_svg",
    "reports_to_json",
    "reports_from_json",
    "save_reports",
    "load_reports",
    "mean",
    "stdev",
    "geometric_mean",
    "t_critical",
    "confidence_interval",
    "render_table2",
    "overhead_summary",
    "render_figure2",
    "figure2_data",
    "render_table1",
    "measure_policy_costs",
    "ComplexityPoint",
    "TABLE1_BOUNDS",
    "HotpathMeasurement",
    "HOTPATH_POLICIES",
    "HOTPATH_SHAPES",
    "run_hotpath_suite",
    "render_hotpath_table",
    "speedup",
    "save_hotpath",
    "load_hotpath",
    "save_runtime",
    "load_runtime",
    "JoinChainMeasurement",
    "RuntimeOverheadResult",
    "RUNTIME_POLICIES",
    "run_runtime_suite",
    "render_runtime_table",
    "join_wakeup_speedup",
]
