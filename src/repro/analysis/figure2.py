"""Figure 2: absolute execution times per policy with 95% confidence
intervals, rendered as a monospace horizontal bar chart.

Each benchmark gets one group of bars (baseline + one per policy); the
``[`` ``]`` brackets mark the CI around the mean ``|`` marker.
"""

from __future__ import annotations

from typing import Sequence

from .stats import confidence_interval
from ..benchsuite.harness import BenchmarkReport

__all__ = ["figure2_data", "render_figure2"]


def figure2_data(
    reports: Sequence[BenchmarkReport],
) -> dict[str, dict[str, tuple[float, float]]]:
    """{benchmark: {config: (mean_seconds, ci_halfwidth)}}."""
    out: dict[str, dict[str, tuple[float, float]]] = {}
    for r in reports:
        group = {"baseline": confidence_interval(r.baseline.times)}
        for p, m in r.policies.items():
            group[p] = confidence_interval(m.times)
        out[r.name] = group
    return out


def _bar(mean: float, half: float, scale: float, width: int) -> str:
    """A bar of '#' to the mean, with CI brackets where they land."""
    chars = [" "] * width
    mean_i = min(width - 1, int(round(mean * scale)))
    for i in range(mean_i + 1):
        chars[i] = "#"
    lo_i = max(0, min(width - 1, int(round((mean - half) * scale))))
    hi_i = max(0, min(width - 1, int(round((mean + half) * scale))))
    if half > 0:
        chars[lo_i] = "["
        chars[hi_i] = "]"
    chars[mean_i] = "|"
    return "".join(chars)


def render_figure2(reports: Sequence[BenchmarkReport], width: int = 48) -> str:
    """Format per-configuration execution times as an ASCII chart."""
    if not reports:
        raise ValueError("no reports to render")
    data = figure2_data(reports)
    all_means = [
        mu + half for group in data.values() for (mu, half) in group.values()
    ]
    top = max(all_means) or 1.0
    scale = (width - 1) / top
    label_w = max(len(c) for g in data.values() for c in g) + 2
    lines = [
        f"Execution time, mean of repetitions with 95% CI "
        f"(full scale = {top:.3f}s)"
    ]
    for name, group in data.items():
        lines.append("")
        lines.append(f"{name}:")
        for config, (mu, half) in group.items():
            bar = _bar(mu, half, scale, width)
            lines.append(
                f"  {config:<{label_w}} {bar} {mu:.4f}s ± {half:.4f}"
            )
    return "\n".join(lines)
