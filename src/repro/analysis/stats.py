"""Statistics helpers for the evaluation (Section 6.2).

Mean, sample standard deviation, geometric mean of overhead factors, and
Student-t 95% confidence intervals (the error bars of Figure 2).  scipy
is used for the t quantile when present; otherwise a small critical-value
table covers the low sample counts the harness produces.
"""

from __future__ import annotations

import math
from typing import Sequence

__all__ = ["mean", "stdev", "geometric_mean", "t_critical", "confidence_interval"]

# two-sided 95% t critical values for df = 1..30 (then ~normal)
_T95 = [
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
    2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
    2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
]


def mean(xs: Sequence[float]) -> float:
    if not xs:
        raise ValueError("mean of empty sequence")
    return sum(xs) / len(xs)


def stdev(xs: Sequence[float]) -> float:
    """Sample standard deviation (n-1 denominator); 0 for n < 2."""
    if len(xs) < 2:
        return 0.0
    mu = mean(xs)
    return math.sqrt(sum((x - mu) ** 2 for x in xs) / (len(xs) - 1))


def geometric_mean(xs: Sequence[float]) -> float:
    """Geometric mean of positive factors (Table 2's summary rows)."""
    if not xs:
        raise ValueError("geometric mean of empty sequence")
    if any(x <= 0 for x in xs):
        raise ValueError("geometric mean requires positive values")
    return math.exp(sum(math.log(x) for x in xs) / len(xs))


def t_critical(df: int, confidence: float = 0.95) -> float:
    """Two-sided Student-t critical value."""
    if df < 1:
        raise ValueError("degrees of freedom must be positive")
    try:  # scipy gives exact quantiles for any confidence level
        from scipy import stats as _st

        return float(_st.t.ppf(0.5 + confidence / 2.0, df))
    except ImportError:  # pragma: no cover - scipy is present in CI
        if not math.isclose(confidence, 0.95):
            raise
        return _T95[df - 1] if df <= len(_T95) else 1.960


def confidence_interval(
    xs: Sequence[float], confidence: float = 0.95
) -> tuple[float, float]:
    """(mean, half-width) of the two-sided CI for the population mean."""
    mu = mean(xs)
    if len(xs) < 2:
        return mu, 0.0
    half = t_critical(len(xs) - 1, confidence) * stdev(xs) / math.sqrt(len(xs))
    return mu, half
