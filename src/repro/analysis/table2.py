"""Table 2: runtime and memory overhead factors per benchmark and policy.

Renders the same layout as the paper — per benchmark, an absolute
baseline row pair (seconds / bytes) and overhead factors per verifier,
closing with the geometric-mean summary rows.  Best factor per row is
marked like the paper's bold face (here with a ``*``).
"""

from __future__ import annotations

from typing import Sequence

from .stats import geometric_mean
from ..benchsuite.harness import BenchmarkReport

__all__ = ["render_table2", "overhead_summary"]


def _fmt_factor(x: float, best: bool) -> str:
    s = f"{x:.2f}x"
    return f"*{s}" if best else f" {s}"


def _fmt_bytes(n: int) -> str:
    for unit in ("B", "KB", "MB", "GB"):
        if n < 1024 or unit == "GB":
            return f"{n:.3g} {unit}" if unit != "B" else f"{n} B"
        n /= 1024
    return f"{n} GB"  # pragma: no cover


def overhead_summary(
    reports: Sequence[BenchmarkReport], policies: Sequence[str]
) -> dict[str, dict[str, float]]:
    """Geometric-mean time/memory overhead per policy across benchmarks."""
    out: dict[str, dict[str, float]] = {}
    for p in policies:
        out[p] = {
            "time": geometric_mean([r.time_overhead(p) for r in reports]),
            "memory": geometric_mean([r.memory_overhead(p) for r in reports]),
        }
    return out


def render_table2(reports: Sequence[BenchmarkReport]) -> str:
    """Format a list of benchmark reports as the paper's Table 2."""
    if not reports:
        raise ValueError("no reports to render")
    policies = list(reports[0].policies)
    width = max(len(r.name) for r in reports) + 2
    head = (
        f"{'Benchmark':<{width}} {'Time(s)/Mem':>12} "
        + " ".join(f"{p:>9}" for p in policies)
    )
    lines = [head, "-" * len(head)]
    for r in reports:
        t_factors = {p: r.time_overhead(p) for p in policies}
        m_factors = {p: r.memory_overhead(p) for p in policies}
        best_t = min(t_factors.values())
        best_m = min(m_factors.values())
        lines.append(
            f"{r.name:<{width}} {r.baseline.mean_time:>11.4f}s "
            + " ".join(
                f"{_fmt_factor(t_factors[p], t_factors[p] == best_t):>9}"
                for p in policies
            )
        )
        lines.append(
            f"{'':<{width}} {_fmt_bytes(r.baseline.peak_bytes):>12} "
            + " ".join(
                f"{_fmt_factor(m_factors[p], m_factors[p] == best_m):>9}"
                for p in policies
            )
        )
    lines.append("-" * len(head))
    summary = overhead_summary(reports, policies)
    best_t = min(summary[p]["time"] for p in policies)
    best_m = min(summary[p]["memory"] for p in policies)
    lines.append(
        f"{'Geom. mean':<{width}} {'time':>12} "
        + " ".join(
            f"{_fmt_factor(summary[p]['time'], summary[p]['time'] == best_t):>9}"
            for p in policies
        )
    )
    lines.append(
        f"{'overhead':<{width}} {'memory':>12} "
        + " ".join(
            f"{_fmt_factor(summary[p]['memory'], summary[p]['memory'] == best_m):>9}"
            for p in policies
        )
    )
    return "\n".join(lines)
