"""End-to-end runtime overhead benchmarks (``BENCH_runtime.json``).

Where :mod:`repro.analysis.hotpath` measures the verifier in isolation,
this module measures what the paper actually reports: whole programs on
real runtimes, with the supervision layer in the loop.  Two instruments:

* **join-latency microshape** — a fork chain of depth *d* whose leaf
  sleeps briefly; every other task immediately joins its child, so the
  unwind is a cascade of blocked joins where each wakeup gates the next.
  The shape is run under two wait protocols: the live event-driven one
  (targeted wakeups; :func:`~repro.runtime.supervisor.wait_for_future`)
  and the poll-loop baseline it replaced
  (:func:`~repro.runtime.supervisor.wait_for_future_polling`, which
  observes every condition only at 1 ms → 50 ms backoff ticks).  Under
  polling each unwind level eats up to a full tick of wakeup lag and the
  lags *compound* up the chain; under targeted wakeups the whole unwind
  costs microseconds beyond the leaf sleep.  The headline regression
  gate asserts the event protocol is at least 2× faster end-to-end on
  this shape (in practice it is far more).

* **journal overhead on the fork chain** — the same fork-chain
  microshape (with a short leaf sleep) run with the crash-consistent
  trace journal off and on.  The chain is the journal's *durability*
  worst case: every level blocks, so every level pays a critical
  "flush before you sleep" ``block`` record plus fork/verdict/unblock/
  join records.  The gate bounds the journal-on/journal-off median-time
  factor at 1.25×; repetitions interleave the two modes so machine-load
  drift cancels out of the ratio.  (The journal's per-record CPU cost
  is priced separately: the append path is f-string formatting plus a
  list append — see :meth:`repro.tools.journal.TraceJournal._emit` —
  which keeps even record-dense fork fans near a 1.2× factor.)

* **Table-2-style overhead configs** — small configurations of the
  benchsuite programs run with ``policy=None`` against each verified
  policy through :class:`~repro.benchsuite.harness.Harness`, reported as
  per-benchmark and geomean best-time overhead factors.  This is the
  number the paper's credibility rests on (1.06× geomean for TJ-SP at
  paper scale); the gate keeps the smoke configuration under a stated
  bound so runtime-layer regressions fail PRs even when the verifier
  microbenchmarks stay flat.

* **telemetry overhead** — the fork-chain and a join-heavy fan shape run
  under three interleaved telemetry arms: ``off`` (no session active —
  every instrumentation site is one ``is None`` test), ``metrics``
  (counters + histograms, no tracer), and ``full`` (metrics + span
  tracing into the ring buffer).  Gates: ``metrics``/``off`` median
  factor ≤ 1.05× and ``full``/``off`` ≤ 1.25× on every shape
  (``benchmarks/bench_obs_overhead.py``).  Arms interleave per
  repetition for the same drift-cancellation reason as the journal
  instrument; the qualitative "off is free" claim is separately pinned
  by the tracemalloc test in ``tests/obs/``.

* **remote-verification soak** — an in-process verification sidecar
  (:mod:`repro.service`) serving one client that round-trips a large
  join budget (≥100k at bench scale) through ``check_joins`` batches
  over real TCP, with the client-process RSS sampled before/during/
  after.  The gate (``benchmarks/bench_service.py``) asserts the join
  budget completed with zero degradations and that RSS stayed flat —
  the client's replay buffer must be ack-pruned and the server's
  per-session state must not grow with traffic volume.

Results serialise to ``BENCH_runtime.json`` via :mod:`repro.analysis.io`;
``benchmarks/bench_runtime_overhead.py`` asserts the gates and
``python -m repro.tools.cli bench-runtime`` produces the same file from
the command line.
"""

from __future__ import annotations

import math
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, Optional, Sequence

from ..benchsuite import make_benchmark
from ..benchsuite.harness import BenchmarkReport, Harness, PolicyMeasurement
from ..runtime import supervisor
from ..runtime.threaded import TaskRuntime

__all__ = [
    "WAIT_MODES",
    "JOURNAL_MODES",
    "RUNTIME_POLICIES",
    "JOIN_CHAIN_PARAMS",
    "SMOKE_JOIN_CHAIN_PARAMS",
    "JOURNAL_PARAMS",
    "SMOKE_JOURNAL_PARAMS",
    "OVERHEAD_PARAMS",
    "SMOKE_OVERHEAD_PARAMS",
    "OBS_MODES",
    "OBS_PARAMS",
    "SMOKE_OBS_PARAMS",
    "SERVICE_PARAMS",
    "SMOKE_SERVICE_PARAMS",
    "JoinChainMeasurement",
    "JournalOverheadMeasurement",
    "ObsOverheadMeasurement",
    "ServiceSoakMeasurement",
    "RuntimeOverheadResult",
    "wait_protocol",
    "measure_join_chain",
    "run_join_chain_suite",
    "join_wakeup_speedup",
    "measure_journal_mode",
    "run_journal_suite",
    "journal_overhead_factor",
    "run_obs_suite",
    "obs_overhead_factor",
    "run_service_soak",
    "run_overhead_suite",
    "best_time",
    "overhead_factor",
    "geomean_overhead",
    "run_runtime_suite",
    "render_runtime_table",
]

#: the two wait protocols the microshape compares
WAIT_MODES = ("event", "polling")

#: policies measured against the ``policy=None`` baseline
RUNTIME_POLICIES = ("TJ-SP", "TJ-OM", "KJ-VC", "KJ-SS")

#: join-latency microshape: chain depth and leaf sleep (seconds).  The
#: leaf sleep is sized so the polling baseline's backoff reaches its
#: 50 ms ceiling before the unwind starts — each level then pays a large
#: fraction of a tick, and the lags compound up the chain.
JOIN_CHAIN_PARAMS: dict[str, float] = {"depth": 8, "leaf_sleep": 0.03}

#: smaller microshape for CI smoke runs (still far beyond the 2× gate).
SMOKE_JOIN_CHAIN_PARAMS: dict[str, float] = {"depth": 6, "leaf_sleep": 0.02}

#: the journal instrument's two configurations
JOURNAL_MODES = ("off", "on")

#: journal microshape: the fork chain again, TJ-SP-verified.  Every
#: level blocks on its child, so every level writes the full record
#: complement — fork, verdict, block (critical flush), unblock, join.
JOURNAL_PARAMS: dict[str, float] = {"depth": 8, "leaf_sleep": 0.01}

#: smaller chain for CI smoke runs.
SMOKE_JOURNAL_PARAMS: dict[str, float] = {"depth": 6, "leaf_sleep": 0.005}

#: Table-2-style end-to-end configurations (benchmark name -> params);
#: kept small enough that the whole policy grid finishes in seconds.
OVERHEAD_PARAMS: dict[str, dict[str, int]] = {
    "Series": {"coefficients": 400, "samples": 100},
    "Crypt": {"size_bytes": 256 * 1024, "tasks": 128},
    "NQueens": {"n": 8, "cutoff": 3},
}

#: tiny configurations for the CI smoke gate.
SMOKE_OVERHEAD_PARAMS: dict[str, dict[str, int]] = {
    "Series": {"coefficients": 160, "samples": 40},
    "NQueens": {"n": 7, "cutoff": 3},
}

#: the three telemetry arms of the observability-overhead instrument
OBS_MODES = ("off", "metrics", "full")

#: telemetry microshapes.  The fork chain carries the same leaf sleep as
#: the journal instrument (every level blocks, so every level pays the
#: full instrumentation complement — fork/check histograms plus the
#: blocked-wait path — against a realistically-blocking program); the
#: join-heavy fan is the zero-work density shape (width x rounds noop
#: forks, all joined — maximum fork/check events per unit work).
OBS_PARAMS: dict[str, dict[str, float]] = {
    "fork_chain": {"depth": 8, "leaf_sleep": 0.01},
    "join_heavy": {"width": 16, "rounds": 4, "leaf_sleep": 0.002},
}

#: smaller shapes for CI smoke runs.
SMOKE_OBS_PARAMS: dict[str, dict[str, float]] = {
    "fork_chain": {"depth": 6, "leaf_sleep": 0.01},
    "join_heavy": {"width": 8, "rounds": 3, "leaf_sleep": 0.004},
}

#: remote-verification soak: one client, a fan of *width* tasks forked
#: once, then ``check_joins`` batches of *batch* against the sidecar
#: until *joins* verified joins have round-tripped.  The point is volume,
#: not shape: the RSS gate proves the client's replay buffer (ack-pruned)
#: and the server's per-session state stay bounded under sustained load.
SERVICE_PARAMS: dict[str, int] = {"joins": 120_000, "width": 64, "batch": 64}

#: smaller soak for CI smoke runs of ``bench-runtime``; the full ≥100k
#: gate lives in ``benchmarks/bench_service.py``.
SMOKE_SERVICE_PARAMS: dict[str, int] = {"joins": 10_000, "width": 32, "batch": 64}

#: multi-process soak: *dispatches* subtrees cross the process boundary,
#: each forking *mids* in-worker tasks that each fork *leaves* leaves —
#: the fork-heavy deep shape where >90% of joins stay on the worker-local
#: shard (only the dispatched task's own joins escalate).  Total verified
#: tasks = dispatches x (1 + mids + mids*leaves); the full parameters put
#: that above one million across >=4 workers.  *spin* is per-leaf integer
#: work so the baseline is GIL-bound compute, not pure scheduler churn.
PROCS_PARAMS: dict[str, int] = {
    "workers": 4,
    "dispatches": 1000,
    "mids": 10,
    "leaves": 100,
    "spin": 120,
}

#: tiny pool for CI smoke runs; the >=1M-task gate lives in
#: ``benchmarks/bench_procs.py``.
SMOKE_PROCS_PARAMS: dict[str, int] = {
    "workers": 2,
    "dispatches": 12,
    "mids": 3,
    "leaves": 6,
    "spin": 40,
}

#: prediction instrument: *programs* seeded chaos programs journalled
#: under ``policy=None`` feed :func:`repro.predict.predict_deadlocks`
#: (throughput = journal events/second through the whole predictor,
#: partial order + cycle search + simulator realization + per-policy
#: witness replay); the simulator-overhead arm runs a width x rounds
#: fork-fan *sim_repetitions* times on :class:`CooperativeRuntime` and
#: on a recording ``SimRuntime(seed=None)`` (FIFO — the same schedule)
#: and compares best times.
PREDICT_PARAMS: dict[str, int] = {
    "programs": 12,
    "seed": 0,
    "max_schedules": 256,
    "sim_width": 12,
    "sim_rounds": 24,
    "sim_repetitions": 5,
}

#: tiny corpus for CI smoke runs; the throughput floor lives in
#: ``benchmarks/bench_predict.py``.
SMOKE_PREDICT_PARAMS: dict[str, int] = {
    "programs": 3,
    "seed": 0,
    "max_schedules": 64,
    "sim_width": 6,
    "sim_rounds": 8,
    "sim_repetitions": 3,
}

#: distributed-telemetry instrument: the procs soak shape (dispatches x
#: mids x leaves across *workers* + sidecar) run with telemetry off and
#: with the full distributed stack on — trace propagation over the fork
#: wire, worker metrics pushes, the sidecar span ring shipped home and
#: merged.  Smaller than the throughput soak: the ratio is the product,
#: not the volume.
OBS_DIST_PARAMS: dict[str, int] = {
    "workers": 4,
    "dispatches": 200,
    "mids": 8,
    "leaves": 25,
    "spin": 120,
}

#: tiny pool for CI smoke runs (``benchmarks/bench_obs_dist.py --smoke``).
SMOKE_OBS_DIST_PARAMS: dict[str, int] = {
    "workers": 2,
    "dispatches": 16,
    "mids": 3,
    "leaves": 6,
    "spin": 40,
}


# ----------------------------------------------------------------------
# wait-protocol selection
# ----------------------------------------------------------------------
@contextmanager
def wait_protocol(mode: str) -> Iterator[None]:
    """Run the enclosed block under the given blocked-wait protocol.

    ``"event"`` is the live protocol (no change); ``"polling"`` swaps
    the supervisor's module-global ``wait_for_future`` for the poll-loop
    baseline — ``SupervisedJoinMixin._supervised_wait`` looks the global
    up at call time precisely so this benchmark can do the swap.
    Restores the live protocol on exit, exception or not.
    """
    if mode not in WAIT_MODES:
        raise ValueError(f"unknown wait mode {mode!r}; known: {WAIT_MODES}")
    if mode == "event":
        yield
        return
    original = supervisor.wait_for_future
    supervisor.wait_for_future = supervisor.wait_for_future_polling
    try:
        yield
    finally:
        supervisor.wait_for_future = original


# ----------------------------------------------------------------------
# the join-latency microshape
# ----------------------------------------------------------------------
@dataclass
class JoinChainMeasurement:
    """All timed repetitions of the chain unwind under one wait mode."""

    mode: str
    depth: int
    leaf_sleep: float
    times: list[float] = field(default_factory=list)

    @property
    def best_time(self) -> float:
        return min(self.times) if self.times else math.nan

    @property
    def mean_time(self) -> float:
        return sum(self.times) / len(self.times) if self.times else math.nan

    @property
    def unwind_overhead(self) -> float:
        """Best wall time beyond the leaf sleep — pure supervision cost."""
        return self.best_time - self.leaf_sleep


def _chain_main(rt: TaskRuntime, depth: int, leaf_sleep: float):
    """Build the chain program: depth tasks, each joining its child."""

    def level(d: int) -> int:
        if d == 0:
            time.sleep(leaf_sleep)
            return 1
        return rt.fork(level, d - 1).join() + 1

    def main() -> int:
        return rt.fork(level, depth - 1).join()

    return main


def measure_join_chain(
    mode: str,
    *,
    depth: int = 8,
    leaf_sleep: float = 0.03,
    repetitions: int = 3,
    warmup: int = 1,
) -> JoinChainMeasurement:
    """Time the chain unwind under one wait protocol.

    Every repetition uses a fresh runtime (runtimes host one root run),
    and the result is checked — a protocol that mis-delivers a wakeup
    cannot pass by being fast.
    """
    m = JoinChainMeasurement(mode=mode, depth=depth, leaf_sleep=leaf_sleep)
    with wait_protocol(mode):
        for i in range(warmup + repetitions):
            rt = TaskRuntime(policy=None)
            t0 = time.perf_counter()
            result = rt.run(_chain_main(rt, depth, leaf_sleep))
            elapsed = time.perf_counter() - t0
            if result != depth:
                raise RuntimeError(
                    f"join chain returned {result!r}, expected {depth}"
                )
            if i >= warmup:
                m.times.append(elapsed)
    return m


def run_join_chain_suite(
    *,
    params: Optional[dict[str, float]] = None,
    repetitions: int = 3,
    warmup: int = 1,
) -> dict[str, JoinChainMeasurement]:
    """The microshape under both protocols; returns mode -> measurement."""
    p = dict(params if params is not None else JOIN_CHAIN_PARAMS)
    return {
        mode: measure_join_chain(
            mode,
            depth=int(p["depth"]),
            leaf_sleep=float(p["leaf_sleep"]),
            repetitions=repetitions,
            warmup=warmup,
        )
        for mode in WAIT_MODES
    }


def join_wakeup_speedup(chain: dict[str, JoinChainMeasurement]) -> float:
    """Best-time factor of the event protocol over the polling baseline."""
    return chain["polling"].best_time / chain["event"].best_time


# ----------------------------------------------------------------------
# the journal-overhead microshape
# ----------------------------------------------------------------------
@dataclass
class JournalOverheadMeasurement:
    """All timed repetitions of the fork chain with the journal off/on."""

    mode: str
    depth: int
    leaf_sleep: float
    times: list[float] = field(default_factory=list)
    #: records the journal wrote in the last repetition (0 when off)
    records: int = 0

    @property
    def best_time(self) -> float:
        return min(self.times) if self.times else math.nan

    @property
    def median_time(self) -> float:
        """The gate's estimator: a *ratio* of two measurements is wrecked
        by a single lucky outlier in the denominator, which best-time
        admits and the median does not."""
        if not self.times:
            return math.nan
        ordered = sorted(self.times)
        mid = len(ordered) // 2
        if len(ordered) % 2:
            return ordered[mid]
        return (ordered[mid - 1] + ordered[mid]) / 2.0

    @property
    def mean_time(self) -> float:
        return sum(self.times) / len(self.times) if self.times else math.nan


def _time_chain_once(
    mode: str, depth: int, leaf_sleep: float, path: str
) -> tuple[float, int]:
    """One timed chain run; returns (elapsed, journal records written).

    The result is checked — a journal that corrupted execution could not
    pass by being fast.
    """
    import os

    rt = TaskRuntime(policy="TJ-SP", journal=path if mode == "on" else None)
    t0 = time.perf_counter()
    result = rt.run(_chain_main(rt, depth, leaf_sleep))
    elapsed = time.perf_counter() - t0
    if result != depth:
        raise RuntimeError(f"fork chain returned {result!r}, expected {depth}")
    records = 0
    if mode == "on":
        records = rt.journal.records_written if rt.journal else 0
        os.unlink(path)
    return elapsed, records


def measure_journal_mode(
    mode: str,
    *,
    depth: int = 8,
    leaf_sleep: float = 0.01,
    repetitions: int = 3,
    warmup: int = 1,
) -> JournalOverheadMeasurement:
    """Time the fork chain under TJ-SP with the trace journal off or on.

    ``"on"`` gives every repetition a fresh journal file in a temporary
    directory (a fresh runtime cannot append to a used journal anyway);
    the file is removed after timing, so the measurement includes every
    write the journal performs but keeps nothing.
    """
    if mode not in JOURNAL_MODES:
        raise ValueError(f"unknown journal mode {mode!r}; known: {JOURNAL_MODES}")
    import os
    import tempfile

    m = JournalOverheadMeasurement(mode=mode, depth=depth, leaf_sleep=leaf_sleep)
    with tempfile.TemporaryDirectory(prefix="repro-journal-bench-") as tmp:
        for i in range(warmup + repetitions):
            elapsed, records = _time_chain_once(
                mode, depth, leaf_sleep, os.path.join(tmp, f"rep{i}.jsonl")
            )
            if mode == "on":
                m.records = records
            if i >= warmup:
                m.times.append(elapsed)
    return m


def run_journal_suite(
    *,
    params: Optional[dict[str, float]] = None,
    repetitions: int = 3,
    warmup: int = 1,
) -> dict[str, JournalOverheadMeasurement]:
    """The chain under both journal modes; returns mode -> measurement.

    Repetitions are *interleaved* (off, on, off, on, ...) rather than
    run as two blocks: the gate is a ratio of the two modes, and
    machine-load drift between two sequential blocks shows up directly
    in the ratio, whereas interleaved samples see the same drift.
    """
    import os
    import tempfile

    p = dict(params if params is not None else JOURNAL_PARAMS)
    depth = int(p["depth"])
    leaf_sleep = float(p["leaf_sleep"])
    out = {
        mode: JournalOverheadMeasurement(mode=mode, depth=depth, leaf_sleep=leaf_sleep)
        for mode in JOURNAL_MODES
    }
    with tempfile.TemporaryDirectory(prefix="repro-journal-bench-") as tmp:
        for i in range(warmup + repetitions):
            for mode in JOURNAL_MODES:
                elapsed, records = _time_chain_once(
                    mode, depth, leaf_sleep, os.path.join(tmp, f"rep{i}.jsonl")
                )
                if mode == "on":
                    out[mode].records = records
                if i >= warmup:
                    out[mode].times.append(elapsed)
    return out


def journal_overhead_factor(journal: dict[str, JournalOverheadMeasurement]) -> float:
    """Median-time factor of journal-on over journal-off."""
    return journal["on"].median_time / journal["off"].median_time


# ----------------------------------------------------------------------
# the telemetry-overhead microshapes
# ----------------------------------------------------------------------
@dataclass
class ObsOverheadMeasurement:
    """Timed repetitions of one shape under one telemetry arm."""

    shape: str
    mode: str
    times: list[float] = field(default_factory=list)

    @property
    def best_time(self) -> float:
        return min(self.times) if self.times else math.nan

    @property
    def median_time(self) -> float:
        """The gate's estimator (see JournalOverheadMeasurement)."""
        if not self.times:
            return math.nan
        ordered = sorted(self.times)
        mid = len(ordered) // 2
        if len(ordered) % 2:
            return ordered[mid]
        return (ordered[mid - 1] + ordered[mid]) / 2.0

    @property
    def mean_time(self) -> float:
        return sum(self.times) / len(self.times) if self.times else math.nan


def _join_heavy_main(rt: TaskRuntime, width: int, rounds: int, leaf_sleep: float):
    """Fan shape: each round forks *width* brief tasks and joins them all."""

    def leaf() -> int:
        if leaf_sleep:
            time.sleep(leaf_sleep)
        return 1

    def main() -> int:
        total = 0
        for _ in range(rounds):
            futures = [rt.fork(leaf) for _ in range(width)]
            total += sum(f.join() for f in futures)
        return total

    return main


def _time_obs_once(shape: str, shape_params: dict, mode: str) -> float:
    """One timed, result-checked run of *shape* under telemetry arm *mode*.

    Each run gets a *fresh* session (or none): components capture the
    active session at construction, so reusing one across repetitions
    would let ring-buffer/shard state accumulate across samples.
    """
    from .. import obs

    session = None
    if mode == "metrics":
        session = obs.Telemetry(tracing=False)
    elif mode == "full":
        session = obs.Telemetry(tracing=True)
    elif mode != "off":
        raise ValueError(f"unknown obs mode {mode!r}; known: {OBS_MODES}")
    with obs.using(session):
        rt = TaskRuntime(policy="TJ-SP")
        if shape == "fork_chain":
            depth = int(shape_params["depth"])
            main = _chain_main(rt, depth, float(shape_params["leaf_sleep"]))
            expected = depth
        elif shape == "join_heavy":
            width = int(shape_params["width"])
            rounds = int(shape_params["rounds"])
            main = _join_heavy_main(
                rt, width, rounds, float(shape_params.get("leaf_sleep", 0.0))
            )
            expected = width * rounds
        else:
            raise ValueError(f"unknown obs shape {shape!r}")
        t0 = time.perf_counter()
        result = rt.run(main)
        elapsed = time.perf_counter() - t0
    if result != expected:
        raise RuntimeError(f"{shape} returned {result!r}, expected {expected}")
    return elapsed


def run_obs_suite(
    *,
    params: Optional[dict[str, dict[str, float]]] = None,
    repetitions: int = 5,
    warmup: int = 1,
) -> dict[str, dict[str, ObsOverheadMeasurement]]:
    """Both shapes under all three arms; shape -> mode -> measurement.

    Arms interleave per repetition (off, metrics, full, off, ...) so the
    gate ratios see the same machine-load drift on both sides.
    """
    p = params if params is not None else OBS_PARAMS
    out = {
        shape: {mode: ObsOverheadMeasurement(shape=shape, mode=mode) for mode in OBS_MODES}
        for shape in p
    }
    for i in range(warmup + repetitions):
        for shape, shape_params in p.items():
            for mode in OBS_MODES:
                elapsed = _time_obs_once(shape, shape_params, mode)
                if i >= warmup:
                    out[shape][mode].times.append(elapsed)
    return out


def obs_overhead_factor(
    obs: dict[str, dict[str, ObsOverheadMeasurement]], shape: str, mode: str
) -> float:
    """Median-time factor of telemetry arm *mode* over ``off`` on *shape*."""
    return obs[shape][mode].median_time / obs[shape]["off"].median_time


# ----------------------------------------------------------------------
# the remote-verification soak
# ----------------------------------------------------------------------
@dataclass
class ServiceSoakMeasurement:
    """One sustained remote-verification run against an in-process sidecar."""

    joins: int
    width: int
    batch: int
    elapsed: float
    #: client-process resident set (kB) after warmup, before the soak
    rss_before_kb: int
    #: resident set (kB) after the soak (post-gc)
    rss_after_kb: int
    #: largest resident set (kB) sampled during the soak
    rss_peak_kb: int
    degradations: int = 0
    reconciles: int = 0

    @property
    def joins_per_second(self) -> float:
        return self.joins / self.elapsed if self.elapsed else math.nan

    @property
    def rss_growth(self) -> float:
        """After/before resident-set factor — the flat-memory gate's number."""
        if not self.rss_before_kb:
            return math.nan
        return self.rss_after_kb / self.rss_before_kb


def _read_rss_kb() -> int:
    """Resident set of this process in kB (0 where /proc is unavailable)."""
    try:
        with open("/proc/self/status") as fh:
            for line in fh:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1])
    except (OSError, ValueError, IndexError):
        pass
    return 0


def run_service_soak(
    *,
    params: Optional[dict[str, int]] = None,
) -> ServiceSoakMeasurement:
    """Round-trip *joins* verified joins through a verification sidecar.

    The sidecar runs in-process (a :class:`~repro.service.server
    .VerificationServer` thread) so the measurement is pure protocol +
    session cost, with no subprocess startup noise; the client is a real
    :class:`~repro.service.client.RemoteVerifier` over real TCP.  The
    program is a fan: *width* tasks forked once, then the parent checks
    batches of *batch* children until the join budget is spent —
    ``check_joins`` round-trips dominate exactly as in a join-heavy
    workload.  RSS is sampled before, during, and after (with a gc pass
    on both ends) so the gate can assert memory stays flat: the client's
    replay buffer must be ack-pruned and the server's per-session state
    must not grow with traffic.

    Every batch's verdicts are checked — the parent joining its own
    children is TJ-permitted, so a single False means the remote verdict
    stream is wrong, and the soak fails rather than reporting a time.
    """
    import gc

    from ..service.client import RemoteVerifier
    from ..service.server import VerificationServer

    p = dict(params if params is not None else SERVICE_PARAMS)
    joins = int(p["joins"])
    width = int(p["width"])
    batch = int(p["batch"])

    with VerificationServer() as server:
        host, port = server.address
        rv = RemoteVerifier(f"remote://{host}:{port}", "TJ-SP")
        try:
            root = rv.on_init()
            children = [rv.on_fork(root) for _ in range(width)]
            # Warmup: touch every edge once so lazy allocations land
            # before the RSS baseline is taken.
            rv.check_joins(root, children)
            gc.collect()
            rss_before = _read_rss_kb()
            rss_peak = rss_before
            done = 0
            t0 = time.perf_counter()
            offset = 0
            while done < joins:
                group = [children[(offset + i) % width] for i in range(batch)]
                offset = (offset + batch) % width
                verdicts = rv.check_joins(root, group)
                if not all(verdicts):
                    raise RuntimeError(
                        "sidecar refused a parent-joins-child edge during soak"
                    )
                done += len(group)
                if done % (batch * 64) == 0:
                    rss_peak = max(rss_peak, _read_rss_kb())
            elapsed = time.perf_counter() - t0
            gc.collect()
            rss_after = _read_rss_kb()
            rss_peak = max(rss_peak, rss_after)
            snap = rv.service_snapshot()
            if snap["degraded"]:
                raise RuntimeError("client degraded during the in-process soak")
            return ServiceSoakMeasurement(
                joins=done,
                width=width,
                batch=batch,
                elapsed=elapsed,
                rss_before_kb=rss_before,
                rss_after_kb=rss_after,
                rss_peak_kb=rss_peak,
                degradations=snap["degradations"],
                reconciles=snap["reconciles"],
            )
        finally:
            rv.close()


# ----------------------------------------------------------------------
# the multi-process soak
# ----------------------------------------------------------------------
def _procs_soak_leaf(x: int, spin: int) -> int:
    """Per-leaf integer work (module level: it crosses processes)."""
    acc = x
    for _ in range(spin):
        acc = (acc * 2654435761 + 97) % 1000003
    return acc


def _procs_soak_mid(rt, base: int, leaves: int, spin: int) -> int:
    futs = [rt.fork(_procs_soak_leaf, base + i, spin) for i in range(leaves)]
    return sum(rt.join_batch(futs))


def _procs_soak_subtree(rt, base: int, mids: int, leaves: int, spin: int) -> int:
    # In-worker forks are plain TaskRuntime forks, so the engine rides
    # along as an explicit argument.
    futs = [
        rt.fork(_procs_soak_mid, rt, base + 1000 * m, leaves, spin)
        for m in range(mids)
    ]
    return sum(rt.join_batch(futs))


@dataclass
class ProcsSoakMeasurement:
    """One multi-process soak against the single-process-threaded baseline.

    Both arms run the identical fork-heavy deep shape under full TJ-SP
    verification; *speedup* compares verified tasks/second.  The CPU
    budget is recorded honestly: on a box with fewer cores than
    ``workers + 1`` processes the multi-process arm cannot exceed the
    baseline (it pays IPC for no parallelism), so gates must condition
    on :attr:`multi_core`.
    """

    tasks: int
    workers: int
    dispatches: int
    mids: int
    leaves: int
    spin: int
    elapsed: float
    baseline_tasks: int
    baseline_elapsed: float
    cpu_count: int
    spawn_paths: str
    local_joins: int
    cross_joins: int
    degraded_joins: int
    escalation_ratio: float
    worker_deaths: int
    tasks_redispatched: int
    #: subtree results that disagreed with the baseline — must be 0
    divergences: int

    @property
    def tasks_per_second(self) -> float:
        return self.tasks / self.elapsed if self.elapsed else math.nan

    @property
    def baseline_tasks_per_second(self) -> float:
        if not self.baseline_elapsed:
            return math.nan
        return self.baseline_tasks / self.baseline_elapsed

    @property
    def speedup(self) -> float:
        """Verified tasks/s, multi-process over single-process threaded."""
        base = self.baseline_tasks_per_second
        return self.tasks_per_second / base if base else math.nan

    @property
    def multi_core(self) -> bool:
        """Can every process (workers + parent) own a core?"""
        return self.cpu_count >= self.workers + 1


def run_procs_soak(
    *,
    params: Optional[dict[str, int]] = None,
    spawn_paths: str = "auto",
    sidecar: Optional[str] = None,
) -> ProcsSoakMeasurement:
    """Soak the multi-process runtime and measure its aggregate throughput.

    Runs the deep fork-heavy shape twice — single-process threaded (the
    baseline) and across a :class:`~repro.runtime.procs.ProcessRuntime`
    pool — comparing every subtree result, then reports verified-task
    throughput for both arms plus the merged join-resolution split.  The
    shape is the local-fast-path design point: of each subtree's
    ``mids + mids*leaves`` joins only the ``mids`` performed by the
    dispatched task itself escalate, so >90% of joins resolve on the
    worker-local shard without synchronisation.
    """
    import os

    from ..runtime.procs import ProcessRuntime

    p = dict(params if params is not None else PROCS_PARAMS)
    workers = int(p["workers"])
    dispatches = int(p["dispatches"])
    mids = int(p["mids"])
    leaves = int(p["leaves"])
    spin = int(p.get("spin", 0))
    per_subtree = 1 + mids + mids * leaves
    cpu_count = os.cpu_count() or 1

    # --- baseline: the identical shape, one process, threaded ---------
    base_rt = TaskRuntime("TJ-SP")

    def base_root():
        futs = [
            base_rt.fork(_procs_soak_subtree, base_rt, 10_000 * t, mids, leaves, spin)
            for t in range(dispatches)
        ]
        return base_rt.join_batch(futs)

    t0 = time.perf_counter()
    base_results = base_rt.run(base_root)
    baseline_elapsed = time.perf_counter() - t0
    baseline_tasks = dispatches * per_subtree

    # --- the multi-process arm ----------------------------------------
    rt = ProcessRuntime(workers=workers, spawn_paths=spawn_paths, sidecar=sidecar)

    def procs_root():
        futs = [
            rt.fork(_procs_soak_subtree, 10_000 * t, mids, leaves, spin)
            for t in range(dispatches)
        ]
        return rt.join_batch(futs)

    t0 = time.perf_counter()
    procs_results = rt.run(procs_root)
    elapsed = time.perf_counter() - t0

    divergences = sum(
        1 for a, b in zip(base_results, procs_results) if a != b
    ) + abs(len(base_results) - len(procs_results))
    joins = rt.join_stats()
    tasks = rt.tasks_completed + sum(
        s.get("tasks_started", 0) for s in rt._worker_stats.values()
    )
    return ProcsSoakMeasurement(
        tasks=tasks,
        workers=workers,
        dispatches=dispatches,
        mids=mids,
        leaves=leaves,
        spin=spin,
        elapsed=elapsed,
        baseline_tasks=baseline_tasks,
        baseline_elapsed=baseline_elapsed,
        cpu_count=cpu_count,
        spawn_paths=rt.spawn_paths,
        local_joins=joins["local_joins"],
        cross_joins=joins["cross_joins"],
        degraded_joins=joins["degraded_joins"],
        escalation_ratio=joins["escalation_ratio"],
        worker_deaths=rt.worker_deaths,
        tasks_redispatched=rt.tasks_redispatched,
        divergences=divergences,
    )


# ----------------------------------------------------------------------
# distributed-telemetry overhead on the procs soak shape
# ----------------------------------------------------------------------
@dataclass
class ObsDistMeasurement:
    """Distributed telemetry's price on the multi-process soak shape.

    Two interleaved arms of the identical ProcessRuntime + sidecar run:
    ``off`` (no session active — every cross-process carrier slot stays
    ``None`` and stats pushes are skipped) and ``on`` (full stack: trace
    context rides each dispatch frame, workers push registry snapshots
    home, the sidecar ships its span ring on the final stats pull and
    the parent merges everything).  *overhead* is the on/off median-time
    factor; the ≤1.25× gate lives in ``benchmarks/bench_obs_dist.py``.
    The payload columns prove the on arm actually produced the
    distributed artifacts it is paying for.
    """

    workers: int
    dispatches: int
    mids: int
    leaves: int
    spin: int
    #: verified tasks per arm run (same shape, so same count per arm)
    tasks: int
    off_times: list[float]
    on_times: list[float]
    #: merged Perfetto events the on arm captured (parent + workers + sidecar)
    trace_events: int
    #: distinct process tracks in that merged trace
    trace_pids: int
    #: distinct ``process=``/``worker=`` label values in the fleet snapshot
    metric_sources: int

    @property
    def off_median(self) -> float:
        times = sorted(self.off_times)
        return times[len(times) // 2] if times else math.nan

    @property
    def on_median(self) -> float:
        times = sorted(self.on_times)
        return times[len(times) // 2] if times else math.nan

    @property
    def overhead(self) -> float:
        """Full-distributed-telemetry over disabled, median wall time."""
        off = self.off_median
        return self.on_median / off if off else math.nan


def _obs_dist_arm(
    p: dict[str, int], *, enabled: bool, sidecar: Optional[str]
) -> tuple[float, int, Optional[dict]]:
    """One soak-shape run; returns (elapsed, tasks, on-arm payload stats)."""
    import contextlib
    import re

    from .. import obs as obs_mod
    from ..runtime.procs import ProcessRuntime

    ctx = obs_mod.enabled() if enabled else contextlib.nullcontext(None)
    with ctx as session:
        rt = ProcessRuntime(workers=p["workers"], sidecar=sidecar)

        def root():
            futs = [
                rt.fork(
                    _procs_soak_subtree, 10_000 * t, p["mids"], p["leaves"], p["spin"]
                )
                for t in range(p["dispatches"])
            ]
            return rt.join_batch(futs)

        # rt.run covers shutdown too, so the on arm pays its final
        # sidecar stats pull and remote-ring absorb inside the clock.
        t0 = time.perf_counter()
        rt.run(root)
        elapsed = time.perf_counter() - t0
        tasks = rt.tasks_completed + sum(
            s.get("tasks_started", 0) for s in rt._worker_stats.values()
        )
        payload = None
        if session is not None:
            doc = session.to_chrome_trace() or {"traceEvents": []}
            events = doc.get("traceEvents", [])
            fleet = rt.fleet_metrics()
            sources: set[tuple[str, str]] = set()
            for group in ("counters", "gauges", "histograms"):
                for name in fleet.get(group, {}):
                    sources.update(re.findall(r'(process|worker)="([^"]*)"', name))
            payload = {
                "trace_events": len(events),
                "trace_pids": len({e.get("pid") for e in events if "pid" in e}),
                "metric_sources": len(sources),
            }
        return elapsed, tasks, payload


def run_obs_dist_suite(
    *,
    params: Optional[dict[str, int]] = None,
    repetitions: int = 3,
    sidecar: Optional[str] = "auto",
) -> ObsDistMeasurement:
    """Measure the full distributed-telemetry stack against disabled.

    Arms interleave per repetition (drift cancellation, as everywhere
    else in this module); the last on-arm run's payload stats are
    recorded so the gate can also assert the telemetry actually crossed
    the process boundary — a merged trace with more than one track and a
    fleet snapshot with more than one labelled source.
    """
    p = {k: int(v) for k, v in dict(params or OBS_DIST_PARAMS).items()}
    off_times: list[float] = []
    on_times: list[float] = []
    tasks = 0
    payload: dict = {"trace_events": 0, "trace_pids": 0, "metric_sources": 0}
    for _ in range(max(1, repetitions)):
        elapsed, tasks, _unused = _obs_dist_arm(p, enabled=False, sidecar=sidecar)
        off_times.append(elapsed)
        elapsed, tasks, on_payload = _obs_dist_arm(p, enabled=True, sidecar=sidecar)
        on_times.append(elapsed)
        if on_payload is not None:
            payload = on_payload
    return ObsDistMeasurement(
        workers=p["workers"],
        dispatches=p["dispatches"],
        mids=p["mids"],
        leaves=p["leaves"],
        spin=p.get("spin", 0),
        tasks=tasks,
        off_times=off_times,
        on_times=on_times,
        trace_events=payload["trace_events"],
        trace_pids=payload["trace_pids"],
        metric_sources=payload["metric_sources"],
    )


# ----------------------------------------------------------------------
# prediction throughput + simulator overhead
# ----------------------------------------------------------------------
@dataclass
class PredictMeasurement:
    """One predictor-throughput run plus the simulator-overhead arm.

    *events/elapsed* is the end-to-end predictor rate over a seeded
    journal corpus — everything :func:`repro.predict.predict_deadlocks`
    does, including realizing each flagged cycle in the simulator and
    replaying the witness under every policy.  *sim_elapsed* vs
    *coop_elapsed* compares a recording FIFO :class:`SimRuntime` against
    the plain :class:`CooperativeRuntime` on the identical fork-fan
    program — the price of determinism and decision recording.
    """

    programs: int
    journals: int
    #: total journal records fed to the predictor
    events: int
    #: wall seconds for the full prediction pass over the corpus
    elapsed: float
    flagged_programs: int
    predictions: int
    #: fork-fan shape of the simulator-overhead arm
    sim_width: int
    sim_rounds: int
    #: best-of-N wall seconds, recording SimRuntime(seed=None)
    sim_elapsed: float
    #: best-of-N wall seconds, plain CooperativeRuntime
    coop_elapsed: float

    @property
    def events_per_second(self) -> float:
        return self.events / self.elapsed if self.elapsed else math.nan

    @property
    def sim_overhead(self) -> float:
        """SimRuntime over CooperativeRuntime best-time factor."""
        if not self.coop_elapsed:
            return math.nan
        return self.sim_elapsed / self.coop_elapsed


def _sim_overhead_fan(rt, width: int, rounds: int) -> int:
    """The fork-fan body both overhead arms run: *rounds* waves of
    *width* no-op leaves, every one joined — pure scheduler churn."""

    def leaf(i: int) -> int:
        return i

    def root():
        total = 0
        for _ in range(rounds):
            futures = [rt.fork(leaf, i) for i in range(width)]
            for future in futures:
                total += yield future
        return total

    return rt.run(root)


def run_predict_bench(
    *, params: Optional[dict[str, int]] = None
) -> PredictMeasurement:
    """Measure predictor throughput and the simulator's scheduling tax.

    The corpus is the chaos predict generator's (seeded, so the numbers
    are comparable across runs): each program journalled once under
    ``policy=None`` with timeout-rescued joins, then the whole predictor
    pipeline timed over the journals.  The simulator arm reports best-of
    repetitions for both runtimes so CI noise cannot fail the ≤2x gate
    spuriously.
    """
    import tempfile

    from ..predict import predict_deadlocks
    from ..runtime.cooperative import CooperativeRuntime
    from ..runtime.sim import SimRuntime
    from ..testing.chaos import run_predict_program
    from ..tools.journal import read_journal

    p = dict(params if params is not None else PREDICT_PARAMS)
    programs = int(p["programs"])
    seed = int(p.get("seed", 0))
    max_schedules = int(p.get("max_schedules", 256))
    sim_width = int(p["sim_width"])
    sim_rounds = int(p["sim_rounds"])
    sim_reps = int(p.get("sim_repetitions", 5))

    with tempfile.TemporaryDirectory(prefix="repro-predict-bench-") as tmp:
        paths = []
        for k in range(programs):
            path = f"{tmp}/predict-{seed + k}.jsonl"
            run_predict_program(seed + k, path)
            paths.append(path)
        events = sum(len(read_journal(path).records) for path in paths)

        t0 = time.perf_counter()
        reports = [
            predict_deadlocks(path, max_schedules=max_schedules) for path in paths
        ]
        elapsed = time.perf_counter() - t0
    flagged = sum(1 for r in reports if r.flagged)
    predictions = sum(len(r.predictions) for r in reports)

    expected = sim_rounds * sum(range(sim_width))
    coop_best = math.inf
    sim_best = math.inf
    for _ in range(sim_reps):
        t0 = time.perf_counter()
        got = _sim_overhead_fan(CooperativeRuntime(None), sim_width, sim_rounds)
        coop_best = min(coop_best, time.perf_counter() - t0)
        assert got == expected
        t0 = time.perf_counter()
        got = _sim_overhead_fan(
            SimRuntime(None, seed=None), sim_width, sim_rounds
        )
        sim_best = min(sim_best, time.perf_counter() - t0)
        assert got == expected

    return PredictMeasurement(
        programs=programs,
        journals=len(paths),
        events=events,
        elapsed=elapsed,
        flagged_programs=flagged,
        predictions=predictions,
        sim_width=sim_width,
        sim_rounds=sim_rounds,
        sim_elapsed=sim_best,
        coop_elapsed=coop_best,
    )


# ----------------------------------------------------------------------
# Table-2-style end-to-end overheads
# ----------------------------------------------------------------------
def run_overhead_suite(
    *,
    params: Optional[dict[str, dict[str, int]]] = None,
    policies: Sequence[str] = RUNTIME_POLICIES,
    repetitions: int = 3,
    warmup: int = 1,
) -> list[BenchmarkReport]:
    """policy=None vs each policy on small benchsuite configurations.

    Memory tracing is off: this suite gates *time* overhead (the memory
    side is Table 2's job), and a tracemalloc pass would double the run
    count.
    """
    table = params if params is not None else OVERHEAD_PARAMS
    harness = Harness(
        repetitions=repetitions,
        warmup=warmup,
        policies=tuple(policies),
        measure_memory=False,
    )
    return [
        harness.measure_benchmark(make_benchmark(name, **p))
        for name, p in table.items()
    ]


def best_time(m: PolicyMeasurement) -> float:
    """Fastest sample — the steadiest estimator on noisy CI machines."""
    return min(m.times) if m.times else math.nan


def overhead_factor(report: BenchmarkReport, policy: str) -> float:
    """Best-time factor of *policy* over the unverified baseline."""
    return best_time(report.policies[policy]) / best_time(report.baseline)


def geomean_overhead(reports: Sequence[BenchmarkReport], policy: str) -> float:
    """Geometric-mean overhead factor across benchmarks (Table 2 style)."""
    factors = [overhead_factor(r, policy) for r in reports]
    return math.exp(sum(math.log(f) for f in factors) / len(factors))


# ----------------------------------------------------------------------
# the combined suite
# ----------------------------------------------------------------------
@dataclass
class RuntimeOverheadResult:
    """One full run: the microshape under both protocols + the overhead
    grid, with the parameters that produced them embedded."""

    join_chain: dict[str, JoinChainMeasurement]
    reports: list[BenchmarkReport]
    join_chain_params: dict[str, float]
    overhead_params: dict[str, dict[str, int]]
    #: journal-off/on chain measurements; None in files from schema v1
    journal: Optional[dict[str, JournalOverheadMeasurement]] = None
    journal_params: dict[str, float] = field(default_factory=dict)
    #: telemetry-arm measurements; None in files from schema v1/v2
    obs: Optional[dict[str, dict[str, ObsOverheadMeasurement]]] = None
    obs_params: dict[str, dict[str, float]] = field(default_factory=dict)
    #: remote-verification soak; None in files from schema v1/v2/v3
    service: Optional[ServiceSoakMeasurement] = None
    service_params: dict[str, int] = field(default_factory=dict)
    #: multi-process soak; None in files from schema v1-v4
    procs: Optional[ProcsSoakMeasurement] = None
    procs_params: dict[str, int] = field(default_factory=dict)
    #: prediction throughput + simulator overhead; None in files v1-v5
    predict: Optional[PredictMeasurement] = None
    predict_params: dict[str, int] = field(default_factory=dict)
    #: distributed-telemetry arms on the procs shape; None in files v1-v6
    obs_dist: Optional[ObsDistMeasurement] = None
    obs_dist_params: dict[str, int] = field(default_factory=dict)

    @property
    def join_speedup(self) -> float:
        return join_wakeup_speedup(self.join_chain)

    @property
    def journal_overhead(self) -> float:
        """Journal-on over journal-off best-time factor (NaN if unmeasured)."""
        if not self.journal:
            return math.nan
        return journal_overhead_factor(self.journal)

    def obs_overhead(self, mode: str) -> float:
        """Worst per-shape median factor of arm *mode* over ``off``.

        The gate takes the max across shapes: a telemetry regression
        that hits only one shape must still fail it.  NaN if the obs
        instrument was not run.
        """
        if not self.obs:
            return math.nan
        return max(obs_overhead_factor(self.obs, shape, mode) for shape in self.obs)

    @property
    def telemetry_off_overhead(self) -> float:
        """Metrics-only over disabled — the ≤1.05× gate's number."""
        return self.obs_overhead("metrics")

    @property
    def telemetry_on_overhead(self) -> float:
        """Full telemetry over disabled — the ≤1.25× gate's number."""
        return self.obs_overhead("full")

    @property
    def service_rss_growth(self) -> float:
        """Soak after/before RSS factor (NaN if the soak was not run)."""
        if self.service is None:
            return math.nan
        return self.service.rss_growth

    @property
    def procs_speedup(self) -> float:
        """Multi-process over threaded tasks/s (NaN if the soak was not run)."""
        if self.procs is None:
            return math.nan
        return self.procs.speedup

    @property
    def predict_events_per_second(self) -> float:
        """Predictor throughput (NaN if the instrument was not run)."""
        if self.predict is None:
            return math.nan
        return self.predict.events_per_second

    @property
    def predict_sim_overhead(self) -> float:
        """SimRuntime over CooperativeRuntime — the ≤2x gate's number."""
        if self.predict is None:
            return math.nan
        return self.predict.sim_overhead

    @property
    def obs_dist_overhead(self) -> float:
        """Distributed telemetry on/off median factor — the ≤1.25× gate."""
        if self.obs_dist is None:
            return math.nan
        return self.obs_dist.overhead

    def overhead(self, policy: str) -> float:
        return geomean_overhead(self.reports, policy)

    @property
    def policies(self) -> list[str]:
        seen: list[str] = []
        for report in self.reports:
            for p in report.policies:
                if p not in seen:
                    seen.append(p)
        return seen


def run_runtime_suite(
    *,
    smoke: bool = False,
    repetitions: int = 3,
    warmup: int = 1,
    policies: Sequence[str] = RUNTIME_POLICIES,
) -> RuntimeOverheadResult:
    """Run both instruments and bundle the result for serialisation."""
    chain_params = SMOKE_JOIN_CHAIN_PARAMS if smoke else JOIN_CHAIN_PARAMS
    journal_params = SMOKE_JOURNAL_PARAMS if smoke else JOURNAL_PARAMS
    overhead_params = SMOKE_OVERHEAD_PARAMS if smoke else OVERHEAD_PARAMS
    obs_params = SMOKE_OBS_PARAMS if smoke else OBS_PARAMS
    service_params = SMOKE_SERVICE_PARAMS if smoke else SERVICE_PARAMS
    return RuntimeOverheadResult(
        join_chain=run_join_chain_suite(
            params=chain_params, repetitions=repetitions, warmup=warmup
        ),
        reports=run_overhead_suite(
            params=overhead_params,
            policies=policies,
            repetitions=repetitions,
            warmup=warmup,
        ),
        join_chain_params=dict(chain_params),
        overhead_params={k: dict(v) for k, v in overhead_params.items()},
        # The chain runs in tens of milliseconds, so extra repetitions
        # are cheap — and the gate's median needs samples under CI noise.
        journal=run_journal_suite(
            params=journal_params, repetitions=max(repetitions, 5), warmup=warmup
        ),
        journal_params=dict(journal_params),
        obs=run_obs_suite(
            params=obs_params, repetitions=max(repetitions, 5), warmup=warmup
        ),
        obs_params={k: dict(v) for k, v in obs_params.items()},
        service=run_service_soak(params=service_params),
        service_params=dict(service_params),
    )


def render_runtime_table(result: RuntimeOverheadResult) -> str:
    """ASCII summary: microshape times, then the overhead-factor grid.

    Every section renders only when its instrument ran — a file holding
    just the telemetry block (``bench_obs_overhead.py`` standalone mode)
    still renders.
    """
    lines: list[str] = []
    if result.join_chain:
        lines += [
            f"join-latency microshape (depth={result.join_chain_params['depth']}, "
            f"leaf_sleep={result.join_chain_params['leaf_sleep'] * 1e3:.0f}ms)",
            f"{'protocol':<10} {'best ms':>9} {'mean ms':>9} {'unwind ms':>10}",
            "-" * 42,
        ]
        for mode in WAIT_MODES:
            m = result.join_chain[mode]
            lines.append(
                f"{mode:<10} {m.best_time * 1e3:>9.2f} {m.mean_time * 1e3:>9.2f} "
                f"{m.unwind_overhead * 1e3:>10.2f}"
            )
        lines.append(f"event-driven join speedup: {result.join_speedup:.2f}x")
        lines.append("")
    if result.journal:
        on = result.journal["on"]
        lines.append(
            f"journal overhead microshape (fork chain, depth={on.depth}, "
            f"leaf_sleep={on.leaf_sleep * 1e3:.0f}ms)"
        )
        lines.append(
            f"{'journal':<10} {'best ms':>9} {'median ms':>10} {'records':>8}"
        )
        lines.append("-" * 41)
        for mode in JOURNAL_MODES:
            m = result.journal[mode]
            lines.append(
                f"{mode:<10} {m.best_time * 1e3:>9.2f} {m.median_time * 1e3:>10.2f} "
                f"{m.records:>8}"
            )
        lines.append(f"journal-on overhead factor: {result.journal_overhead:.3f}x")
        lines.append("")
    if result.obs:
        lines.append("telemetry overhead (median times per arm)")
        lines.append(
            f"{'shape':<12} " + " ".join(f"{mode + ' ms':>11}" for mode in OBS_MODES)
        )
        lines.append("-" * (12 + 12 * len(OBS_MODES)))
        for shape in result.obs:
            cells = " ".join(
                f"{result.obs[shape][mode].median_time * 1e3:>11.3f}"
                for mode in OBS_MODES
            )
            lines.append(f"{shape:<12} {cells}")
        lines.append(
            f"telemetry overhead factors: metrics "
            f"{result.telemetry_off_overhead:.3f}x, "
            f"full {result.telemetry_on_overhead:.3f}x (worst shape)"
        )
        lines.append("")
    if result.service is not None:
        s = result.service
        lines.append(
            f"remote-verification soak (width={s.width}, batch={s.batch})"
        )
        lines.append(
            f"{s.joins} joins in {s.elapsed:.2f}s "
            f"({s.joins_per_second:,.0f} joins/s), "
            f"RSS {s.rss_before_kb} -> {s.rss_after_kb} kB "
            f"(peak {s.rss_peak_kb}, growth {s.rss_growth:.3f}x), "
            f"degradations {s.degradations}"
        )
        lines.append("")
    if result.procs is not None:
        m = result.procs
        lines.append(
            f"multi-process soak (workers={m.workers}, "
            f"{m.dispatches}x{m.mids}x{m.leaves} deep shape, "
            f"{m.cpu_count} cpu)"
        )
        lines.append(
            f"{m.tasks} verified tasks in {m.elapsed:.2f}s "
            f"({m.tasks_per_second:,.0f} tasks/s) vs threaded "
            f"{m.baseline_tasks_per_second:,.0f} tasks/s "
            f"(speedup {m.speedup:.2f}x), escalation "
            f"{m.escalation_ratio:.3f}, divergences {m.divergences}"
        )
        lines.append("")
    if result.obs_dist is not None:
        m = result.obs_dist
        lines.append(
            f"distributed-telemetry overhead (procs shape, workers={m.workers}, "
            f"{m.dispatches}x{m.mids}x{m.leaves})"
        )
        lines.append(
            f"off median {m.off_median:.2f}s vs full {m.on_median:.2f}s "
            f"(factor {m.overhead:.3f}x); merged trace {m.trace_events} events "
            f"across {m.trace_pids} tracks, {m.metric_sources} metric sources"
        )
        lines.append("")
    if result.predict is not None:
        m = result.predict
        lines.append(
            f"prediction instrument ({m.journals} journals, "
            f"{m.flagged_programs} flagged, {m.predictions} witnesses)"
        )
        lines.append(
            f"{m.events} events in {m.elapsed:.2f}s "
            f"({m.events_per_second:,.0f} events/s); simulator "
            f"{m.sim_width}x{m.sim_rounds} fan best {m.sim_elapsed * 1e3:.2f}ms "
            f"vs cooperative {m.coop_elapsed * 1e3:.2f}ms "
            f"(overhead {m.sim_overhead:.2f}x)"
        )
        lines.append("")
    if result.reports:
        policies = result.policies
        header = f"{'benchmark':<16} " + " ".join(f"{p:>8}" for p in policies)
        lines.append("end-to-end overhead factors (best times, vs policy=None)")
        lines.append(header)
        lines.append("-" * len(header))
        for report in result.reports:
            cells = " ".join(
                f"{overhead_factor(report, p):>8.3f}" for p in policies
            )
            lines.append(f"{report.name:<16} {cells}")
        geo = " ".join(f"{result.overhead(p):>8.3f}" for p in policies)
        lines.append(f"{'geomean':<16} {geo}")
    return "\n".join(lines)
