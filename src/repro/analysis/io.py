"""Raw-data serialisation of benchmark reports (artifact A.5 style).

The paper's artifact writes a log of raw samples that a second script
aggregates.  These helpers serialise :class:`BenchmarkReport` objects to
JSON (all samples preserved, so aggregation can be redone offline) and
load them back.
"""

from __future__ import annotations

import json
from typing import Sequence

from ..benchsuite.harness import BenchmarkReport, PolicyMeasurement

__all__ = [
    "reports_to_json",
    "reports_from_json",
    "save_reports",
    "load_reports",
    "hotpath_to_json",
    "hotpath_from_json",
    "save_hotpath",
    "load_hotpath",
    "runtime_to_json",
    "runtime_from_json",
    "save_runtime",
    "load_runtime",
]

_SCHEMA_VERSION = 1
#: v2 added the per-measurement "backend" tag ("c"/"py" kernel).  v1
#: files still load, with the backend defaulting to "py".
_HOTPATH_SCHEMA_VERSION = 2
_HOTPATH_SCHEMAS = (1, 2)
#: v2 added the journal-overhead microshape block; v3 the telemetry
#: ("obs") block; v4 the remote-verification soak ("service") block;
#: v5 the multi-process soak ("procs"); v6 the prediction instrument;
#: v7 the distributed-telemetry ("obs_dist") block.  All are optional
#: on load — older files still load with the missing instruments
#: defaulting to unmeasured.
_RUNTIME_SCHEMA_VERSION = 7
_RUNTIME_SCHEMAS = (1, 2, 3, 4, 5, 6, 7)


def _measurement_dict(m: PolicyMeasurement) -> dict:
    return {
        "policy": m.policy,
        "times": m.times,
        "verified": m.verified,
        "peak_bytes": m.peak_bytes,
        "verifier_space_units": m.verifier_space_units,
        "false_positives": m.false_positives,
        "deadlocks_avoided": m.deadlocks_avoided,
        "joins_checked": m.joins_checked,
        "forks": m.forks,
    }


def _measurement_from(d: dict) -> PolicyMeasurement:
    return PolicyMeasurement(**d)


def reports_to_json(reports: Sequence[BenchmarkReport]) -> str:
    """Serialise reports (with every raw time sample) to a JSON string."""
    payload = {
        "schema": _SCHEMA_VERSION,
        "reports": [
            {
                "name": r.name,
                "params": {k: v for k, v in r.params.items()},
                "baseline": _measurement_dict(r.baseline),
                "policies": {p: _measurement_dict(m) for p, m in r.policies.items()},
            }
            for r in reports
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def reports_from_json(text: str) -> list[BenchmarkReport]:
    """Inverse of :func:`reports_to_json`."""
    payload = json.loads(text)
    if payload.get("schema") != _SCHEMA_VERSION:
        raise ValueError(f"unsupported schema {payload.get('schema')!r}")
    out = []
    for r in payload["reports"]:
        out.append(
            BenchmarkReport(
                name=r["name"],
                params=r["params"],
                baseline=_measurement_from(r["baseline"]),
                policies={p: _measurement_from(m) for p, m in r["policies"].items()},
            )
        )
    return out


def save_reports(reports: Sequence[BenchmarkReport], path: str) -> None:
    with open(path, "w") as fh:
        fh.write(reports_to_json(reports))


def load_reports(path: str) -> list[BenchmarkReport]:
    with open(path) as fh:
        return reports_from_json(fh.read())


# ----------------------------------------------------------------------
# hot-path microbenchmark results (BENCH_hotpath.json)
# ----------------------------------------------------------------------
def hotpath_to_json(measurements, params=None) -> str:
    """Serialise :class:`~repro.analysis.hotpath.HotpathMeasurement` s.

    All raw repetition times are preserved (same philosophy as the
    Table 2 samples) so regressions can be re-analysed offline; the
    workload parameters are embedded so a stored file documents exactly
    what it measured.
    """
    payload = {
        "schema": _HOTPATH_SCHEMA_VERSION,
        "params": params or {},
        "measurements": [
            {
                "shape": m.shape,
                "policy": m.policy,
                "backend": m.backend,
                "times": m.times,
                "events": m.events,
            }
            for m in measurements
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def hotpath_from_json(text: str):
    """Inverse of :func:`hotpath_to_json`; returns (measurements, params)."""
    from .hotpath import HotpathMeasurement

    payload = json.loads(text)
    if payload.get("schema") not in _HOTPATH_SCHEMAS:
        raise ValueError(f"unsupported hotpath schema {payload.get('schema')!r}")
    measurements = [
        HotpathMeasurement(
            shape=m["shape"],
            policy=m["policy"],
            times=m["times"],
            events=m["events"],
            backend=m.get("backend", "py"),
        )
        for m in payload["measurements"]
    ]
    return measurements, payload.get("params", {})


def save_hotpath(measurements, path: str, params=None) -> None:
    with open(path, "w") as fh:
        fh.write(hotpath_to_json(measurements, params))


def load_hotpath(path: str):
    with open(path) as fh:
        return hotpath_from_json(fh.read())


# ----------------------------------------------------------------------
# end-to-end runtime overhead results (BENCH_runtime.json)
# ----------------------------------------------------------------------
def runtime_to_json(result) -> str:
    """Serialise a :class:`~repro.analysis.runtime_overhead.RuntimeOverheadResult`.

    Both instruments keep every raw sample — the microshape's per-mode
    repetition times and the full Table-2-style per-policy samples — so
    a stored file can be re-analysed offline, and the parameters are
    embedded so it documents exactly what it measured.
    """
    payload = {
        "schema": _RUNTIME_SCHEMA_VERSION,
        "join_chain": {
            "params": dict(result.join_chain_params),
            "measurements": [
                {
                    "mode": m.mode,
                    "depth": m.depth,
                    "leaf_sleep": m.leaf_sleep,
                    "times": m.times,
                }
                for m in result.join_chain.values()
            ],
        },
        "overhead": {
            "params": {k: dict(v) for k, v in result.overhead_params.items()},
            "reports": [
                {
                    "name": r.name,
                    "params": {k: v for k, v in r.params.items()},
                    "baseline": _measurement_dict(r.baseline),
                    "policies": {
                        p: _measurement_dict(m) for p, m in r.policies.items()
                    },
                }
                for r in result.reports
            ],
        },
    }
    if result.journal is not None:
        payload["journal"] = {
            "params": dict(result.journal_params),
            "measurements": [
                {
                    "mode": m.mode,
                    "depth": m.depth,
                    "leaf_sleep": m.leaf_sleep,
                    "times": m.times,
                    "records": m.records,
                }
                for m in result.journal.values()
            ],
        }
    if result.obs is not None:
        payload["obs"] = {
            "params": {k: dict(v) for k, v in result.obs_params.items()},
            "measurements": [
                {"shape": m.shape, "mode": m.mode, "times": m.times}
                for arms in result.obs.values()
                for m in arms.values()
            ],
        }
    if result.service is not None:
        s = result.service
        payload["service"] = {
            "params": dict(result.service_params),
            "measurement": {
                "joins": s.joins,
                "width": s.width,
                "batch": s.batch,
                "elapsed": s.elapsed,
                "rss_before_kb": s.rss_before_kb,
                "rss_after_kb": s.rss_after_kb,
                "rss_peak_kb": s.rss_peak_kb,
                "degradations": s.degradations,
                "reconciles": s.reconciles,
            },
        }
    if result.procs is not None:
        m = result.procs
        payload["procs"] = {
            "params": dict(result.procs_params),
            "measurement": {
                "tasks": m.tasks,
                "workers": m.workers,
                "dispatches": m.dispatches,
                "mids": m.mids,
                "leaves": m.leaves,
                "spin": m.spin,
                "elapsed": m.elapsed,
                "baseline_tasks": m.baseline_tasks,
                "baseline_elapsed": m.baseline_elapsed,
                "cpu_count": m.cpu_count,
                "spawn_paths": m.spawn_paths,
                "local_joins": m.local_joins,
                "cross_joins": m.cross_joins,
                "degraded_joins": m.degraded_joins,
                "escalation_ratio": m.escalation_ratio,
                "worker_deaths": m.worker_deaths,
                "tasks_redispatched": m.tasks_redispatched,
                "divergences": m.divergences,
            },
        }
    if result.obs_dist is not None:
        m = result.obs_dist
        payload["obs_dist"] = {
            "params": dict(result.obs_dist_params),
            "measurement": {
                "workers": m.workers,
                "dispatches": m.dispatches,
                "mids": m.mids,
                "leaves": m.leaves,
                "spin": m.spin,
                "tasks": m.tasks,
                "off_times": m.off_times,
                "on_times": m.on_times,
                "trace_events": m.trace_events,
                "trace_pids": m.trace_pids,
                "metric_sources": m.metric_sources,
            },
        }
    if result.predict is not None:
        m = result.predict
        payload["predict"] = {
            "params": dict(result.predict_params),
            "measurement": {
                "programs": m.programs,
                "journals": m.journals,
                "events": m.events,
                "elapsed": m.elapsed,
                "flagged_programs": m.flagged_programs,
                "predictions": m.predictions,
                "sim_width": m.sim_width,
                "sim_rounds": m.sim_rounds,
                "sim_elapsed": m.sim_elapsed,
                "coop_elapsed": m.coop_elapsed,
            },
        }
    return json.dumps(payload, indent=2, sort_keys=True)


def runtime_from_json(text: str):
    """Inverse of :func:`runtime_to_json`; returns a RuntimeOverheadResult."""
    from .runtime_overhead import (
        JoinChainMeasurement,
        JournalOverheadMeasurement,
        ObsDistMeasurement,
        ObsOverheadMeasurement,
        PredictMeasurement,
        ProcsSoakMeasurement,
        RuntimeOverheadResult,
        ServiceSoakMeasurement,
    )

    payload = json.loads(text)
    if payload.get("schema") not in _RUNTIME_SCHEMAS:
        raise ValueError(f"unsupported runtime schema {payload.get('schema')!r}")
    chain = {
        m["mode"]: JoinChainMeasurement(
            mode=m["mode"],
            depth=m["depth"],
            leaf_sleep=m["leaf_sleep"],
            times=m["times"],
        )
        for m in payload["join_chain"]["measurements"]
    }
    reports = [
        BenchmarkReport(
            name=r["name"],
            params=r["params"],
            baseline=_measurement_from(r["baseline"]),
            policies={p: _measurement_from(m) for p, m in r["policies"].items()},
        )
        for r in payload["overhead"]["reports"]
    ]
    journal = None
    if "journal" in payload:
        journal = {
            m["mode"]: JournalOverheadMeasurement(
                mode=m["mode"],
                depth=m["depth"],
                leaf_sleep=m["leaf_sleep"],
                times=m["times"],
                records=m.get("records", 0),
            )
            for m in payload["journal"]["measurements"]
        }
    obs = None
    if "obs" in payload:
        obs = {}
        for m in payload["obs"]["measurements"]:
            obs.setdefault(m["shape"], {})[m["mode"]] = ObsOverheadMeasurement(
                shape=m["shape"], mode=m["mode"], times=m["times"]
            )
    service = None
    if "service" in payload:
        m = payload["service"]["measurement"]
        service = ServiceSoakMeasurement(
            joins=m["joins"],
            width=m["width"],
            batch=m["batch"],
            elapsed=m["elapsed"],
            rss_before_kb=m["rss_before_kb"],
            rss_after_kb=m["rss_after_kb"],
            rss_peak_kb=m.get("rss_peak_kb", m["rss_after_kb"]),
            degradations=m.get("degradations", 0),
            reconciles=m.get("reconciles", 0),
        )
    procs = None
    if "procs" in payload:
        m = payload["procs"]["measurement"]
        procs = ProcsSoakMeasurement(**m)
    predict = None
    if "predict" in payload:
        m = payload["predict"]["measurement"]
        predict = PredictMeasurement(**m)
    obs_dist = None
    if "obs_dist" in payload:
        m = payload["obs_dist"]["measurement"]
        obs_dist = ObsDistMeasurement(**m)
    return RuntimeOverheadResult(
        join_chain=chain,
        reports=reports,
        join_chain_params=payload["join_chain"].get("params", {}),
        overhead_params=payload["overhead"].get("params", {}),
        journal=journal,
        journal_params=payload.get("journal", {}).get("params", {}),
        obs=obs,
        obs_params=payload.get("obs", {}).get("params", {}),
        service=service,
        service_params=payload.get("service", {}).get("params", {}),
        procs=procs,
        procs_params=payload.get("procs", {}).get("params", {}),
        predict=predict,
        predict_params=payload.get("predict", {}).get("params", {}),
        obs_dist=obs_dist,
        obs_dist_params=payload.get("obs_dist", {}).get("params", {}),
    )


def save_runtime(result, path: str) -> None:
    with open(path, "w") as fh:
        fh.write(runtime_to_json(result))


def load_runtime(path: str):
    with open(path) as fh:
        return runtime_from_json(fh.read())
