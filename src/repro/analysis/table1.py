"""Table 1: empirical validation of the verification complexity bounds.

The paper states asymptotic fork-time, join-time and space costs per
algorithm (reproduced in :mod:`repro.core`).  This experiment measures
them: for fork trees of several shapes (chain: h = n; star: h = 1;
balanced binary: h = log n) and increasing sizes, it times ``add_child``
and ``permits`` per operation and reads back ``space_units``.

The headline checks (asserted by the accompanying benchmark):

* on chains, TJ-GT/TJ-SP join time grows ~linearly with n while TJ-JP
  grows ~logarithmically and TJ-OM stays flat;
* on stars, all TJ join times are flat;
* KJ-VC space grows superlinearly on chain-with-joins workloads while
  KJ-SS and TJ-GT stay linear.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from ..core.policy import JoinPolicy, make_policy
from ..formal.actions import Action, Fork, Init

__all__ = ["ComplexityPoint", "measure_policy_costs", "render_table1", "TABLE1_BOUNDS"]

#: the paper's stated bounds, for the report footer
TABLE1_BOUNDS = {
    "KJ-VC": ("O(n)", "O(n)", "O(n^2)"),
    "KJ-SS": ("O(1)", "O(n)", "O(n)"),
    "TJ-GT": ("O(1)", "O(h)", "O(n)"),
    "TJ-JP": ("O(log h)", "O(log h)", "O(n log h)"),
    "TJ-SP": ("O(1)", "O(h)", "O(n)"),  # flat arrays; amortised O(1) re-joins
    "TJ-SP-obj": ("O(1)", "O(h)", "O(n)"),  # interned prefix-tree objects
    "TJ-SP-legacy": ("O(h)", "O(h)", "O(n h)"),  # the paper's Algorithm 3 bounds
    "TJ-OM": ("O(1)*", "O(1)", "O(n)"),
}


@dataclass
class ComplexityPoint:
    """Measured costs for one (policy, shape, size) cell."""

    policy: str
    shape: str
    n_tasks: int
    fork_us: float  # mean microseconds per add_child
    join_us: float  # mean microseconds per permits query
    space_units: int


def _build(policy: JoinPolicy, trace: Iterable[Action]) -> tuple[dict, float]:
    """Replay forks; return (vertices, mean fork microseconds)."""
    vertices: dict = {}
    n = 0
    t0 = time.perf_counter()
    for action in trace:
        if isinstance(action, Init):
            vertices[action.task] = policy.add_child(None)
        elif isinstance(action, Fork):
            vertices[action.child] = policy.add_child(vertices[action.parent])
        n += 1
    elapsed = time.perf_counter() - t0
    return vertices, elapsed / n * 1e6


def measure_policy_costs(
    policy_name: str,
    shape: str,
    trace: Sequence[Action],
    queries: int = 2000,
    seed: int = 0,
) -> ComplexityPoint:
    """Measure one cell of the empirical Table 1."""
    policy = make_policy(policy_name)
    vertices, fork_us = _build(policy, trace)
    handles = list(vertices.values())
    rng = random.Random(seed)
    pairs = [
        (rng.choice(handles), rng.choice(handles)) for _ in range(queries)
    ]
    t0 = time.perf_counter()
    for a, b in pairs:
        policy.permits(a, b)
    join_us = (time.perf_counter() - t0) / queries * 1e6
    return ComplexityPoint(
        policy=policy_name,
        shape=shape,
        n_tasks=len(handles),
        fork_us=fork_us,
        join_us=join_us,
        space_units=policy.space_units(),
    )


def render_table1(points: Sequence[ComplexityPoint]) -> str:
    """Group measured points into a per-policy scaling report."""
    if not points:
        raise ValueError("no points to render")
    lines = [
        f"{'policy':<7} {'shape':<9} {'n':>7} {'fork us':>9} {'join us':>9} {'space':>10}",
        "-" * 56,
    ]
    for p in sorted(points, key=lambda p: (p.policy, p.shape, p.n_tasks)):
        lines.append(
            f"{p.policy:<7} {p.shape:<9} {p.n_tasks:>7} "
            f"{p.fork_us:>9.2f} {p.join_us:>9.2f} {p.space_units:>10}"
        )
    lines.append("-" * 56)
    lines.append("paper bounds (fork, join, space); h = tree height:")
    for name, (f, j, s) in TABLE1_BOUNDS.items():
        lines.append(f"  {name:<7} {f:<10} {j:<10} {s}")
    lines.append("  (* TJ-OM is an extension beyond the paper; amortised)")
    return "\n".join(lines)
