"""A dependency-free SVG renderer for Figure 2.

Produces a grouped horizontal bar chart — per benchmark, one bar per
configuration with a 95% confidence-interval whisker — matching the
structure of the paper's Figure 2 without requiring matplotlib.  Pure
string generation; the output opens in any browser.
"""

from __future__ import annotations

from typing import Sequence

from .figure2 import figure2_data
from ..benchsuite.harness import BenchmarkReport

__all__ = ["render_figure2_svg"]

_COLORS = {
    "baseline": "#9aa0a6",
    "KJ-VC": "#d93025",
    "KJ-SS": "#f9ab00",
    "TJ-SP": "#1a73e8",
}
_FALLBACK_COLOR = "#188038"

_BAR_H = 16
_BAR_GAP = 4
_GROUP_GAP = 22
_LEFT = 150
_WIDTH = 620
_TOP = 48


def _esc(s: str) -> str:
    return s.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")


def render_figure2_svg(reports: Sequence[BenchmarkReport], *, title: str | None = None) -> str:
    """Render the execution-time chart as an SVG document string."""
    if not reports:
        raise ValueError("no reports to render")
    data = figure2_data(reports)
    configs = list(next(iter(data.values())).keys())
    top = max(mu + half for group in data.values() for mu, half in group.values())
    top = top or 1.0
    scale = (_WIDTH - _LEFT - 90) / top

    rows = sum(len(g) for g in data.values())
    height = _TOP + rows * (_BAR_H + _BAR_GAP) + len(data) * _GROUP_GAP + 40

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{_WIDTH}" '
        f'height="{height}" font-family="sans-serif" font-size="11">',
        f'<text x="{_LEFT}" y="18" font-size="14" font-weight="bold">'
        f"{_esc(title or 'Execution time (mean with 95% CI)')}</text>",
    ]
    # legend
    x = _LEFT
    for config in configs:
        color = _COLORS.get(config, _FALLBACK_COLOR)
        parts.append(f'<rect x="{x}" y="26" width="10" height="10" fill="{color}"/>')
        parts.append(f'<text x="{x + 14}" y="35">{_esc(config)}</text>')
        x += 14 + 7 * len(config) + 22

    y = _TOP
    for name, group in data.items():
        parts.append(
            f'<text x="{_LEFT - 10}" y="{y + _BAR_H}" text-anchor="end" '
            f'font-weight="bold">{_esc(str(name))}</text>'
        )
        for config, (mu, half) in group.items():
            color = _COLORS.get(config, _FALLBACK_COLOR)
            bar_w = max(1.0, mu * scale)
            parts.append(
                f'<rect x="{_LEFT}" y="{y}" width="{bar_w:.1f}" '
                f'height="{_BAR_H}" fill="{color}" fill-opacity="0.85"/>'
            )
            if half > 0:
                lo = _LEFT + max(0.0, (mu - half) * scale)
                hi = _LEFT + (mu + half) * scale
                mid = y + _BAR_H / 2
                parts.append(
                    f'<line x1="{lo:.1f}" y1="{mid}" x2="{hi:.1f}" y2="{mid}" '
                    'stroke="black" stroke-width="1"/>'
                )
                for xx in (lo, hi):
                    parts.append(
                        f'<line x1="{xx:.1f}" y1="{mid - 4}" x2="{xx:.1f}" '
                        f'y2="{mid + 4}" stroke="black" stroke-width="1"/>'
                    )
            parts.append(
                f'<text x="{_LEFT + bar_w + (half * scale) + 6:.1f}" '
                f'y="{y + _BAR_H - 4}">{mu:.4f}s</text>'
            )
            y += _BAR_H + _BAR_GAP
        y += _GROUP_GAP
    parts.append("</svg>")
    return "\n".join(parts)
