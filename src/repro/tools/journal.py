"""Crash-consistent write-ahead trace journal (append-only JSONL).

:class:`TraceJournal` extends the in-memory recorder idea of
:mod:`repro.tools.recorder` into a durable write-ahead log: every
verifier-visible event — init, fork, permission verdict, completed join,
blocked/unblocked edge, quarantine, retry, avoided deadlock — is
appended as one JSON object per line *as it happens*, so a run killed by
``kill -9`` leaves a replayable record of everything the verifier saw up
to the moment of death.

Durability model
----------------
Records are buffered and flushed in batches (``flush_every``), with
**critical points** flushed immediately: a *block* record is written out
before the thread goes to sleep ("flush before you sleep" — nearly free,
since the thread is about to block anyway), and quarantine / retry /
denied-verdict / avoided-deadlock records are flushed on the spot.  A
flush is a ``write(2)`` to the file descriptor, which survives process
death (``kill -9``) — the OS owns the page cache.  With ``fsync=True``
every critical flush is additionally fsynced, extending the guarantee to
machine crashes and power loss at the price of one ``fsync(2)`` per
critical record.

The practical upshot: for a process killed while stalled, the set of
edges whose ``block`` is durable and whose ``unblock`` is not is exactly
the set of joins blocked at death — which is what
:func:`repro.tools.replay.replay_journal` reports.

Reader
------
:func:`read_journal` tolerates exactly the damage a crash can cause — a
truncated *final* record (no trailing newline, or an unparsable last
line) — and treats anything else (mid-file garbage, a sequence-number
gap) as corruption, raising
:class:`~repro.errors.JournalCorruptError`.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass, field
from time import perf_counter_ns
from typing import Optional

from ..errors import JournalCorruptError, JournalError
from ..obs import active as _active_telemetry

__all__ = ["TraceJournal", "JournalReadResult", "read_journal"]

#: record kinds a journal may contain, in the order they typically appear
KINDS = (
    "start",
    "init",
    "fork",
    "verdict",
    "join",
    "block",
    "unblock",
    "complete",
    "avoided",
    "quarantine",
    "retry",
)


class TraceJournal:
    """Append-only JSONL journal of one runtime execution.

    Thread-safe: every append happens under one lock (events from
    different tasks genuinely race, and seq numbers must be dense).
    Vertices are interned to stable names (``t0``, ``t1``, ... in fork
    order) exactly like the in-memory recorder; the journal keeps a
    strong reference to each named vertex so ``id()`` reuse can never
    misattribute an event to a dead task's name.

    Parameters
    ----------
    path:
        File to append to (created if missing).  One journal per run;
        appending two runs to one file breaks the seq-density invariant
        the reader checks.
    flush_every:
        Buffered records are flushed every this-many appends (and at
        every critical record, and on close).
    fsync:
        When True, critical flushes are also fsynced for power-loss
        durability.  The default (False) is crash-consistent against
        process death, which is the post-mortem case that matters here.
    timestamps:
        When True, every record carries a ``ts`` field — nanoseconds
        since the journal was opened (``perf_counter_ns`` delta).  The
        reader tolerates the extra field either way; the trace exporter
        (:mod:`repro.tools.trace_export`) uses it to lay journal records
        out on a Perfetto timeline.
    """

    __slots__ = (
        "path",
        "_fh",
        "_lock",
        "_seq",
        "_buf",
        "_flush_every",
        "_fsync",
        "_names",
        "_pinned",
        "_count",
        "_closed",
        "records_written",
        "flushes",
        "_ts_base",
        "_obs",
        "__weakref__",
    )

    def __init__(
        self,
        path: str,
        *,
        flush_every: int = 64,
        fsync: bool = False,
        timestamps: bool = False,
    ) -> None:
        if flush_every < 1:
            raise ValueError("flush_every must be at least 1")
        self.path = path
        self._fh = open(path, "a", encoding="utf-8")
        self._lock = threading.Lock()
        self._seq = 0
        #: lines formatted but not yet handed to the file.  A Python-list
        #: buffer costs one append on the hot path where ``fh.write``
        #: costs a buffered-IO call; durability is identical — either
        #: way a record is only kill-9-safe after a flush.
        self._buf: list[str] = []
        self._flush_every = flush_every
        self._fsync = fsync
        self._names: dict[int, str] = {}
        self._pinned: list[object] = []  # strong refs: id() reuse guard
        self._count = 0
        self._closed = False
        #: total records written (read by tests and the CLI)
        self.records_written = 0
        #: flushes issued (batch-full, critical, and close)
        self.flushes = 0
        self._ts_base = perf_counter_ns() if timestamps else None
        self._obs = _active_telemetry()
        if self._obs is not None:
            self._obs.registry.add_source("journal", self.metrics_snapshot)

    def metrics_snapshot(self) -> dict:
        """Uniform stats-source protocol for the journal's counters."""
        return {
            "records_written": self.records_written,
            "flushes": self.flushes,
        }

    # ------------------------------------------------------------------
    # naming
    # ------------------------------------------------------------------
    def _intern(self, vertex: object) -> str:
        """Name *vertex* (caller holds the lock)."""
        name = self._names.get(id(vertex))
        if name is None:
            name = f"t{self._count}"
            self._count += 1
            self._names[id(vertex)] = name
            self._pinned.append(vertex)
        return name

    def name_of(self, vertex: object) -> str:
        """The stable journal name of *vertex* (interning it if new)."""
        with self._lock:
            return self._intern(vertex)

    # ------------------------------------------------------------------
    # the append path
    # ------------------------------------------------------------------
    def _emit(self, body: str, critical: bool) -> None:
        """Append one record; the caller holds the lock.

        *body* is the record's JSON fields sans ``seq`` (built with
        f-strings, not :func:`json.dumps` — record-dense programs put
        this call on the hot path, and the per-record overhead gate in
        ``benchmarks/bench_runtime_overhead.py`` prices every
        microsecond here).  Task names are internal (``tN``) and never
        need escaping; methods carrying arbitrary strings (policy names,
        error reprs) quote those fields with :func:`json.dumps`.
        """
        if self._closed:
            raise JournalError("journal already closed")
        if self._ts_base is not None:
            body = f'{body},"ts":{perf_counter_ns() - self._ts_base}'
        self._buf.append(f'{{{body},"seq":{self._seq}}}\n')
        self._seq += 1
        self.records_written += 1
        if critical or len(self._buf) >= self._flush_every:
            self._flush_locked(fsync=critical and self._fsync)

    # ------------------------------------------------------------------
    # event loggers (called by the verifier / runtimes)
    # ------------------------------------------------------------------
    def log_start(self, *, policy: str, runtime: str, fail_mode: str) -> None:
        """The header record: what configuration produced this journal."""
        with self._lock:
            self._emit(
                f'"kind":"start","policy":{json.dumps(policy)},'
                f'"runtime":{json.dumps(runtime)},'
                f'"fail_mode":{json.dumps(fail_mode)}',
                True,
            )

    def log_init(self, vertex: object) -> None:
        with self._lock:
            name = self._intern(vertex)
            self._emit(f'"kind":"init","task":"{name}"', False)

    def log_fork(self, parent: object, child: object) -> None:
        with self._lock:
            pname = self._intern(parent)
            cname = self._intern(child)
            self._emit(f'"kind":"fork","parent":"{pname}","child":"{cname}"', False)

    def log_verdict(self, joiner: object, joinee: object, ok: bool) -> None:
        """The permission check, at check time (write-ahead of the join)."""
        with self._lock:
            a = self._intern(joiner)
            b = self._intern(joinee)
            # A denial is about to fault or refer to Armus: make it durable.
            self._emit(
                f'"kind":"verdict","waiter":"{a}","joinee":"{b}",'
                f'"ok":{"true" if ok else "false"}',
                not ok,
            )

    def log_join(self, joiner: object, joinee: object) -> None:
        """A join that ran to completion (post-wait)."""
        with self._lock:
            a = self._intern(joiner)
            b = self._intern(joinee)
            self._emit(f'"kind":"join","waiter":"{a}","joinee":"{b}"', False)

    def log_block(
        self, joiner: object, joinee: object, timeout: Optional[float] = None
    ) -> None:
        """A join is about to block; flushed before the thread sleeps.

        *timeout* — when the wait carries a deadline — is recorded so
        the predictor knows a later ``unblock`` without a ``join`` may
        be a timeout rescue rather than a completion.
        """
        with self._lock:
            a = self._intern(joiner)
            b = self._intern(joinee)
            body = f'"kind":"block","waiter":"{a}","joinee":"{b}"'
            if timeout is not None:
                body += f',"timeout":{float(timeout)!r}'
            self._emit(body, True)

    def log_unblock(self, joiner: object, joinee: object) -> None:
        with self._lock:
            a = self._intern(joiner)
            b = self._intern(joinee)
            self._emit(f'"kind":"unblock","waiter":"{a}","joinee":"{b}"', False)

    def log_complete(self, vertex: object, ok: bool = True) -> None:
        """A task terminated (``ok=False``: with an unretried failure).

        Optional — older journals lack it; the predictor's partial
        order uses it to pin completion points between joins.
        """
        with self._lock:
            name = self._intern(vertex)
            self._emit(
                f'"kind":"complete","task":"{name}",'
                f'"ok":{"true" if ok else "false"}',
                False,
            )

    def log_avoided(self, joiner: object, joinee: object) -> None:
        """A blocking join was refused: it would have closed a true cycle."""
        with self._lock:
            a = self._intern(joiner)
            b = self._intern(joinee)
            self._emit(f'"kind":"avoided","waiter":"{a}","joinee":"{b}"', True)

    def log_quarantine(self, policy: str, site: str, error: str) -> None:
        with self._lock:
            self._emit(
                f'"kind":"quarantine","policy":{json.dumps(policy)},'
                f'"site":{json.dumps(site)},"error":{json.dumps(error)}',
                True,
            )

    def log_retry(self, task: object, new_task: object, attempt: int, error: str) -> None:
        """A failed task was re-forked; *new_task* is the fresh vertex."""
        with self._lock:
            old = self._intern(task)
            new = self._intern(new_task)
            self._emit(
                f'"kind":"retry","task":"{old}","reborn":"{new}",'
                f'"attempt":{int(attempt)},"error":{json.dumps(error)}',
                True,
            )

    # ------------------------------------------------------------------
    def _flush_locked(self, *, fsync: bool) -> None:
        """Push buffered lines to the OS; the caller holds the lock."""
        obs = self._obs
        t0 = perf_counter_ns() if obs is not None else 0
        if self._buf:
            self._fh.write("".join(self._buf))
            self._buf.clear()
        self._fh.flush()
        if fsync:
            os.fsync(self._fh.fileno())
        self.flushes += 1
        if obs is not None:
            obs.journal_flush_ns.observe(perf_counter_ns() - t0)

    def flush(self) -> None:
        with self._lock:
            if not self._closed:
                self._flush_locked(fsync=False)

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._flush_locked(fsync=self._fsync)
            self._closed = True
            self._fh.close()

    def __enter__(self) -> "TraceJournal":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False


# ----------------------------------------------------------------------
# the torn-tail-tolerant reader
# ----------------------------------------------------------------------
@dataclass
class JournalReadResult:
    """What :func:`read_journal` recovered from a journal file."""

    records: list[dict] = field(default_factory=list)
    #: True when the final record was truncated mid-write (crash tail)
    torn_tail: bool = False
    #: the dropped tail fragment, for diagnostics (empty when not torn)
    tail: str = ""


def read_journal(path: str) -> JournalReadResult:
    """Read a journal, tolerating exactly one torn record at the tail.

    A record is *complete* when its line ends with a newline and parses
    as JSON with a dense ``seq``.  The final line may be incomplete (no
    trailing newline — the classic ``kill -9`` torn write) or, if the
    crash landed inside the OS write, unparsable; either way it is
    dropped and flagged.  Any earlier unparsable line or any sequence
    gap raises :class:`~repro.errors.JournalCorruptError` — that is not
    crash damage, and silently skipping records would make the
    post-mortem lie.
    """
    with open(path, "r", encoding="utf-8", errors="replace", newline="") as fh:
        text = fh.read()
    result = JournalReadResult()
    if not text:
        return result
    lines = text.split("\n")
    if lines[-1] == "":
        lines.pop()  # clean trailing newline
    else:
        result.torn_tail = True
        result.tail = lines.pop()
    last = len(lines) - 1
    for i, line in enumerate(lines):
        try:
            record = json.loads(line)
            if not isinstance(record, dict) or "seq" not in record:
                raise ValueError("not a journal record")
        except ValueError as exc:
            if i == last and not result.torn_tail:
                # A final *complete-looking* line that does not parse can
                # only be a write cut inside the payload; fold it into
                # the torn tail rather than calling the file corrupt.
                result.torn_tail = True
                result.tail = line
                break
            raise JournalCorruptError(
                f"unparsable record at line {i + 1} of {path}: {line[:120]!r}"
            ) from exc
        expected = len(result.records)
        if record["seq"] != expected:
            raise JournalCorruptError(
                f"sequence gap at line {i + 1} of {path}: "
                f"expected seq {expected}, found {record['seq']}"
            )
        result.records.append(record)
    return result
