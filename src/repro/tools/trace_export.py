"""Export task-lifecycle traces to Chrome trace / Perfetto JSON.

Three pieces:

* :func:`write_chrome_trace` — serialise a live
  :class:`~repro.obs.tracing.Tracer` (or an already-built trace dict) to
  a ``.json`` file that ``ui.perfetto.dev`` and ``chrome://tracing``
  open directly.
* :func:`journal_to_trace` — reconstruct a timeline from a
  crash-consistent :mod:`~repro.tools.journal` file: every journalled
  task becomes its own track (named by its stable journal id ``tN`` —
  the shared-id bridge between journal records and tracer spans), with
  block/unblock pairs rendered as duration spans and everything else as
  instants.  Works post-mortem, on journals from runs that never had a
  tracer attached.
* :func:`validate_chrome_trace` — a structural validator (required keys,
  well-formed events, per-thread duration nesting) used by the
  end-to-end tests and the ``obs-smoke`` CI job, so "the trace loads in
  Perfetto" is checked mechanically, not by eyeball.
"""

from __future__ import annotations

import json
from typing import Optional, Union

from .journal import read_journal

__all__ = ["write_chrome_trace", "journal_to_trace", "validate_chrome_trace"]

#: journal tracks that do not belong to any task (header, quarantines)
_CONTROL_TID = 0


def write_chrome_trace(source: Union[dict, object], path: str) -> dict:
    """Write *source* as Chrome trace JSON; returns the written dict.

    *source* is either a trace dict (``{"traceEvents": [...]}``) or any
    object with a ``to_chrome_trace()`` method — a
    :class:`~repro.obs.tracing.Tracer` or a
    :class:`~repro.obs.Telemetry` session with tracing on.
    """
    if isinstance(source, dict):
        doc = source
    else:
        to_trace = getattr(source, "to_chrome_trace", None)
        if to_trace is None:
            raise TypeError(f"cannot export {type(source).__name__} as a trace")
        doc = to_trace()
        if doc is None:
            raise ValueError("tracing is disabled on this telemetry session")
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh)
    return doc


# ----------------------------------------------------------------------
# journal -> trace
# ----------------------------------------------------------------------
def _task_tid(name: str) -> int:
    """The synthetic track id of journal task ``tN`` (control track is 0)."""
    try:
        return int(name[1:]) + 1
    except (ValueError, IndexError):
        return _CONTROL_TID


def journal_to_trace(path: str, *, pid: int = 1, predictions=None) -> dict:
    """Render a trace journal as a Chrome trace dict, one track per task.

    Timestamps come from the journal's optional ``ts`` field (ns since
    journal open, written under ``timestamps=True``); journals without
    timestamps fall back to the dense ``seq`` number as a logical clock
    (1 µs per record), which preserves ordering and nesting even though
    durations are synthetic.  ``complete`` records (the PR 9 completion
    stream) land as completion instants on the finishing task's track.

    *predictions* optionally overlays ``repro predict`` results: a
    :class:`~repro.predict.PredictionReport`, a list of
    :class:`~repro.predict.PredictedDeadlock`, or plain cycles (task
    name tuples).  Each predicted cycle draws one ``predicted_deadlock``
    instant on every member task's track, at the journal's end — the
    cycle is counterfactual, not an event the recorded run reached.
    """
    result = read_journal(path)
    records = result.records

    def ts_us(record: dict) -> float:
        ts = record.get("ts")
        return ts / 1000.0 if ts is not None else float(record["seq"])

    end_us = max((ts_us(r) for r in records), default=0.0) + 1.0
    events: list[dict] = []
    tids: dict[int, str] = {_CONTROL_TID: "journal"}
    #: open block edges: (waiter, joinee) -> start ts (µs)
    open_blocks: dict[tuple, float] = {}

    def instant(name: str, tid: int, ts: float, args: dict) -> None:
        events.append(
            {
                "ph": "i",
                "name": name,
                "cat": "journal",
                "ts": ts,
                "pid": pid,
                "tid": tid,
                "s": "t",
                "args": args,
            }
        )

    for record in records:
        kind = record["kind"]
        ts = ts_us(record)
        args = {k: v for k, v in record.items() if k not in ("kind", "seq", "ts")}
        if kind == "block":
            open_blocks[(record["waiter"], record["joinee"])] = ts
            continue
        if kind == "unblock":
            key = (record["waiter"], record["joinee"])
            start = open_blocks.pop(key, None)
            if start is None:
                continue  # unblock without a block: ignore, reader validated seqs
            tid = _task_tid(record["waiter"])
            tids.setdefault(tid, f"task {record['waiter']}")
            events.append(
                {
                    "ph": "X",
                    "name": f"blocked on {record['joinee']}",
                    "cat": "join",
                    "ts": start,
                    "dur": max(0.001, ts - start),
                    "pid": pid,
                    "tid": tid,
                    "args": args,
                }
            )
            continue
        # instants, placed on the track of the acting task
        task = record.get("waiter") or record.get("task") or record.get("child")
        if kind == "fork":
            task = record.get("parent")
        tid = _task_tid(task) if task else _CONTROL_TID
        if task:
            tids.setdefault(tid, f"task {task}")
        if kind == "complete":
            # PR 9 completion stream: a distinct lifecycle instant that
            # visibly ends the task's track (``ok`` rides in args, so a
            # failed completion is distinguishable in the UI).
            events.append(
                {
                    "ph": "i",
                    "name": "complete" if record.get("ok", True) else "failed",
                    "cat": "lifecycle",
                    "ts": ts,
                    "pid": pid,
                    "tid": tid,
                    "s": "t",
                    "args": args,
                }
            )
            continue
        instant(kind, tid, ts, args)

    # joins still blocked at death: open-ended spans to the journal's end
    for (waiter, joinee), start in sorted(open_blocks.items()):
        tid = _task_tid(waiter)
        tids.setdefault(tid, f"task {waiter}")
        events.append(
            {
                "ph": "X",
                "name": f"blocked on {joinee} (unresolved)",
                "cat": "join",
                "ts": start,
                "dur": max(0.001, end_us - start),
                "pid": pid,
                "tid": tid,
                "args": {"waiter": waiter, "joinee": joinee, "unresolved": True},
            }
        )

    for cycle in _prediction_cycles(predictions):
        for task in cycle:
            tid = _task_tid(task)
            tids.setdefault(tid, f"task {task}")
            instant(
                "predicted_deadlock",
                tid,
                end_us,
                {"cycle": " -> ".join((*cycle, cycle[0])), "counterfactual": True},
            )

    meta = [
        {
            "ph": "M",
            "name": "thread_name",
            "pid": pid,
            "tid": tid,
            "args": {"name": name},
        }
        for tid, name in sorted(tids.items())
    ]
    return {"traceEvents": meta + events, "displayTimeUnit": "ms"}


def _prediction_cycles(predictions) -> list[tuple]:
    """Normalise a predictions overlay to a list of task-name cycles.

    Accepts a :class:`~repro.predict.PredictionReport`, an iterable of
    :class:`~repro.predict.PredictedDeadlock`, or plain cycles already
    as task-name sequences; None means no overlay.
    """
    if predictions is None:
        return []
    preds = getattr(predictions, "predictions", predictions)
    cycles = []
    for item in preds:
        cycle = getattr(item, "cycle", item)
        cycles.append(tuple(cycle))
    return cycles


# ----------------------------------------------------------------------
# validation
# ----------------------------------------------------------------------
def validate_chrome_trace(doc: dict) -> list[str]:
    """Structural problems in a Chrome trace dict (empty list = valid).

    Checks what Perfetto's importer actually cares about: a
    ``traceEvents`` list of well-formed events (``ph``/``name``/``pid``/
    ``tid``, numeric ``ts`` on non-metadata events, non-negative ``dur``
    on complete events, an ``id`` on flow events with every flow-finish
    paired to a flow-start), pid/tid consistency (integer ids, no mixed
    types within a track), and — the property the span instrumentation
    promises — that each thread's ``"X"`` events nest by duration
    containment, never partially overlapping.
    """
    problems: list[str] = []
    if not isinstance(doc, dict):
        return [f"trace must be a dict, got {type(doc).__name__}"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["missing or non-list traceEvents"]
    per_thread: dict[tuple, list[tuple]] = {}
    flow_starts: set = set()
    flow_finishes: list[tuple] = []
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            problems.append(f"event {i}: not an object")
            continue
        ph = ev.get("ph")
        for key in ("ph", "name", "pid", "tid"):
            if key not in ev:
                problems.append(f"event {i}: missing {key!r}")
        # pid/tid consistency: integer ids throughout — Perfetto merges
        # tracks by identity, and a tid that is 7 in one event and "7"
        # in another silently splits one thread into two tracks.
        pid, tid = ev.get("pid"), ev.get("tid")
        for label, value in (("pid", pid), ("tid", tid)):
            if value is not None and not isinstance(value, int):
                problems.append(
                    f"event {i}: non-integer {label} {value!r}"
                )
        if ph == "M":
            continue
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)):
            problems.append(f"event {i}: non-numeric ts {ts!r}")
            continue
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"event {i}: X event with bad dur {dur!r}")
                continue
            per_thread.setdefault((pid, tid), []).append(
                (ts, dur, ev.get("name"), i)
            )
        elif ph == "i":
            if ev.get("s") not in ("t", "p", "g"):
                problems.append(f"event {i}: instant without scope 's'")
        elif ph in ("s", "f"):
            # cross-process flow endpoints: an id is what pairs them;
            # a duration here would be malformed (flows are points).
            fid = ev.get("id")
            if fid in (None, ""):
                problems.append(f"event {i}: flow {ph!r} without id")
                continue
            if "dur" in ev:
                problems.append(f"event {i}: flow {ph!r} with dur")
            if ph == "s":
                flow_starts.add(fid)
            else:
                flow_finishes.append((fid, i))
    # every flow-finish must pair with a start somewhere in the trace —
    # an unpaired "f" is an arrow from nowhere (a dangling "s" is fine:
    # the receiving side may have dropped its buffer under pressure).
    for fid, i in flow_finishes:
        if fid not in flow_starts:
            problems.append(f"event {i}: flow finish id {fid!r} has no start")
    # duration nesting per thread: sorted by (start, -dur), spans must
    # form a stack — each span either fits inside the open span or
    # begins after it ends.
    for (pid, tid), spans in per_thread.items():
        spans.sort(key=lambda s: (s[0], -s[1]))
        stack: list[tuple] = []
        for ts, dur, name, i in spans:
            end = ts + dur
            while stack and ts >= stack[-1][1] - 1e-6:
                stack.pop()
            if stack and end > stack[-1][1] + 1e-6:
                problems.append(
                    f"event {i} ({name!r}): span [{ts}, {end}] partially "
                    f"overlaps enclosing span on tid {tid}"
                )
                continue
            stack.append((ts, end))
    return problems
