"""Textual visualisation of fork trees, permission orders and graphs.

Rendering helpers for debugging and teaching: the fork tree with each
task's TJ rank and spawn path, the permission matrix for small traces,
and Graphviz DOT export of fork trees and waits-for graphs.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Optional

from ..formal.actions import Action, Join, Task
from ..formal.fork_tree import ForkTree
from ..formal.kj_relation import KJKnowledge
from ..formal.tj_relation import TJOrderOracle

__all__ = [
    "render_fork_tree",
    "render_permission_matrix",
    "fork_tree_dot",
    "waits_for_dot",
]


def render_fork_tree(trace: Iterable[Action], *, show_order: bool = True) -> str:
    """ASCII fork tree; children in fork order, annotated with TJ rank.

    The rank is the position in the total order ``<`` (0 = minimum =
    root).  A task may join exactly the tasks of strictly higher rank.
    """
    trace = list(trace)
    tree = ForkTree.from_trace(trace)
    if tree.root is None:
        return "(empty tree)"
    rank = {t: i for i, t in enumerate(tree.preorder())}
    lines: list[str] = []

    def visit(task: Task, prefix: str, is_last: bool, is_root: bool) -> None:
        label = str(task)
        if show_order:
            label += f"  [rank {rank[task]}, path {tree.spawn_path(task)}]"
        if is_root:
            lines.append(label)
            child_prefix = ""
        else:
            connector = "`-- " if is_last else "|-- "
            lines.append(prefix + connector + label)
            child_prefix = prefix + ("    " if is_last else "|   ")
        kids = tree.children(task)
        for i, kid in enumerate(kids):
            visit(kid, child_prefix, i == len(kids) - 1, False)

    visit(tree.root, "", True, True)
    return "\n".join(lines)


def render_permission_matrix(trace: Iterable[Action]) -> str:
    """A joint TJ/KJ permission matrix for small traces.

    Cell codes: ``B`` permitted by both, ``T`` TJ only, ``.`` neither
    (KJ-only cannot occur — Theorem 4.3).  Rows are joiners, columns
    joinees, both in TJ order.
    """
    trace = list(trace)
    oracle = TJOrderOracle.from_trace(trace)
    knowledge = KJKnowledge.from_trace(trace)
    tasks = oracle.sorted_tasks()
    names = [str(t) for t in tasks]
    width = max((len(n) for n in names), default=1)
    header = " " * (width + 1) + " ".join(f"{n:>{width}}" for n in names)
    lines = [header]
    for a, an in zip(tasks, names):
        row = []
        for b in tasks:
            if a == b:
                row.append("-")
            elif knowledge.knows(a, b):
                assert oracle.less(a, b)  # Theorem 4.3
                row.append("B")
            elif oracle.less(a, b):
                row.append("T")
            else:
                row.append(".")
        lines.append(
            f"{an:>{width}} " + " ".join(f"{c:>{width}}" for c in row)
        )
    lines.append("B = KJ and TJ, T = TJ only, . = neither, - = self")
    return "\n".join(lines)


def _quote(x: object) -> str:
    return '"' + str(x).replace('"', r"\"") + '"'


def fork_tree_dot(trace: Iterable[Action], *, include_joins: bool = True) -> str:
    """Graphviz DOT for the fork tree, optionally with join edges dashed."""
    trace = list(trace)
    tree = ForkTree.from_trace(trace)
    lines = ["digraph forktree {", "  rankdir=TB;", "  node [shape=circle];"]
    for task in tree.tasks():
        parent = tree.parent(task)
        if parent is not None:
            lines.append(f"  {_quote(parent)} -> {_quote(task)};")
    if include_joins:
        for action in trace:
            if isinstance(action, Join):
                lines.append(
                    f"  {_quote(action.waiter)} -> {_quote(action.joinee)}"
                    " [style=dashed, color=forestgreen];"
                )
    lines.append("}")
    return "\n".join(lines)


def waits_for_dot(edges: Iterable[tuple[Hashable, Hashable]], *, title: str = "waits_for") -> str:
    """Graphviz DOT for a waits-for edge set (e.g. from an Armus graph)."""
    lines = [f"digraph {title} {{", "  node [shape=box];"]
    for waiter, joinee in edges:
        lines.append(f"  {_quote(waiter)} -> {_quote(joinee)};")
    lines.append("}")
    return "\n".join(lines)
