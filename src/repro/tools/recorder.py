"""Record a live runtime execution as a formal trace.

:class:`TraceRecordingPolicy` wraps any :class:`JoinPolicy` and records
every ``init``/``fork``/``join`` event as an action, bridging the runtime
world (Section 5) back to the trace formalism (Section 3).  The recorded
trace can be re-validated offline against any policy, written to disk in
the textual format, or fed to the precision experiments.

Join events are recorded at *permission-check* time, tagged with whether
they were permitted, so an offline KJ/TJ comparison sees exactly what the
online verifier saw.
"""

from __future__ import annotations

import threading
from typing import Optional

from ..core.policy import JoinPolicy
from ..formal.actions import Action, Fork, Init, Join

__all__ = ["TraceRecordingPolicy"]


class TraceRecordingPolicy(JoinPolicy):
    """A policy decorator that logs the event stream.

    The wrapper assigns each vertex a stable name (``t0``, ``t1``, ...)
    in fork order and appends actions under a lock (forks from different
    tasks may race).  ``permits``/``on_join`` delegate to the inner
    policy.
    """

    def __init__(self, inner: JoinPolicy) -> None:
        self.inner = inner
        self.name = inner.name
        self.trace: list[Action] = []
        self._names: dict[int, str] = {}
        self._lock = threading.Lock()
        self._count = 0

    def _name_of(self, vertex: object) -> str:
        return self._names[id(vertex)]

    def add_child(self, parent: Optional[object]) -> object:
        vertex = self.inner.add_child(parent)
        with self._lock:
            name = f"t{self._count}"
            self._count += 1
            self._names[id(vertex)] = name
            if parent is None:
                self.trace.append(Init(name))
            else:
                self.trace.append(Fork(self._name_of(parent), name))
        return vertex

    def permits(self, joiner: object, joinee: object) -> bool:
        try:
            ok = self.inner.permits(joiner, joinee)
        except BaseException:
            # Record the attempt even when the inner policy blows up, so
            # a trace of a crashed run is complete; tag it denied — the
            # verifier treats an exception as "no verdict reached", and
            # an offline reader must not mistake it for a permit.
            with self._lock:
                self.trace.append(
                    Join(self._name_of(joiner), self._name_of(joinee), permitted=False)
                )
            raise
        with self._lock:
            self.trace.append(
                Join(self._name_of(joiner), self._name_of(joinee), permitted=ok)
            )
        return ok

    def on_join(self, joiner: object, joinee: object) -> None:
        self.inner.on_join(joiner, joinee)

    def space_units(self) -> int:
        return self.inner.space_units()

    def snapshot(self) -> list[Action]:
        """A copy of the trace recorded so far."""
        with self._lock:
            return list(self.trace)
