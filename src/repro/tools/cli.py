"""Command-line entry point: ``python -m repro.tools.cli <command>``.

Commands
--------
``check <trace-file> [--policy TJ|KJ]``
    Validate a textual trace against a policy; report violations and
    whether the trace contains a Definition 3.9 deadlock.
``viz <trace-file> [--format tree|matrix|dot]``
    Render the fork tree (with TJ ranks), the TJ/KJ permission matrix,
    or Graphviz DOT.
``replay <trace-file> [--policy P] [--no-fallback]``
    Execute the trace on the cooperative runtime under a verifier and
    report completed/refused joins and fallback activity.
``bench <name> [--policy P] [--param k=v ...]``
    Run one benchmark once and print verification/fallback statistics.
``table1 [--sizes ...]``
    Regenerate the empirical complexity table (Table 1).
``table2 [--reps N] [--scale small|default]``
    Regenerate the overhead table (Table 2).
``figure2 [--reps N]``
    Regenerate the execution-time chart (Figure 2).
``bench-hotpath [--reps N] [--smoke] [--json PATH] [--min-speedup F]
[--max-kj-ratio F]``
    Run the verifier hot-path microbenchmarks (join-heavy, fork-heavy,
    deep-tree, wide-tree across all TJ/KJ policies) and write
    ``BENCH_hotpath.json`` with the TJ-SP kernel backend recorded per
    measurement; optionally enforce the legacy-speedup and KJ-VC-parity
    gates.
``bench-runtime [--reps N] [--smoke] [--json PATH] [--min-join-speedup F]
[--max-overhead F] [--max-journal-overhead F]``
    Run the end-to-end runtime overhead suite: the join-latency
    microshape under the event-driven and polling wait protocols, the
    journal-on vs journal-off fork chain, plus Table-2-style
    policy-vs-baseline configs; writes ``BENCH_runtime.json`` and
    enforces the regression gates.
``run <trace-file> [--runtime threaded|pool] [--policy P] [--timeout S]
[--watchdog-interval S] [--no-watchdog] [--fail-mode raise|open|closed]
[--journal PATH] [--verifier remote://HOST:PORT]``
    Execute the trace on a *blocking* runtime under full supervision:
    join deadlines, stall watchdog, cancellation.  Joins refused or
    terminated by the supervision layer are reported, never hung.
    ``--journal`` writes a crash-consistent trace journal of the run;
    ``--verifier`` checks joins against a verification sidecar instead
    of the in-process verifier (degrading to local Armus fallback if
    the sidecar goes away).
``serve [--host H] [--port P] [--journal PATH] [--inbox-limit N]
[--ack-every N] [--liveness-timeout S] [--obs]``
    Run the verification sidecar: a long-lived server that verifies
    fork/join event streams for many client processes.  Prints
    ``LISTENING <host> <port>`` once ready and blocks until SIGTERM;
    with ``--journal`` it rebuilds live sessions from the journal on
    restart.  ``--obs`` turns telemetry on in the sidecar so ``stats``
    requests return metrics and trace state (and ``repro top --live``
    can attach).
``journal-replay <journal-file>``
    Reconstruct verifier state from a trace journal (tolerating a
    crash-torn tail) and print the post-mortem: blocked edges at death,
    quarantine/retry events, and re-derived verdicts.  Exits 1 if any
    journalled verdict disagrees with a fresh policy instance; exits 2
    if the journal file is missing or empty.
``chaos [--programs N] [--seed S] [--policies ...] [--runtimes ...]
[--crash-rate R] [--delay-rate R] [--fault-rate R] [--max-tasks N]
[--smoke] [--recovery] [--service]``
    Run the deterministic fault-injection suite: seeded random fork/join
    programs across policies and runtimes, checking the supervised-
    runtime invariants.  ``--recovery`` adds the self-healing slice:
    policy-crash quarantine (fail-open and fail-closed) plus flaky-task
    retry programs.  ``--service`` adds the sidecar slice: kill -9 the
    verification sidecar mid-run and assert the client degrades, stays
    sound, and reconciles to verdict equality with an all-local run.
    Exits 1 on any violation.
``top (--live URL [--once] | --metrics FILE | --predict JOURNAL |
<trace-file> [--runtime R] [--policy P] [--interval S])``
    The live telemetry view: with ``--live``, attach to a running
    :class:`~repro.runtime.procs.ProcessRuntime` introspection endpoint
    or ``repro serve`` sidecar and render the merged blocked-join
    table, per-worker counters, and latency histograms on a cadence
    (``--once`` renders a single screen); with a trace file, execute it
    under full telemetry and render live state until the run completes;
    with ``--metrics``, render a saved metrics-snapshot JSON
    post-mortem (a missing or empty snapshot file exits 2 with a
    one-line diagnosis); with ``--predict``, run the deadlock predictor
    on a journal and render the predicted-cycle table.
``predict`` additionally accepts ``--trace-out PATH``: the journal
timeline with each predicted cycle overlaid as counterfactual
``predicted_deadlock`` instants on the member tasks' tracks.
``procs`` accepts ``--trace-out`` (merged cross-process Perfetto
trace), ``--metrics-out`` (merged fleet metrics snapshot), and
``--introspect PORT`` (live stats endpoint for ``top --live``).

``run`` and ``chaos`` additionally accept ``--trace-out PATH`` (write a
Perfetto/Chrome-trace JSON of the execution) and ``--metrics-out PATH``
(write the final metrics snapshot as JSON); ``bench-runtime`` accepts
``--telemetry`` to run the suite with telemetry enabled.
"""

from __future__ import annotations

import argparse
import contextlib
import sys
from typing import Optional, Sequence

from ..analysis import (
    measure_policy_costs,
    render_figure2,
    render_table1,
    render_table2,
)
from ..benchsuite import ALL_BENCHMARKS, Harness, make_benchmark
from ..core.policy import POLICY_REGISTRY
from ..formal.actions import parse_trace
from ..formal.deadlock import find_join_cycle
from ..formal.generators import balanced_fork_trace, chain_fork_trace, star_fork_trace
from ..formal.trace import KJFamily, TJFamily, validate_trace

__all__ = ["main"]

_SMALL = {
    "Jacobi": {"n": 96, "blocks": 4, "iterations": 4},
    "Smith-Waterman": {"length": 240, "chunks": 6},
    "Crypt": {"size_bytes": 256 * 1024, "tasks": 128},
    "Strassen": {"n": 128, "cutoff": 64},
    "Series": {"coefficients": 400, "samples": 100},
    "NQueens": {"n": 8, "cutoff": 3},
}


def _cmd_check(args: argparse.Namespace) -> int:
    with open(args.trace) as fh:
        trace = parse_trace(fh.read())
    family = {"TJ": TJFamily, "KJ": KJFamily}[args.policy]
    result = validate_trace(trace, family)
    cycle = find_join_cycle(trace)
    print(f"policy:        {result.policy}")
    print(f"actions:       {len(result.verdicts)}")
    print(f"tasks:         {len(result.tasks)}")
    print(f"valid:         {result.valid}")
    for v in result.verdicts:
        if not v.ok:
            print(f"  violation at #{v.index}: {v.action}  ({v.reason})")
    print(f"deadlock:      {'cycle ' + ' -> '.join(map(str, cycle)) if cycle else 'none'}")
    return 0 if result.valid else 1


def _cmd_viz(args: argparse.Namespace) -> int:
    from .viz import fork_tree_dot, render_fork_tree, render_permission_matrix

    with open(args.trace) as fh:
        trace = parse_trace(fh.read())
    if args.format == "tree":
        print(render_fork_tree(trace))
    elif args.format == "matrix":
        print(render_permission_matrix(trace))
    else:
        print(fork_tree_dot(trace))
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    from .replay import replay_on_runtime

    with open(args.trace) as fh:
        trace = parse_trace(fh.read())
    policy = None if args.policy == "none" else args.policy
    outcome = replay_on_runtime(trace, policy, fallback=not args.no_fallback)
    rt = outcome.runtime
    print(f"policy:           {args.policy}")
    print(f"completed joins:  {len(outcome.completed_joins)}")
    print(f"refused joins:    {len(outcome.refused_joins)}")
    for waiter, joinee, kind in outcome.refused_joins:
        print(f"  join({waiter}, {joinee}) refused: {kind}")
    if rt.detector is not None:
        print(f"false positives:  {rt.detector.stats.false_positives}")
        print(f"deadlocks avoided: {rt.detector.stats.deadlocks_avoided}")
    return 0 if outcome.clean else 1


def _telemetry_scope(args: argparse.Namespace):
    """An active telemetry session when the command requested exports."""
    if getattr(args, "trace_out", None) or getattr(args, "metrics_out", None):
        from .. import obs

        return obs.enabled()
    return contextlib.nullcontext(None)


def _export_telemetry(session, args: argparse.Namespace) -> None:
    """Write the requested trace/metrics artifacts from *session*."""
    if session is None:
        return
    if getattr(args, "metrics_out", None):
        with open(args.metrics_out, "w") as fh:
            fh.write(session.to_json())
        print(f"metrics snapshot written to {args.metrics_out}")
    if getattr(args, "trace_out", None):
        from .trace_export import write_chrome_trace

        write_chrome_trace(session, args.trace_out)
        print(f"trace written to {args.trace_out}")


def _cmd_run(args: argparse.Namespace) -> int:
    from .replay import replay_on_threaded

    with open(args.trace) as fh:
        trace = parse_trace(fh.read())
    policy = None if args.policy == "none" else args.policy
    watchdog = False if args.no_watchdog else args.watchdog_interval
    with _telemetry_scope(args) as session:
        outcome = replay_on_threaded(
            trace,
            policy,
            fallback=not args.no_fallback,
            runtime=args.runtime,
            default_join_timeout=args.timeout,
            watchdog=watchdog,
            fail_mode=args.fail_mode,
            journal=args.journal,
            verifier=args.verifier,
        )
        rt = outcome.runtime
        print(f"runtime:          {args.runtime}")
        print(f"policy:           {args.policy}")
        print(f"completed joins:  {len(outcome.completed_joins)}")
        print(f"refused joins:    {len(outcome.refused_joins)}")
        for waiter, joinee, kind in outcome.refused_joins:
            print(f"  join({waiter}, {joinee}) refused: {kind}")
        if rt.detector is not None:
            print(f"false positives:  {rt.detector.stats.false_positives}")
            print(f"deadlocks avoided: {rt.detector.stats.deadlocks_avoided}")
        if rt.watchdog is not None:
            print(f"watchdog stalls:  {rt.watchdog.deadlocks_detected}")
        if rt.verifier.quarantined:
            print(f"QUARANTINED:      {rt.verifier.quarantine_error}")
        if args.verifier:
            snap = rt.verifier.service_snapshot()
            print(f"verifier:         {args.verifier}")
            print(
                f"service:          degraded={snap['degraded']} "
                f"degradations={snap['degradations']} "
                f"reconciles={snap['reconciles']}"
            )
        if args.journal:
            print(f"journal:          {args.journal}")
        _export_telemetry(session, args)
    return 0 if outcome.clean else 1


def _require_readable(path: str, what: str) -> Optional[str]:
    """One-line diagnosis when *path* is missing or empty, else None.

    The journal/metrics commands are post-mortem tools: pointing them at
    a file that never got written is an operator mistake, not a program
    crash, so they report it in one line and exit 2 instead of dumping a
    traceback.
    """
    import os

    if not os.path.exists(path):
        return f"{what} file not found: {path}"
    if os.path.isdir(path):
        return f"{what} path is a directory, not a file: {path}"
    if os.path.getsize(path) == 0:
        return f"{what} file is empty: {path}"
    return None


def _cmd_journal_replay(args: argparse.Namespace) -> int:
    from .replay import replay_journal

    problem = _require_readable(args.journal, "journal")
    if problem:
        print(f"journal-replay: {problem}", file=sys.stderr)
        return 2
    replay = replay_journal(args.journal)
    print(replay.report())
    return 1 if replay.recheck_mismatches else 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from ..service.server import main as server_main

    argv = ["--host", args.host, "--port", str(args.port)]
    if args.journal:
        argv += ["--journal", args.journal]
    argv += ["--inbox-limit", str(args.inbox_limit)]
    argv += ["--ack-every", str(args.ack_every)]
    argv += ["--liveness-timeout", str(args.liveness_timeout)]
    if args.obs:
        argv += ["--obs"]
    return server_main(argv)


def _cmd_procs(args: argparse.Namespace) -> int:
    import json as _json

    from ..testing.chaos import ChaosInvariantError, run_procs_divergence

    with _telemetry_scope(args) as session:
        try:
            result = run_procs_divergence(
                args.seed,
                workers=args.workers,
                tasks=args.tasks,
                fanout=args.fanout,
                spawn_paths=args.spawn_paths,
                sidecar=args.sidecar,
                kill_worker=args.kill_worker,
                check=args.check_divergence,
                introspect=args.introspect,
            )
        except ChaosInvariantError as exc:
            print(f"procs: FAIL {exc}", file=sys.stderr)
            return 1
        js = result.join_stats
        print(
            f"procs: workers={result.workers} dispatches={result.dispatches} "
            f"fanout={result.fanout} spawn_paths={result.spawn_paths}"
        )
        print(
            f"  killed_worker={result.killed_worker} deaths={result.worker_deaths} "
            f"redispatched={result.tasks_redispatched} orphans={result.orphan_results}"
        )
        print(
            f"  joins: local={js['local_joins']} cross={js['cross_joins']} "
            f"degraded={js['degraded_joins']} "
            f"escalation={js['escalation_ratio']:.3f}"
        )
        print(f"  divergences={len(result.divergences)}")
        if session is not None and args.metrics_out:
            # the merged fleet registry (parent + workers + retired cells),
            # not the parent-only session snapshot _export_telemetry writes
            snap = result.fleet_metrics or session.snapshot()
            with open(args.metrics_out, "w") as fh:
                _json.dump(snap, fh, indent=2)
            print(f"fleet metrics snapshot written to {args.metrics_out}")
        if session is not None and args.trace_out:
            from .trace_export import write_chrome_trace

            write_chrome_trace(session, args.trace_out)
            print(f"trace written to {args.trace_out}")
    return 1 if result.divergences else 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    with _telemetry_scope(args) as session:
        status = _chaos_body(args)
        _export_telemetry(session, args)
    return status


def _chaos_body(args: argparse.Namespace) -> int:
    from ..testing.chaos import (
        RUNTIMES,
        repro_command,
        run_chaos_program,
        run_with_policy_quarantine,
        run_with_task_retries,
        run_with_verifier_faults,
    )
    from ..testing.faults import FaultPlan

    program_id = getattr(args, "program_id", None)

    def indices(n: int) -> list:
        return [program_id] if program_id is not None else list(range(n))

    repro_printed = [False]

    def print_repro(kind: str, i, **flags) -> None:
        # one single-line repro command per red run, at the first failure
        if repro_printed[0]:
            return
        repro_printed[0] = True
        print("repro: " + repro_command(kind, args.seed, i, **flags))

    if args.smoke:
        programs = args.programs if args.programs is not None else 2
        policies = args.policies or ["TJ-SP", "KJ-CC", "none"]
        runtimes = args.runtimes or list(RUNTIMES)
        crash_rate = args.crash_rate if args.crash_rate is not None else 0.15
        delay_rate = args.delay_rate if args.delay_rate is not None else 0.3
        max_tasks = args.max_tasks or 8
    else:
        programs = args.programs if args.programs is not None else 12
        policies = args.policies or sorted(POLICY_REGISTRY)
        runtimes = args.runtimes or list(RUNTIMES)
        crash_rate = args.crash_rate if args.crash_rate is not None else 0.15
        delay_rate = args.delay_rate if args.delay_rate is not None else 0.25
        max_tasks = args.max_tasks or 12

    total = 0
    bad = 0
    for policy in policies:
        for runtime in runtimes:
            for i in indices(programs):
                seed = args.seed + i
                plan = FaultPlan(seed=seed, delay_rate=delay_rate)
                result = run_chaos_program(
                    seed,
                    policy=None if policy == "none" else policy,
                    runtime=runtime,
                    max_tasks=max_tasks,
                    crash_rate=crash_rate,
                    plan=plan,
                    check=False,
                )
                total += 1
                if result.violations:
                    bad += 1
                    print(
                        f"FAIL seed={seed} policy={policy} runtime={runtime}:"
                    )
                    for violation in result.violations:
                        print(f"  {violation}")
                    print_repro(
                        "",
                        i,
                        policies=policy,
                        runtimes=runtime,
                        max_tasks=max_tasks,
                        crash_rate=crash_rate,
                        delay_rate=delay_rate,
                        fault_rate=0,
                    )
    fault_rate = args.fault_rate if args.fault_rate is not None else 0.2
    fault_runs = 0
    if fault_rate > 0:
        for runtime in runtimes:
            for i in indices(max(1, programs // 2)):
                seed = args.seed + i
                try:
                    run_with_verifier_faults(
                        seed,
                        policy="TJ-SP",
                        runtime=runtime,
                        max_tasks=max_tasks,
                        fault_rate=fault_rate,
                    )
                except AssertionError as exc:
                    bad += 1
                    print(f"FAIL verifier-faults seed={seed} runtime={runtime}: {exc}")
                    print_repro(
                        "",
                        i,
                        policies="TJ-SP",
                        runtimes=runtime,
                        max_tasks=max_tasks,
                        fault_rate=fault_rate,
                        programs=0,
                    )
                total += 1
                fault_runs += 1
    recovery_runs = 0
    if args.recovery:
        recovery_policies = [p for p in policies if p != "none"]
        for runtime in runtimes:
            for policy in recovery_policies:
                for fail_mode in ("open", "closed"):
                    try:
                        run_with_policy_quarantine(
                            args.seed,
                            policy=policy,
                            runtime=runtime,
                            fail_mode=fail_mode,
                        )
                    except AssertionError as exc:
                        bad += 1
                        print(
                            f"FAIL quarantine policy={policy} runtime={runtime} "
                            f"fail_mode={fail_mode}: {exc}"
                        )
                        print_repro(
                            "--recovery",
                            None,
                            policies=policy,
                            runtimes=runtime,
                            fault_rate=0,
                        )
                    total += 1
                    recovery_runs += 1
            for i in indices(max(1, programs // 2)):
                seed = args.seed + i
                try:
                    run_with_task_retries(
                        seed, policy="TJ-SP", runtime=runtime, max_tasks=max_tasks
                    )
                except AssertionError as exc:
                    bad += 1
                    print(f"FAIL retries seed={seed} runtime={runtime}: {exc}")
                    print_repro(
                        "--recovery",
                        i,
                        runtimes=runtime,
                        max_tasks=max_tasks,
                        fault_rate=0,
                    )
                total += 1
                recovery_runs += 1
    service_runs = 0
    if args.service:
        from ..testing.chaos import run_with_service_faults

        service_programs = max(1, programs // 2) if args.smoke else max(2, programs // 2)
        for runtime in runtimes:
            for i in range(service_programs):
                seed = args.seed + i
                try:
                    result = run_with_service_faults(
                        seed,
                        policy="TJ-SP",
                        runtime=runtime,
                        max_tasks=max_tasks,
                    )
                    print(
                        f"service seed={seed} runtime={runtime}: "
                        f"killed={result.sidecar_killed} "
                        f"degradations={result.degradations} "
                        f"reconciles={result.reconciles} "
                        f"verdicts={result.journal_verdicts}"
                    )
                except AssertionError as exc:
                    bad += 1
                    print(f"FAIL service seed={seed} runtime={runtime}: {exc}")
                    print_repro(
                        "--service",
                        i,
                        runtimes=runtime,
                        max_tasks=max_tasks,
                        fault_rate=0,
                    )
                total += 1
                service_runs += 1
        # the service loop is seed-indexed like the main sweep
    predict_runs = 0
    if args.predict:
        from ..testing.chaos import run_predict_loop

        predict_programs = max(2, programs // 2) if args.smoke else max(4, programs // 2)
        result = run_predict_loop(
            predict_programs,
            seed=args.seed,
            journal_dir=args.journal_dir,
            check=False,
            program_id=program_id,
        )
        predict_runs = len(result.journals)
        total += predict_runs
        flagged_paths = {path for path, _ in result.predictions}
        for path in result.journals:
            if path in flagged_paths:
                print(f"flagged journal={path}")
        print(
            f"predict: {predict_runs} journals, "
            f"{result.flagged_programs} flagged "
            f"({result.clean_flagged} from clean runs), "
            f"{len(result.predictions)} witnesses verified"
        )
        if result.violations:
            bad += 1
            for violation in result.violations:
                print(f"FAIL predict: {violation}")
            print_repro(
                "--predict",
                program_id if program_id is not None else 0,
                programs=predict_programs,
                journal_dir=args.journal_dir,
            )
    print(
        f"chaos: {total} programs ({fault_runs} with verifier faults, "
        f"{recovery_runs} recovery, {service_runs} service, "
        f"{predict_runs} predict), "
        f"{total - bad} passed, {bad} failed"
    )
    return 1 if bad else 0


def _cmd_predict(args: argparse.Namespace) -> int:
    from ..predict import predict_deadlocks

    report = predict_deadlocks(
        args.journal,
        policies=tuple(args.policies or ("TJ-SP", "KJ-VC")),
        max_schedules=args.max_schedules,
    )
    print(report.report())
    if args.trace_out:
        from .trace_export import journal_to_trace, write_chrome_trace

        write_chrome_trace(
            journal_to_trace(args.journal, predictions=report), args.trace_out
        )
        print(f"prediction trace written: {args.trace_out}")
    if args.witness_out:
        if report.predictions:
            at = min(args.witness_index, len(report.predictions) - 1)
            report.predictions[at].save(args.witness_out)
            print(f"witness written: {args.witness_out}")
        else:
            print("no predictions; no witness written")
    if args.expect == "flagged" and not report.flagged:
        print("EXPECT FAILED: journal was not flagged")
        return 1
    if args.expect == "clean" and report.flagged:
        print("EXPECT FAILED: journal was flagged")
        return 1
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    from ..predict import TraceProgram, read_witness

    if args.schedule:
        witness = read_witness(args.schedule)
        program, schedule = witness.program, witness.schedule
        print(
            f"witness: cycle {' -> '.join(witness.cycle)} "
            f"({len(schedule)} decisions, journal {witness.journal or '?'})"
        )
    elif args.journal:
        from ..tools.journal import read_journal

        program = TraceProgram.from_records(read_journal(args.journal).records)
        schedule = None
    else:
        print("simulate needs --schedule WITNESS or --journal PATH")
        return 2
    policy = None if args.policy in (None, "none") else args.policy
    outcome = program.run_sim(
        policy,
        fallback=not args.no_fallback,
        seed=args.seed,
        schedule=schedule,
    )
    print(
        f"simulated: policy={args.policy or 'none'} verdict={outcome.verdict} "
        f"steps={outcome.steps} decisions={len(outcome.schedule or ())}"
    )
    if outcome.deadlock is not None:
        print("  blocked cycle: " + " -> ".join(outcome.deadlock + (outcome.deadlock[0],)))
    for waiter, joinee, error in outcome.refusals:
        print(f"  refused: {waiter} join {joinee} ({error})")
    if args.record_out and outcome.schedule is not None:
        outcome.schedule.save(args.record_out)
        print(f"recorded schedule written: {args.record_out}")
    if args.expect and outcome.verdict != args.expect:
        print(f"EXPECT FAILED: wanted {args.expect}, got {outcome.verdict}")
        return 1
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    params = dict(_SMALL.get(args.name, {})) if args.scale == "small" else {}
    for kv in args.param or []:
        k, _, v = kv.partition("=")
        params[k] = int(v) if v.lstrip("-").isdigit() else v
    bench = make_benchmark(args.name, **params)
    policy = None if args.policy == "none" else args.policy
    result, rt = bench.execute(policy)
    ok = bench.verify(result)
    print(f"benchmark:       {bench!r}")
    print(f"policy:          {args.policy}")
    print(f"verified:        {ok}")
    print(f"forks:           {rt.verifier.stats.forks}")
    print(f"joins checked:   {rt.verifier.stats.joins_checked}")
    print(f"joins rejected:  {rt.verifier.stats.joins_rejected}")
    if rt.detector is not None:
        print(f"false positives: {rt.detector.stats.false_positives}")
        print(f"deadlocks avoided: {rt.detector.stats.deadlocks_avoided}")
    print(f"verifier space:  {rt.policy.space_units()} units")
    return 0 if ok else 1


def _cmd_table1(args: argparse.Namespace) -> int:
    sizes = args.sizes or [256, 1024, 4096]
    shapes = {
        "chain": chain_fork_trace,
        "star": star_fork_trace,
        "balanced": balanced_fork_trace,
    }
    points = []
    for policy in ("KJ-VC", "KJ-SS", "TJ-GT", "TJ-JP", "TJ-SP", "TJ-OM"):
        for shape, gen in shapes.items():
            for n in sizes:
                points.append(
                    measure_policy_costs(policy, shape, gen(n), queries=args.queries)
                )
    print(render_table1(points))
    return 0


def _make_harness(args: argparse.Namespace) -> Harness:
    return Harness(repetitions=args.reps, warmup=1)


def _suite_reports(args: argparse.Namespace):
    harness = _make_harness(args)
    overrides = (
        {name.replace("-", "_"): params for name, params in _SMALL.items()}
        if args.scale == "small"
        else {}
    )
    names = args.benchmarks or ALL_BENCHMARKS
    return harness.measure_suite(names, **overrides)


def _cmd_table2(args: argparse.Namespace) -> int:
    reports = _suite_reports(args)
    print(render_table2(reports))
    if args.json:
        from ..analysis.io import save_reports

        save_reports(reports, args.json)
        print(f"raw samples written to {args.json}")
    return 0


def _cmd_figure2(args: argparse.Namespace) -> int:
    reports = _suite_reports(args)
    print(render_figure2(reports))
    if args.svg:
        from ..analysis.figure2_svg import render_figure2_svg

        with open(args.svg, "w") as fh:
            fh.write(render_figure2_svg(reports))
        print(f"SVG chart written to {args.svg}")
    return 0


def _cmd_bench_hotpath(args: argparse.Namespace) -> int:
    from ..analysis.hotpath import (
        SHAPE_PARAMS,
        SMOKE_PARAMS,
        render_hotpath_table,
        run_hotpath_suite,
        speedup,
    )
    from ..analysis.io import save_hotpath

    params = SMOKE_PARAMS if args.smoke else SHAPE_PARAMS
    measurements = run_hotpath_suite(repetitions=args.reps, params=params)
    print(render_hotpath_table(measurements))
    tj = next(
        (m for m in measurements if (m.shape, m.policy) == ("join-heavy", "TJ-SP")),
        None,
    )
    if tj is not None:
        print(f"TJ-SP kernel backend: {tj.backend}")
    save_hotpath(measurements, args.json, params)
    print(f"raw samples written to {args.json}")
    status = 0
    factor = speedup(measurements, "join-heavy")
    if args.min_speedup and factor < args.min_speedup:
        print(
            f"REGRESSION: join-heavy TJ-SP speedup {factor:.2f}x "
            f"below the {args.min_speedup:.2f}x gate"
        )
        status = 1
    if args.max_kj_ratio:
        ratio = 1.0 / speedup(measurements, "join-heavy", baseline="KJ-VC")
        if ratio > args.max_kj_ratio:
            print(
                f"REGRESSION: join-heavy TJ-SP costs {ratio:.2f}x KJ-VC "
                f"per event, above the {args.max_kj_ratio:.2f}x gate"
            )
            status = 1
    return status


def _top_live(args: argparse.Namespace) -> int:
    """Attach to a running ProcessRuntime / sidecar and render its stats."""
    import time as _time

    from ..errors import ServiceProtocolError, ServiceUnavailableError
    from ..obs.live import fetch_stats
    from ..obs.top import render_live_stats

    try:
        while True:
            try:
                stats = fetch_stats(args.live)
            except (ServiceUnavailableError, ServiceProtocolError, OSError) as exc:
                print(f"top: cannot fetch stats from {args.live}: {exc}", file=sys.stderr)
                return 2
            print(render_live_stats(stats))
            if args.once:
                return 0
            print()
            _time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0


def _cmd_top(args: argparse.Namespace) -> int:
    import json as _json
    import threading

    from ..obs.top import render_snapshot, render_top

    if args.live:
        return _top_live(args)
    if args.predict:
        problem = _require_readable(args.predict, "journal")
        if problem:
            print(f"top: {problem}", file=sys.stderr)
            return 2
        from ..obs.top import render_predictions
        from ..predict import predict_deadlocks

        report = predict_deadlocks(
            args.predict, policies=("TJ-SP", "KJ-VC")
        )
        print(render_predictions(report))
        if not args.metrics and not args.trace:
            return 0
        print()
    if args.metrics:
        problem = _require_readable(args.metrics, "metrics")
        if problem:
            print(f"top: {problem}", file=sys.stderr)
            return 2
        with open(args.metrics) as fh:
            snap = _json.load(fh)
        print(render_snapshot(snap))
        return 0
    if not args.trace:
        print("top: a trace file (live mode) or --metrics FILE is required")
        return 2
    from .. import obs
    from .replay import replay_on_threaded

    with open(args.trace) as fh:
        trace = parse_trace(fh.read())
    policy = None if args.policy == "none" else args.policy
    box: dict = {}
    with obs.enabled() as session:

        def runner() -> None:
            try:
                box["outcome"] = replay_on_threaded(
                    trace, policy, runtime=args.runtime
                )
            except BaseException as exc:  # rendered, then reported via exit code
                box["error"] = exc

        worker = threading.Thread(target=runner, name="top-replay", daemon=True)
        worker.start()
        while worker.is_alive():
            worker.join(args.interval)
            print(render_top(session))
            print()
        print(render_top(session))
    if "error" in box:
        print(f"run failed: {box['error']!r}")
        return 1
    return 0 if box["outcome"].clean else 1


def _cmd_bench_runtime(args: argparse.Namespace) -> int:
    from ..analysis.io import save_runtime
    from ..analysis.runtime_overhead import (
        render_runtime_table,
        run_runtime_suite,
    )

    if args.telemetry:
        from .. import obs

        scope = obs.enabled()
    else:
        scope = contextlib.nullcontext(None)
    with scope:
        result = run_runtime_suite(smoke=args.smoke, repetitions=args.reps)
    print(render_runtime_table(result))
    save_runtime(result, args.json)
    print(f"raw samples written to {args.json}")
    status = 0
    speedup = result.join_speedup
    if args.min_join_speedup and speedup < args.min_join_speedup:
        print(
            f"REGRESSION: event-driven join speedup {speedup:.2f}x "
            f"below the {args.min_join_speedup:.2f}x gate"
        )
        status = 1
    if args.max_overhead:
        factor = result.overhead("TJ-SP")
        if factor > args.max_overhead:
            print(
                f"REGRESSION: TJ-SP end-to-end overhead {factor:.3f}x "
                f"above the {args.max_overhead:.2f}x bound"
            )
            status = 1
    if args.max_journal_overhead:
        factor = result.journal_overhead
        if factor > args.max_journal_overhead:
            print(
                f"REGRESSION: journal-on overhead {factor:.3f}x "
                f"above the {args.max_journal_overhead:.2f}x bound"
            )
            status = 1
    return status


def _cmd_report(args: argparse.Namespace) -> int:
    from ..analysis.report import ReportConfig, build_report

    text = build_report(ReportConfig(repetitions=args.reps))
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text)
        print(f"wrote {args.out}")
    else:
        print(text)
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("check", help="validate a trace file")
    p.add_argument("trace")
    p.add_argument("--policy", choices=["TJ", "KJ"], default="TJ")
    p.set_defaults(fn=_cmd_check)

    p = sub.add_parser("viz", help="render a trace")
    p.add_argument("trace")
    p.add_argument("--format", choices=["tree", "matrix", "dot"], default="tree")
    p.set_defaults(fn=_cmd_viz)

    p = sub.add_parser("replay", help="execute a trace on the runtime")
    p.add_argument("trace")
    p.add_argument(
        "--policy",
        default="TJ-SP",
        choices=sorted(POLICY_REGISTRY),
    )
    p.add_argument("--no-fallback", action="store_true")
    p.set_defaults(fn=_cmd_replay)

    p = sub.add_parser("run", help="execute a trace on a supervised blocking runtime")
    p.add_argument("trace")
    p.add_argument(
        "--policy",
        default="TJ-SP",
        choices=sorted(POLICY_REGISTRY),
    )
    p.add_argument("--runtime", choices=["threaded", "pool"], default="threaded")
    p.add_argument("--no-fallback", action="store_true")
    p.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="runtime-wide default join timeout",
    )
    p.add_argument(
        "--watchdog-interval",
        type=float,
        default=0.1,
        metavar="SECONDS",
        help="stall-watchdog scan interval",
    )
    p.add_argument("--no-watchdog", action="store_true", help="disable the stall watchdog")
    p.add_argument(
        "--fail-mode",
        choices=["raise", "open", "closed"],
        default="raise",
        help="policy fault boundary: propagate, degrade to Armus, or refuse",
    )
    p.add_argument(
        "--journal",
        metavar="PATH",
        help="write a crash-consistent trace journal of the run",
    )
    p.add_argument(
        "--verifier",
        metavar="URL",
        help="verify joins against a sidecar, e.g. remote://127.0.0.1:7461",
    )
    p.add_argument(
        "--trace-out",
        metavar="PATH",
        help="write a Perfetto/Chrome-trace JSON of the run",
    )
    p.add_argument(
        "--metrics-out",
        metavar="PATH",
        help="write the final metrics snapshot as JSON",
    )
    p.set_defaults(fn=_cmd_run)

    p = sub.add_parser(
        "serve", help="run the verification sidecar (blocks until SIGTERM)"
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=0, help="0 picks a free port")
    p.add_argument("--journal", metavar="PATH", help="crash-recovery journal")
    p.add_argument("--inbox-limit", type=int, default=1024)
    p.add_argument("--ack-every", type=int, default=256)
    p.add_argument("--liveness-timeout", type=float, default=5.0)
    p.add_argument(
        "--obs",
        action="store_true",
        help="enable telemetry in the sidecar (stats replies carry "
        "metrics and trace state)",
    )
    p.set_defaults(fn=_cmd_serve)

    p = sub.add_parser(
        "journal-replay", help="post-mortem replay of a trace journal"
    )
    p.add_argument("journal")
    p.set_defaults(fn=_cmd_journal_replay)

    p = sub.add_parser(
        "procs", help="multi-process runtime run with divergence checking"
    )
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--workers", type=int, default=4)
    p.add_argument(
        "--tasks", type=int, default=2000, help="total leaf-task count"
    )
    p.add_argument(
        "--fanout", type=int, default=20, help="leaves per dispatched subtree"
    )
    p.add_argument("--spawn-paths", choices=["auto", "shm", "wire"], default="auto")
    p.add_argument(
        "--sidecar",
        default=None,
        help="remote://host:port URL or 'auto' (omit: no sidecar)",
    )
    p.add_argument(
        "--kill-worker",
        action="store_true",
        help="SIGKILL a seed-chosen worker mid-run",
    )
    p.add_argument(
        "--check-divergence",
        action="store_true",
        help="fail (exit 1) on any divergence from the all-local run",
    )
    p.add_argument(
        "--trace-out",
        metavar="PATH",
        help="write a merged cross-process Perfetto/Chrome-trace JSON",
    )
    p.add_argument(
        "--metrics-out",
        metavar="PATH",
        help="write the merged fleet metrics snapshot as JSON",
    )
    p.add_argument(
        "--introspect",
        type=int,
        default=None,
        metavar="PORT",
        help="serve live introspection stats on PORT (0 picks a free port) "
        "for `repro top --live`",
    )
    p.set_defaults(fn=_cmd_procs)

    p = sub.add_parser("chaos", help="deterministic fault-injection suite")
    p.add_argument(
        "--programs",
        type=int,
        default=None,
        help="seeds per policy x runtime combination",
    )
    p.add_argument("--seed", type=int, default=0, help="base seed")
    p.add_argument("--policies", nargs="*", choices=sorted(POLICY_REGISTRY))
    p.add_argument("--runtimes", nargs="*", choices=["threaded", "pool"])
    p.add_argument("--crash-rate", type=float, default=None)
    p.add_argument("--delay-rate", type=float, default=None)
    p.add_argument(
        "--fault-rate",
        type=float,
        default=None,
        help="verifier-fault injection rate (0 disables the fault sweep)",
    )
    p.add_argument("--max-tasks", type=int, default=None)
    p.add_argument(
        "--smoke",
        action="store_true",
        help="small fixed configuration for CI",
    )
    p.add_argument(
        "--program-id",
        type=int,
        default=None,
        help="run only program index K of each slice (seed becomes seed+K)",
    )
    p.add_argument(
        "--recovery",
        action="store_true",
        help="add the quarantine + retry self-healing slice",
    )
    p.add_argument(
        "--predict",
        action="store_true",
        help="add the predict -> simulate -> avoid loop slice",
    )
    p.add_argument(
        "--journal-dir",
        metavar="DIR",
        help="where the predict slice writes its journals (default: tmp)",
    )
    p.add_argument(
        "--service",
        action="store_true",
        help="add the sidecar kill-9 / degradation / reconcile slice",
    )
    p.add_argument(
        "--trace-out",
        metavar="PATH",
        help="write a Perfetto/Chrome-trace JSON of the whole sweep",
    )
    p.add_argument(
        "--metrics-out",
        metavar="PATH",
        help="write the final metrics snapshot as JSON",
    )
    p.set_defaults(fn=_cmd_chaos)

    p = sub.add_parser(
        "predict", help="predict deadlocks other schedules of a journal can reach"
    )
    p.add_argument("journal")
    p.add_argument(
        "--policies",
        nargs="*",
        choices=sorted(POLICY_REGISTRY),
        help="policies whose verdicts are recorded along each witness",
    )
    p.add_argument("--max-schedules", type=int, default=256)
    p.add_argument(
        "--witness-out",
        metavar="PATH",
        help="write the selected prediction as a witness file",
    )
    p.add_argument(
        "--witness-index",
        type=int,
        default=0,
        help="which prediction --witness-out writes (default: first)",
    )
    p.add_argument(
        "--expect",
        choices=["flagged", "clean"],
        help="exit 1 unless the report matches",
    )
    p.add_argument(
        "--trace-out",
        metavar="PATH",
        help="write the journal timeline with predicted-deadlock instants "
        "overlaid as Perfetto/Chrome-trace JSON",
    )
    p.set_defaults(fn=_cmd_predict)

    p = sub.add_parser(
        "simulate", help="deterministic simulation of a witness or journal program"
    )
    p.add_argument(
        "--schedule",
        metavar="WITNESS",
        help="witness file from `repro predict --witness-out`",
    )
    p.add_argument(
        "--journal",
        metavar="PATH",
        help="reconstruct the program from this journal instead",
    )
    p.add_argument("--seed", type=int, default=None, help="scheduling RNG seed")
    p.add_argument(
        "--policy",
        default=None,
        help="policy name or 'none' (default: none, the unchecked baseline)",
    )
    p.add_argument(
        "--no-fallback",
        action="store_true",
        help="disable the Armus fallback (denials fault immediately)",
    )
    p.add_argument(
        "--record-out",
        metavar="PATH",
        help="write the recorded schedule of this run",
    )
    p.add_argument(
        "--expect",
        choices=["deadlock", "avoided", "denied", "clean", "error"],
        help="exit 1 unless the run's verdict matches",
    )
    p.set_defaults(fn=_cmd_simulate)

    p = sub.add_parser("top", help="live telemetry view (or render a snapshot)")
    p.add_argument("trace", nargs="?", help="trace file to execute in live mode")
    p.add_argument(
        "--metrics",
        metavar="FILE",
        help="render a saved metrics-snapshot JSON instead of running",
    )
    p.add_argument(
        "--live",
        metavar="URL",
        help="attach to a running ProcessRuntime introspection endpoint or "
        "`repro serve` sidecar (remote://HOST:PORT) and render its stats",
    )
    p.add_argument(
        "--once",
        action="store_true",
        help="with --live: render one screen and exit instead of refreshing",
    )
    p.add_argument(
        "--predict",
        metavar="JOURNAL",
        help="run the deadlock predictor on JOURNAL and render the "
        "predicted-cycle table",
    )
    p.add_argument(
        "--policy",
        default="TJ-SP",
        choices=sorted(POLICY_REGISTRY) + ["none"],
    )
    p.add_argument("--runtime", choices=["threaded", "pool"], default="threaded")
    p.add_argument(
        "--interval",
        type=float,
        default=0.5,
        metavar="SECONDS",
        help="refresh cadence in live mode",
    )
    p.set_defaults(fn=_cmd_top)

    p = sub.add_parser("bench", help="run one benchmark")
    p.add_argument("name", choices=ALL_BENCHMARKS)
    p.add_argument(
        "--policy",
        default="TJ-SP",
        choices=sorted(POLICY_REGISTRY),
    )
    p.add_argument("--scale", choices=["small", "default"], default="default")
    p.add_argument("--param", action="append", metavar="k=v")
    p.set_defaults(fn=_cmd_bench)

    p = sub.add_parser("table1", help="empirical complexity table")
    p.add_argument("--sizes", type=int, nargs="*")
    p.add_argument("--queries", type=int, default=2000)
    p.set_defaults(fn=_cmd_table1)

    for name, fn in (("table2", _cmd_table2), ("figure2", _cmd_figure2)):
        p = sub.add_parser(name, help=f"regenerate {name}")
        p.add_argument("--reps", type=int, default=5)
        p.add_argument("--scale", choices=["small", "default"], default="small")
        p.add_argument(
            "--benchmarks", nargs="*", choices=ALL_BENCHMARKS, metavar="NAME"
        )
        if name == "table2":
            p.add_argument("--json", help="also dump raw samples to this file")
        else:
            p.add_argument("--svg", help="also render an SVG chart to this file")
        p.set_defaults(fn=fn)

    p = sub.add_parser("bench-hotpath", help="verifier hot-path microbenchmarks")
    p.add_argument("--reps", type=int, default=3)
    p.add_argument("--smoke", action="store_true", help="tiny CI-sized workloads")
    p.add_argument("--json", default="BENCH_hotpath.json", help="output path")
    p.add_argument(
        "--min-speedup",
        type=float,
        default=0.0,
        metavar="FACTOR",
        help="fail (exit 1) if join-heavy TJ-SP vs TJ-SP-legacy drops below FACTOR",
    )
    p.add_argument(
        "--max-kj-ratio",
        type=float,
        default=0.0,
        metavar="FACTOR",
        help="fail (exit 1) if join-heavy TJ-SP per-event cost exceeds "
        "KJ-VC by more than FACTOR",
    )
    p.set_defaults(fn=_cmd_bench_hotpath)

    p = sub.add_parser("bench-runtime", help="end-to-end runtime overhead suite")
    p.add_argument("--reps", type=int, default=3)
    p.add_argument(
        "--smoke", action="store_true", help="tiny CI-sized configurations"
    )
    p.add_argument("--json", default="BENCH_runtime.json", help="output path")
    p.add_argument(
        "--min-join-speedup",
        type=float,
        default=0.0,
        metavar="FACTOR",
        help="fail (exit 1) if the event-driven join speedup over the "
        "polling baseline drops below FACTOR",
    )
    p.add_argument(
        "--max-overhead",
        type=float,
        default=0.0,
        metavar="FACTOR",
        help="fail (exit 1) if the TJ-SP end-to-end geomean overhead "
        "exceeds FACTOR",
    )
    p.add_argument(
        "--max-journal-overhead",
        type=float,
        default=0.0,
        metavar="FACTOR",
        help="fail (exit 1) if journal-on vs journal-off on the fork chain "
        "exceeds FACTOR",
    )
    p.add_argument(
        "--telemetry",
        action="store_true",
        help="run the suite with telemetry (metrics + tracing) enabled",
    )
    p.set_defaults(fn=_cmd_bench_runtime)

    p = sub.add_parser("report", help="full reproduction report (markdown)")
    p.add_argument("--reps", type=int, default=3)
    p.add_argument("--out", help="write to a file instead of stdout")
    p.set_defaults(fn=_cmd_report)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
