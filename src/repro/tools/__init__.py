"""Operational tooling: trace recording/replay, visualisation, CLI."""

from .journal import JournalReadResult, TraceJournal, read_journal
from .recorder import TraceRecordingPolicy
from .replay import (
    JournalReplay,
    ReplayOutcome,
    replay_journal,
    replay_on_runtime,
    replay_on_threaded,
)
from .viz import (
    fork_tree_dot,
    render_fork_tree,
    render_permission_matrix,
    waits_for_dot,
)

__all__ = [
    "TraceJournal",
    "TraceRecordingPolicy",
    "JournalReadResult",
    "JournalReplay",
    "read_journal",
    "replay_journal",
    "replay_on_runtime",
    "replay_on_threaded",
    "ReplayOutcome",
    "render_fork_tree",
    "render_permission_matrix",
    "fork_tree_dot",
    "waits_for_dot",
]
