"""Operational tooling: trace recording/replay, visualisation, CLI."""

from .recorder import TraceRecordingPolicy
from .replay import ReplayOutcome, replay_on_runtime, replay_on_threaded
from .viz import (
    fork_tree_dot,
    render_fork_tree,
    render_permission_matrix,
    waits_for_dot,
)

__all__ = [
    "TraceRecordingPolicy",
    "replay_on_runtime",
    "replay_on_threaded",
    "ReplayOutcome",
    "render_fork_tree",
    "render_permission_matrix",
    "fork_tree_dot",
    "waits_for_dot",
]
