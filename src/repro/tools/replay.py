"""Execute a formal trace as a live program (the inverse of the recorder).

The recorder turns executions into traces; this module turns traces back
into executions: each task of the trace becomes a cooperative-runtime
task that performs its prescribed forks and joins in its own program
order.  Global interleaving is left to the scheduler — which is faithful,
because both policies are insensitive to it: the TJ order depends only on
per-parent fork order, and KJ knowledge flows only along each task's own
fork/join sequence.  (A join in a live execution also transfers the
joinee's *final* knowledge, so online KJ knowledge is always a superset
of the formal at-position knowledge; tests rely on exactly that
direction.)

This closes the loop for end-to-end property tests: a random TJ-valid
trace, replayed on the real runtime under any TJ verifier, must complete
with zero false positives; a deadlocking trace must be refused at
runtime rather than hanging.
"""

from __future__ import annotations

from typing import Optional, Union

from ..core.policy import JoinPolicy
from ..errors import (
    DeadlockAvoidedError,
    DeadlockDetectedError,
    JoinTimeoutError,
    PolicyViolationError,
    TaskFailedError,
)
from ..formal.actions import Action, Fork, Init, Join, Task
from ..runtime.cooperative import CooperativeRuntime

__all__ = ["ReplayOutcome", "replay_on_runtime", "replay_on_threaded"]


class ReplayOutcome:
    """What happened when a trace ran for real."""

    def __init__(self) -> None:
        self.completed_joins: list[tuple[Task, Task]] = []
        self.refused_joins: list[tuple[Task, Task, str]] = []
        self.runtime: Optional[CooperativeRuntime] = None

    @property
    def clean(self) -> bool:
        return not self.refused_joins


def replay_on_runtime(
    trace: list[Action],
    policy: Union[None, str, JoinPolicy] = "TJ-SP",
    *,
    fallback: bool = True,
) -> ReplayOutcome:
    """Run *trace* on a fresh :class:`CooperativeRuntime`.

    Each trace task is one generator task performing its actions in
    program order; a join spins (cooperatively) until the joinee's future
    exists, then joins it through the full verification pipeline.
    Refused joins (policy faults without a fallback, or avoided
    deadlocks) are recorded and skipped, so a replay under an active
    policy always terminates and reports everything the verifier did.
    """
    rt = CooperativeRuntime(policy, fallback=fallback)
    outcome = ReplayOutcome()
    outcome.runtime = rt

    if not trace or not isinstance(trace[0], Init):
        raise ValueError("trace must start with init")

    my_actions: dict[Task, list[Action]] = {trace[0].task: []}
    for action in trace[1:]:
        if isinstance(action, Fork):
            my_actions.setdefault(action.parent, []).append(action)
            my_actions.setdefault(action.child, [])
        elif isinstance(action, Join):
            my_actions.setdefault(action.waiter, []).append(action)

    futures: dict[Task, object] = {}

    def body(name: Task):
        for action in my_actions[name]:
            if isinstance(action, Fork):
                futures[action.child] = rt.fork(body, action.child)
                continue
            assert isinstance(action, Join)
            if action.joinee == trace[0].task:
                # the root has no future; no policy ever permits joining
                # it anyway — record the refusal and move on
                outcome.refused_joins.append(
                    (action.waiter, action.joinee, "JoinOnRoot")
                )
                continue
            while action.joinee not in futures:
                yield None  # the forking task has not issued it yet
            try:
                yield futures[action.joinee]
            except (PolicyViolationError, DeadlockAvoidedError) as exc:
                outcome.refused_joins.append(
                    (action.waiter, action.joinee, type(exc).__name__)
                )
            except TaskFailedError:  # pragma: no cover - tasks never fail
                raise
            else:
                outcome.completed_joins.append((action.waiter, action.joinee))
        return name

    rt.run(body, trace[0].task)
    return outcome


def _await_quiescence(futures: dict) -> None:
    """Wait (uncheckedly) until every forked task has terminated.

    Unlike the cooperative scheduler, the blocking runtime returns when
    the *root* returns; tasks nobody joins may still be finishing their
    trailing actions — and forking more.  Iterate until the future set
    is stable and fully terminated.  Waits in short timed slices, never
    a bare event wait, so Ctrl-C interrupts a replay gone wrong.
    """
    while True:
        snapshot = list(futures.values())
        for fut in snapshot:
            while not fut._wait(0.05):
                pass
        if len(futures) == len(snapshot):
            return


def replay_on_threaded(
    trace: list[Action],
    policy: Union[None, str, JoinPolicy] = "TJ-SP",
    *,
    fallback: bool = True,
    runtime: str = "threaded",
    default_join_timeout: Optional[float] = None,
    watchdog: Union[bool, float] = True,
) -> ReplayOutcome:
    """Run *trace* on a fresh blocking runtime (``"threaded"`` —
    thread-per-task :class:`~repro.runtime.threaded.TaskRuntime`, the
    default — or ``"pool"`` —
    :class:`~repro.runtime.pool.WorkSharingRuntime`).

    Same per-task program-order semantics as :func:`replay_on_runtime`,
    with real threads and real blocking — the differential-testing
    counterpart: the set of policy verdicts must agree with the
    cooperative replay up to scheduling (TJ exactly; KJ within the
    at-position/final-knowledge envelope).  Joins refused by the
    verifier are recorded and skipped — as are joins terminated by the
    supervision layer (``JoinTimeoutError``, a watchdog
    ``DeadlockDetectedError``), so replaying a deadlocking trace with
    verification disabled terminates with the stalls on record instead
    of hanging the process.
    """
    import threading

    from ..runtime.pool import WorkSharingRuntime
    from ..runtime.threaded import TaskRuntime

    if runtime == "threaded":
        rt = TaskRuntime(
            policy,
            fallback=fallback,
            default_join_timeout=default_join_timeout,
            watchdog=watchdog,
        )
    elif runtime == "pool":
        rt = WorkSharingRuntime(
            policy,
            fallback=fallback,
            default_join_timeout=default_join_timeout,
            watchdog=watchdog,
        )
    else:
        raise ValueError(f"unknown runtime {runtime!r}; use 'threaded' or 'pool'")
    outcome = ReplayOutcome()
    outcome.runtime = rt  # type: ignore[assignment]

    if not trace or not isinstance(trace[0], Init):
        raise ValueError("trace must start with init")

    my_actions: dict[Task, list[Action]] = {trace[0].task: []}
    for action in trace[1:]:
        if isinstance(action, Fork):
            my_actions.setdefault(action.parent, []).append(action)
            my_actions.setdefault(action.child, [])
        elif isinstance(action, Join):
            my_actions.setdefault(action.waiter, []).append(action)

    futures: dict[Task, object] = {}
    issued: dict[Task, threading.Event] = {
        t: threading.Event() for t in my_actions
    }
    lock = threading.Lock()

    def body(name: Task):
        for action in my_actions[name]:
            if isinstance(action, Fork):
                fut = rt.fork(body, action.child)
                futures[action.child] = fut
                issued[action.child].set()
                continue
            assert isinstance(action, Join)
            if action.joinee == trace[0].task:
                with lock:
                    outcome.refused_joins.append(
                        (action.waiter, action.joinee, "JoinOnRoot")
                    )
                continue
            while not issued[action.joinee].wait(0.05):
                pass
            try:
                futures[action.joinee].join()
            except (
                PolicyViolationError,
                DeadlockAvoidedError,
                DeadlockDetectedError,
                JoinTimeoutError,
            ) as exc:
                with lock:
                    outcome.refused_joins.append(
                        (action.waiter, action.joinee, type(exc).__name__)
                    )
            except TaskFailedError as exc:
                # A joinee terminated by the supervision layer (watchdog
                # diagnosis, timeout, cancellation) surfaces here; record
                # the underlying refusal instead of crashing the replay.
                with lock:
                    outcome.refused_joins.append(
                        (action.waiter, action.joinee, type(exc.__cause__ or exc).__name__)
                    )
            else:
                with lock:
                    outcome.completed_joins.append((action.waiter, action.joinee))
        return name

    rt.run(body, trace[0].task)
    _await_quiescence(futures)
    return outcome
