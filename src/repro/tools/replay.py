"""Execute a formal trace as a live program (the inverse of the recorder).

The recorder turns executions into traces; this module turns traces back
into executions: each task of the trace becomes a cooperative-runtime
task that performs its prescribed forks and joins in its own program
order.  Global interleaving is left to the scheduler — which is faithful,
because both policies are insensitive to it: the TJ order depends only on
per-parent fork order, and KJ knowledge flows only along each task's own
fork/join sequence.  (A join in a live execution also transfers the
joinee's *final* knowledge, so online KJ knowledge is always a superset
of the formal at-position knowledge; tests rely on exactly that
direction.)

This closes the loop for end-to-end property tests: a random TJ-valid
trace, replayed on the real runtime under any TJ verifier, must complete
with zero false positives; a deadlocking trace must be refused at
runtime rather than hanging.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from ..core.policy import JoinPolicy
from ..errors import (
    DeadlockAvoidedError,
    DeadlockDetectedError,
    JoinTimeoutError,
    PolicyViolationError,
    TaskFailedError,
)
from ..formal.actions import Action, Fork, Init, Join, Task
from ..runtime.cooperative import CooperativeRuntime

__all__ = [
    "JournalReplay",
    "ReplayOutcome",
    "replay_journal",
    "replay_on_runtime",
    "replay_on_threaded",
]


class ReplayOutcome:
    """What happened when a trace ran for real."""

    def __init__(self) -> None:
        self.completed_joins: list[tuple[Task, Task]] = []
        self.refused_joins: list[tuple[Task, Task, str]] = []
        self.runtime: Optional[CooperativeRuntime] = None

    @property
    def clean(self) -> bool:
        return not self.refused_joins


def replay_on_runtime(
    trace: list[Action],
    policy: Union[None, str, JoinPolicy] = "TJ-SP",
    *,
    fallback: bool = True,
) -> ReplayOutcome:
    """Run *trace* on a fresh :class:`CooperativeRuntime`.

    Each trace task is one generator task performing its actions in
    program order; a join spins (cooperatively) until the joinee's future
    exists, then joins it through the full verification pipeline.
    Refused joins (policy faults without a fallback, or avoided
    deadlocks) are recorded and skipped, so a replay under an active
    policy always terminates and reports everything the verifier did.
    """
    rt = CooperativeRuntime(policy, fallback=fallback)
    outcome = ReplayOutcome()
    outcome.runtime = rt

    if not trace or not isinstance(trace[0], Init):
        raise ValueError("trace must start with init")

    my_actions: dict[Task, list[Action]] = {trace[0].task: []}
    for action in trace[1:]:
        if isinstance(action, Fork):
            my_actions.setdefault(action.parent, []).append(action)
            my_actions.setdefault(action.child, [])
        elif isinstance(action, Join):
            my_actions.setdefault(action.waiter, []).append(action)

    futures: dict[Task, object] = {}

    def body(name: Task):
        for action in my_actions[name]:
            if isinstance(action, Fork):
                futures[action.child] = rt.fork(body, action.child)
                continue
            assert isinstance(action, Join)
            if action.joinee == trace[0].task:
                # the root has no future; no policy ever permits joining
                # it anyway — record the refusal and move on
                outcome.refused_joins.append(
                    (action.waiter, action.joinee, "JoinOnRoot")
                )
                continue
            while action.joinee not in futures:
                yield None  # the forking task has not issued it yet
            try:
                yield futures[action.joinee]
            except (PolicyViolationError, DeadlockAvoidedError) as exc:
                outcome.refused_joins.append(
                    (action.waiter, action.joinee, type(exc).__name__)
                )
            except TaskFailedError:  # pragma: no cover - tasks never fail
                raise
            else:
                outcome.completed_joins.append((action.waiter, action.joinee))
        return name

    rt.run(body, trace[0].task)
    return outcome


def _await_quiescence(futures: dict) -> None:
    """Wait (uncheckedly) until every forked task has terminated.

    Unlike the cooperative scheduler, the blocking runtime returns when
    the *root* returns; tasks nobody joins may still be finishing their
    trailing actions — and forking more.  Iterate until the future set
    is stable and fully terminated.  Waits in short timed slices, never
    a bare event wait, so Ctrl-C interrupts a replay gone wrong.
    """
    while True:
        snapshot = list(futures.values())
        for fut in snapshot:
            while not fut._wait(0.05):
                pass
        if len(futures) == len(snapshot):
            return


def replay_on_threaded(
    trace: list[Action],
    policy: Union[None, str, JoinPolicy] = "TJ-SP",
    *,
    fallback: bool = True,
    runtime: str = "threaded",
    default_join_timeout: Optional[float] = None,
    watchdog: Union[bool, float] = True,
    fail_mode: str = "raise",
    journal: Optional[str] = None,
    verifier: Union[None, str, object] = None,
) -> ReplayOutcome:
    """Run *trace* on a fresh blocking runtime (``"threaded"`` —
    thread-per-task :class:`~repro.runtime.threaded.TaskRuntime`, the
    default — or ``"pool"`` —
    :class:`~repro.runtime.pool.WorkSharingRuntime`).

    Same per-task program-order semantics as :func:`replay_on_runtime`,
    with real threads and real blocking — the differential-testing
    counterpart: the set of policy verdicts must agree with the
    cooperative replay up to scheduling (TJ exactly; KJ within the
    at-position/final-knowledge envelope).  Joins refused by the
    verifier are recorded and skipped — as are joins terminated by the
    supervision layer (``JoinTimeoutError``, a watchdog
    ``DeadlockDetectedError``), so replaying a deadlocking trace with
    verification disabled terminates with the stalls on record instead
    of hanging the process.
    """
    import threading

    from ..runtime.pool import WorkSharingRuntime
    from ..runtime.threaded import TaskRuntime

    if runtime == "threaded":
        rt = TaskRuntime(
            policy,
            fallback=fallback,
            default_join_timeout=default_join_timeout,
            watchdog=watchdog,
            fail_mode=fail_mode,
            journal=journal,
            verifier=verifier,
        )
    elif runtime == "pool":
        rt = WorkSharingRuntime(
            policy,
            fallback=fallback,
            default_join_timeout=default_join_timeout,
            watchdog=watchdog,
            fail_mode=fail_mode,
            journal=journal,
            verifier=verifier,
        )
    else:
        raise ValueError(f"unknown runtime {runtime!r}; use 'threaded' or 'pool'")
    outcome = ReplayOutcome()
    outcome.runtime = rt  # type: ignore[assignment]

    if not trace or not isinstance(trace[0], Init):
        raise ValueError("trace must start with init")

    my_actions: dict[Task, list[Action]] = {trace[0].task: []}
    for action in trace[1:]:
        if isinstance(action, Fork):
            my_actions.setdefault(action.parent, []).append(action)
            my_actions.setdefault(action.child, [])
        elif isinstance(action, Join):
            my_actions.setdefault(action.waiter, []).append(action)

    futures: dict[Task, object] = {}
    issued: dict[Task, threading.Event] = {
        t: threading.Event() for t in my_actions
    }
    lock = threading.Lock()

    def body(name: Task):
        for action in my_actions[name]:
            if isinstance(action, Fork):
                fut = rt.fork(body, action.child)
                futures[action.child] = fut
                issued[action.child].set()
                continue
            assert isinstance(action, Join)
            if action.joinee == trace[0].task:
                with lock:
                    outcome.refused_joins.append(
                        (action.waiter, action.joinee, "JoinOnRoot")
                    )
                continue
            while not issued[action.joinee].wait(0.05):
                pass
            try:
                futures[action.joinee].join()
            except (
                PolicyViolationError,
                DeadlockAvoidedError,
                DeadlockDetectedError,
                JoinTimeoutError,
            ) as exc:
                with lock:
                    outcome.refused_joins.append(
                        (action.waiter, action.joinee, type(exc).__name__)
                    )
            except TaskFailedError as exc:
                # A joinee terminated by the supervision layer (watchdog
                # diagnosis, timeout, cancellation) surfaces here; record
                # the underlying refusal instead of crashing the replay.
                with lock:
                    outcome.refused_joins.append(
                        (action.waiter, action.joinee, type(exc.__cause__ or exc).__name__)
                    )
            else:
                with lock:
                    outcome.completed_joins.append((action.waiter, action.joinee))
        return name

    rt.run(body, trace[0].task)
    _await_quiescence(futures)
    return outcome


# ----------------------------------------------------------------------
# journal replay: the crash post-mortem
# ----------------------------------------------------------------------
@dataclass
class JournalReplay:
    """Verifier state reconstructed from a (possibly crash-torn) journal.

    The load-bearing field is :attr:`blocked_at_death`: every edge whose
    *last* durable record is a ``block`` with no matching ``unblock`` —
    i.e. the joins the process was sleeping on at the moment it died.
    For a run that exited cleanly the set is empty.

    Deliberately, an edge is **never** dropped from the set because its
    joinee has a ``complete`` (or ``join``) record earlier in the file.
    The live watchdog skips a cycle whose joinee already completed — a
    *transient*, about to resolve — but a post-mortem has no "about to":
    if the final durable record leaves the edge blocked, the process
    died in that wait, however briefly it had left to sleep, and hiding
    it would make the report (and the predictor consuming it) lie.
    """

    path: str
    #: the ``start`` record (policy / runtime / fail_mode), if durable
    header: Optional[dict]
    #: the final record was cut mid-write (the classic ``kill -9`` tail)
    torn_tail: bool
    #: complete records recovered
    records: int
    #: journal task names, in fork order
    tasks: list[str] = field(default_factory=list)
    forks: int = 0
    #: permission checks that answered "denied"
    denied: list[tuple[str, str]] = field(default_factory=list)
    #: joins refused because they would have closed a cycle
    avoided: list[tuple[str, str]] = field(default_factory=list)
    #: (waiter, joinee) edges blocked when the journal ends
    blocked_at_death: list[tuple[str, str]] = field(default_factory=list)
    #: tasks with a durable ``complete`` record, in completion order
    completed: list[str] = field(default_factory=list)
    #: the quarantine record, when the policy was quarantined mid-run
    quarantine: Optional[dict] = None
    #: retry records (old task, reborn task, attempt, error)
    retries: list[dict] = field(default_factory=list)
    #: stable-policy verdicts re-derived during replay
    rechecked: int = 0
    #: (waiter, joinee, journalled, rederived) disagreements — must be empty
    recheck_mismatches: list[tuple[str, str, bool, bool]] = field(default_factory=list)

    @property
    def died_blocked(self) -> bool:
        return bool(self.blocked_at_death)

    def report(self) -> str:
        """A human-readable post-mortem."""
        lines = [f"journal post-mortem: {self.path}"]
        if self.header is not None:
            lines.append(
                f"  run: policy={self.header.get('policy')} "
                f"runtime={self.header.get('runtime')} "
                f"fail_mode={self.header.get('fail_mode')}"
            )
        lines.append(
            f"  records: {self.records} complete"
            + (" + torn tail (crash mid-write)" if self.torn_tail else "")
        )
        lines.append(
            f"  tasks: {len(self.tasks)}  forks: {self.forks}"
            + (f"  completed: {len(self.completed)}" if self.completed else "")
        )
        if self.quarantine is not None:
            lines.append(
                f"  QUARANTINE at {self.quarantine.get('site')!r}: policy "
                f"{self.quarantine.get('policy')!r} was degraded to Armus-only"
            )
        for rec in self.retries:
            lines.append(
                f"  retry: {rec.get('task')} reborn as {rec.get('reborn')} "
                f"(attempt {rec.get('attempt')}) after {rec.get('error')}"
            )
        for waiter, joinee in self.denied:
            lines.append(f"  denied: {waiter} may not join {joinee}")
        for waiter, joinee in self.avoided:
            lines.append(f"  avoided deadlock: {waiter} join {joinee} refused")
        if self.blocked_at_death:
            lines.append("  blocked at death:")
            for waiter, joinee in self.blocked_at_death:
                lines.append(f"    {waiter} was waiting on {joinee}")
        else:
            lines.append("  blocked at death: none")
        if self.rechecked:
            lines.append(
                f"  recheck: {self.rechecked} verdicts re-derived, "
                f"{len(self.recheck_mismatches)} mismatches"
            )
            for waiter, joinee, logged, fresh in self.recheck_mismatches:
                lines.append(
                    f"    MISMATCH {waiter} join {joinee}: journal says "
                    f"{logged}, policy says {fresh}"
                )
        return "\n".join(lines)


def replay_journal(path: str) -> JournalReplay:
    """Reconstruct verifier state from a trace journal.

    Reads the journal with :func:`~repro.tools.journal.read_journal`
    (tolerating a crash-torn final record), re-derives the blocked-edge
    set at death (the edges whose last durable record is a ``block``,
    never filtered by joinee completion), and — when the
    header names a reconstructible ``stable_permits`` policy — rebuilds
    the fork tree through a fresh policy instance and re-derives every
    journalled verdict, reporting any disagreement.  Replay stops feeding
    the policy at a quarantine record: from that point the original run
    was using fallback placeholder vertices, so later forks are tracked
    by name only and later verdicts (blanket permits) are not rechecked.
    """
    from ..core.policy import make_policy
    from .journal import read_journal

    read = read_journal(path)
    replay = JournalReplay(
        path=path,
        header=None,
        torn_tail=read.torn_tail,
        records=len(read.records),
    )
    policy: Optional[JoinPolicy] = None
    vertices: dict[str, object] = {}
    placeholders: set[str] = set()
    quarantined = False
    #: last durable state per edge: True = blocked, False = unblocked.
    #: Last-state (not a counter) so a torn or duplicated block/unblock
    #: pair cannot push an edge negative and swallow a later block.
    blocked: dict[tuple[str, str], bool] = {}

    for rec in read.records:
        kind = rec.get("kind")
        if kind == "start":
            replay.header = rec
            try:
                policy = make_policy(rec.get("policy"))
            except Exception:
                policy = None  # wrapped / unknown policy: names-only replay
        elif kind == "init":
            name = rec["task"]
            replay.tasks.append(name)
            if policy is not None and not quarantined:
                vertices[name] = policy.add_child(None)
            else:
                placeholders.add(name)
        elif kind == "fork":
            parent, child = rec["parent"], rec["child"]
            replay.tasks.append(child)
            replay.forks += 1
            if (
                policy is not None
                and not quarantined
                and parent in vertices
                and parent not in placeholders
            ):
                vertices[child] = policy.add_child(vertices[parent])
            else:
                placeholders.add(child)
        elif kind == "verdict":
            edge = (rec["waiter"], rec["joinee"])
            if not rec["ok"]:
                replay.denied.append(edge)
            if (
                policy is not None
                and policy.stable_permits
                and not quarantined
                and edge[0] in vertices
                and edge[1] in vertices
            ):
                replay.rechecked += 1
                fresh = policy.permits(vertices[edge[0]], vertices[edge[1]])
                if bool(fresh) != bool(rec["ok"]):
                    replay.recheck_mismatches.append(
                        (edge[0], edge[1], bool(rec["ok"]), bool(fresh))
                    )
        elif kind == "join":
            a, b = rec["waiter"], rec["joinee"]
            if policy is not None and not quarantined and a in vertices and b in vertices:
                policy.on_join(vertices[a], vertices[b])
        elif kind == "block":
            blocked[(rec["waiter"], rec["joinee"])] = True
        elif kind == "unblock":
            blocked[(rec["waiter"], rec["joinee"])] = False
        elif kind == "complete":
            replay.completed.append(rec["task"])
        elif kind == "avoided":
            replay.avoided.append((rec["waiter"], rec["joinee"]))
        elif kind == "quarantine":
            quarantined = True
            replay.quarantine = rec
        elif kind == "retry":
            replay.retries.append(rec)

    # Honest edge set: whatever the last durable state says, with no
    # completed-joinee filtering (see the JournalReplay docstring) — a
    # journal whose final record is a block reports died_blocked even
    # when the joinee's complete record landed earlier in the file.
    replay.blocked_at_death = sorted(
        (edge for edge, is_blocked in blocked.items() if is_blocked),
        key=lambda e: (int(e[0][1:]) if e[0][1:].isdigit() else 0, e[1]),
    )
    return replay
