"""The offline deadlock predictor: journal in, witnesses out.

Pipeline (one journal):

1. **Parse** — ``read_journal`` (crash-tolerant), refusing journals
   with ``retry``/``quarantine`` records (those re-point task vertices
   mid-run; per-name reconstruction would be unsound).
2. **Reconstruct** — the fork/join skeleton
   (:class:`~repro.predict.program.TraceProgram`) and every join
   *intent* with its outcome on the recorded schedule.
3. **Order** — the must-happen-before partial order
   (:func:`~repro.predict.order.build_order`).
4. **Candidates** — simple cycles of the wait-intent graph, keeping
   those the partial order cannot refute: a cycle dies only if some
   joinee's completion *must* precede its waiter's join issue (then
   that edge can never block, in any linearization).
5. **Realize** — deterministic DFS over the simulator's scheduling
   decisions under ``policy=None`` until candidate cycles actually
   close.  Each realized cycle becomes a :class:`PredictedDeadlock`
   whose witness :class:`~repro.runtime.explore.Schedule` replays the
   deadlock exactly; the same witness is then replayed under each
   avoidance policy to record its verdict along that schedule.

Realization makes the predictor *sound by construction*: nothing is
flagged that the simulator has not already reproduced.  The partial
order keeps it *efficient*: journals whose every cycle is refuted (the
common case — any run whose joins all completed) skip simulation
entirely.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..errors import JournalError
from ..runtime.explore import Schedule
from ..tools.journal import read_journal
from .order import TraceOrder, build_order
from .program import SimOutcome, TraceProgram

__all__ = [
    "JoinIntent",
    "PredictedDeadlock",
    "PredictionReport",
    "predict_deadlocks",
]

WITNESS_VERSION = 1

#: default policies whose verdicts are recorded along each witness
DEFAULT_POLICIES = ("TJ-SP", "KJ-VC")


@dataclass(frozen=True)
class JoinIntent:
    """One join attempt the journal records, with its recorded fate."""

    waiter: str
    joinee: str
    #: ``completed`` | ``rescued`` | ``avoided`` | ``blocked`` (at death)
    status: str
    #: index (into the trace order's event list) where the attempt begins
    issue_at: int

    @property
    def edge(self) -> tuple[str, str]:
        return (self.waiter, self.joinee)


@dataclass
class PredictedDeadlock:
    """A deadlock reachable by re-scheduling the journalled program.

    ``cycle`` is the realized blocked cycle (journal task names) and
    ``schedule`` the witness that realizes it: replaying the
    reconstructed ``program`` through ``SimRuntime(policy=None,
    schedule=schedule)`` blocks exactly this cycle.  ``verdicts`` maps
    each avoidance policy to its outcome along the same witness
    (``avoided`` / ``denied`` / ``clean`` — never ``deadlock``, that is
    the soundness theorem at work).
    """

    cycle: tuple[str, ...]
    schedule: Schedule
    verdicts: dict[str, str]
    program: TraceProgram
    journal: str = ""
    #: the recorded run completed cleanly (nothing blocked at death) —
    #: the prediction is purely counterfactual
    clean_run: bool = True

    # -- the witness-file format (docs/prediction.md) -------------------
    def to_dict(self) -> dict:
        return {
            "version": WITNESS_VERSION,
            "kind": "predicted-deadlock",
            "journal": self.journal,
            "cycle": list(self.cycle),
            "schedule": self.schedule.to_dict(),
            "verdicts": dict(self.verdicts),
            "clean_run": self.clean_run,
            "program": self.program.to_dict(),
        }

    @classmethod
    def from_dict(cls, body: dict) -> "PredictedDeadlock":
        if body.get("kind") != "predicted-deadlock":
            raise ValueError("not a predicted-deadlock witness file")
        if body.get("version", WITNESS_VERSION) != WITNESS_VERSION:
            raise ValueError(f"unsupported witness version {body.get('version')!r}")
        return cls(
            cycle=tuple(body["cycle"]),
            schedule=Schedule.from_dict(body["schedule"]),
            verdicts=dict(body.get("verdicts", {})),
            program=TraceProgram.from_dict(body["program"]),
            journal=body.get("journal", ""),
            clean_run=bool(body.get("clean_run", True)),
        )

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh, sort_keys=True, indent=2)
            fh.write("\n")

    @classmethod
    def load(cls, path: str) -> "PredictedDeadlock":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_dict(json.load(fh))

    def reproduce(self, **kwargs) -> SimOutcome:
        """Replay the witness under ``policy=None`` (kwargs override)."""
        kwargs.setdefault("schedule", self.schedule)
        return self.program.run_sim(None, fallback=False, **kwargs)


@dataclass
class PredictionReport:
    """Everything one ``predict_deadlocks`` call learned."""

    path: str
    events: int = 0
    torn_tail: bool = False
    #: reconstruction skipped (retry/quarantine journal, no init, ...)
    skipped: Optional[str] = None
    program: Optional[TraceProgram] = None
    intents: list[JoinIntent] = field(default_factory=list)
    #: cycles surviving the partial-order filter, before realization
    candidates: list[tuple[str, ...]] = field(default_factory=list)
    #: cycles the partial order refuted outright
    refuted: int = 0
    predictions: list[PredictedDeadlock] = field(default_factory=list)
    #: simulator runs spent realizing candidates
    sim_runs: int = 0
    #: scheduler steps across those runs (throughput accounting)
    sim_steps: int = 0
    #: the recorded run completed cleanly
    clean_run: bool = True

    @property
    def flagged(self) -> bool:
        return bool(self.predictions)

    def report(self) -> str:
        lines = [f"prediction report: {self.path}"]
        lines.append(
            f"  events: {self.events}"
            + (" + torn tail" if self.torn_tail else "")
            + f"  recorded run: {'clean' if self.clean_run else 'died blocked'}"
        )
        if self.skipped is not None:
            lines.append(f"  skipped: {self.skipped}")
            return "\n".join(lines)
        assert self.program is not None
        lines.append(
            f"  program: {len(self.program.actions)} tasks, "
            f"{len(self.program.join_edges())} join attempts "
            f"({sum(1 for i in self.intents if i.status == 'rescued')} rescued, "
            f"{sum(1 for i in self.intents if i.status == 'avoided')} avoided)"
        )
        lines.append(
            f"  cycles: {len(self.candidates)} candidate after partial-order "
            f"filter ({self.refuted} refuted), {self.sim_runs} simulator runs"
        )
        if not self.predictions:
            lines.append("  predicted deadlocks: none")
        for n, pred in enumerate(self.predictions):
            lines.append(
                f"  predicted deadlock #{n}: cycle "
                + " -> ".join(pred.cycle + (pred.cycle[0],))
            )
            lines.append(
                f"    witness: {len(pred.schedule)} scheduling decisions"
                + ("  (counterfactual: recorded run was clean)" if pred.clean_run else "")
            )
            for policy, verdict in pred.verdicts.items():
                lines.append(f"    under {policy}: {verdict}")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# intent extraction
# ----------------------------------------------------------------------
def _extract_intents(order: TraceOrder) -> list[JoinIntent]:
    """Classify every join attempt by its per-edge record pattern."""
    intents: list[JoinIntent] = []
    #: edge -> (issue event index, saw-block) of the open attempt
    open_at: dict[tuple[str, str], tuple[int, bool]] = {}

    def close(edge: tuple[str, str], status: str) -> None:
        issue_at, _ = open_at.pop(edge)
        intents.append(JoinIntent(edge[0], edge[1], status, issue_at))

    for event in order.events:
        edge = event.edge
        if edge is None:
            continue
        if event.kind == "verdict":
            if edge in open_at:
                close(edge, "rescued")  # prior attempt never joined
            open_at[edge] = (event.index, False)
        elif event.kind == "block":
            if edge not in open_at:
                open_at[edge] = (event.index, True)
            else:
                open_at[edge] = (open_at[edge][0], True)
        elif event.kind == "join":
            if edge not in open_at:
                open_at[edge] = (event.index, False)
            close(edge, "completed")
        elif event.kind == "avoided":
            if edge not in open_at:
                open_at[edge] = (event.index, False)
            close(edge, "avoided")
        elif event.kind == "unblock":
            # The wait ended — but only a ``join`` record proves the
            # joinee completed.  Clear the blocked flag so an attempt
            # left open at journal end reads "rescued", not "blocked".
            if edge in open_at:
                open_at[edge] = (open_at[edge][0], False)
    for edge, (issue_at, blocked) in open_at.items():
        intents.append(
            JoinIntent(edge[0], edge[1], "blocked" if blocked else "rescued", issue_at)
        )
    return intents


# ----------------------------------------------------------------------
# candidate cycles
# ----------------------------------------------------------------------
def _candidate_cycles(
    intents: Sequence[JoinIntent],
    order: TraceOrder,
    *,
    max_len: int,
) -> tuple[list[tuple[str, ...]], int]:
    """Simple cycles of the wait-intent graph the partial order allows.

    An intent edge ``w -> j`` can block in *some* linearization unless
    ``complete(j)`` must-happen-before the attempt's issue event; a
    cycle is a candidate when every edge on it can block.  Returns
    ``(candidates, refuted_count)`` with each cycle canonicalized to
    start at its lexicographically smallest task.
    """
    # keep, per edge, the intent with the weakest refutation (any
    # attempt that can block makes the edge usable)
    usable: dict[str, dict[str, JoinIntent]] = {}
    for intent in intents:
        done_at = order.completion_event(intent.joinee)
        if done_at is not None and order.must_precede(done_at, intent.issue_at):
            continue  # the joinee was necessarily done; can never block
        usable.setdefault(intent.waiter, {}).setdefault(intent.joinee, intent)

    candidates: list[tuple[str, ...]] = []
    seen: set[tuple[str, ...]] = set()
    refuted = 0

    def canon(path: tuple[str, ...]) -> tuple[str, ...]:
        at = min(range(len(path)), key=lambda i: _order_key(path[i]))
        return path[at:] + path[:at]

    def walk(start: str, path: list[str], on_path: set[str]) -> None:
        nonlocal refuted
        here = path[-1]
        for nxt in sorted(usable.get(here, ()), key=_order_key):
            if nxt == start:
                cycle = canon(tuple(path))
                if cycle not in seen:
                    seen.add(cycle)
                    candidates.append(cycle)
                continue
            if nxt in on_path or len(path) >= max_len:
                continue
            if _order_key(nxt) < _order_key(start):
                continue  # canonical start is the smallest task
            on_path.add(nxt)
            path.append(nxt)
            walk(start, path, on_path)
            path.pop()
            on_path.discard(nxt)

    # count refutations for the report (edges an intent lost to the filter)
    for intent in intents:
        done_at = order.completion_event(intent.joinee)
        if done_at is not None and order.must_precede(done_at, intent.issue_at):
            refuted += 1
    for start in sorted(usable, key=_order_key):
        walk(start, [start], {start})
    candidates.sort(key=lambda c: (len(c), [_order_key(t) for t in c]))
    return candidates, refuted


def _order_key(name: str) -> tuple[int, str]:
    return (int(name[1:]) if name[1:].isdigit() else -1, name)


# ----------------------------------------------------------------------
# the predictor
# ----------------------------------------------------------------------
def predict_deadlocks(
    path: str,
    *,
    policies: Sequence[str] = DEFAULT_POLICIES,
    max_schedules: int = 256,
    max_cycle_len: int = 6,
    max_steps: Optional[int] = None,
) -> PredictionReport:
    """Predict deadlocks reachable by re-scheduling journal *path*.

    ``max_schedules`` bounds the deterministic DFS realization search;
    ``max_cycle_len`` bounds candidate cycle length; ``max_steps``
    bounds each simulated run (default: scaled to the program size).
    The search stops early once every candidate cycle (by task set) has
    been realized.  Deterministic end to end: same journal, same
    arguments ⇒ same report.
    """
    read = read_journal(path)
    report = PredictionReport(
        path=path, events=len(read.records), torn_tail=read.torn_tail
    )

    blocked_last: dict[tuple[str, str], bool] = {}
    for rec in read.records:
        kind = rec.get("kind")
        if kind in ("retry", "quarantine"):
            report.skipped = (
                f"journal contains a {kind!r} record; task identities are "
                "re-pointed mid-run and per-name reconstruction is unsound"
            )
        elif kind == "block":
            blocked_last[(rec["waiter"], rec["joinee"])] = True
        elif kind == "unblock":
            blocked_last[(rec["waiter"], rec["joinee"])] = False
    report.clean_run = not any(blocked_last.values()) and not read.torn_tail
    if report.skipped is not None:
        return report
    if not read.records:
        report.skipped = "empty journal"
        return report

    try:
        program = TraceProgram.from_records(read.records)
    except ValueError as exc:
        report.skipped = str(exc)
        return report
    report.program = program

    order = build_order(read.records)
    report.intents = _extract_intents(order)
    report.candidates, report.refuted = _candidate_cycles(
        report.intents, order, max_len=max_cycle_len
    )
    if not report.candidates:
        return report  # every cycle refuted without a single simulation

    # ------------------------------------------------------------------
    # realization: deterministic DFS over scheduling decisions
    # ------------------------------------------------------------------
    wanted = {frozenset(c) for c in report.candidates}
    found: dict[frozenset, PredictedDeadlock] = {}
    stack: list[tuple[int, ...]] = [()]
    visited: set[tuple[int, ...]] = set()
    while stack and report.sim_runs < max_schedules and len(found) < len(wanted):
        prefix = stack.pop()
        outcome = program.run_sim(
            None, fallback=False, schedule=Schedule(choices=prefix), max_steps=max_steps
        )
        report.sim_runs += 1
        report.sim_steps += outcome.steps
        taken = outcome.schedule
        if taken.choices in visited:
            continue
        visited.add(taken.choices)
        if outcome.deadlock is not None:
            key = frozenset(outcome.deadlock)
            if key not in found:
                pred = PredictedDeadlock(
                    cycle=outcome.deadlock,
                    schedule=taken,
                    verdicts={},
                    program=program,
                    journal=path,
                    clean_run=report.clean_run,
                )
                for policy in policies:
                    replay = program.run_sim(
                        policy, fallback=True, schedule=taken, max_steps=max_steps
                    )
                    report.sim_steps += replay.steps
                    pred.verdicts[policy] = replay.verdict
                found[key] = pred
        # open sibling branches at every decision at/after the prefix
        for depth in range(len(prefix), len(taken.widths)):
            for branch in range(1, taken.widths[depth]):
                stack.append(taken.choices[:depth] + (branch,))

    report.predictions = sorted(
        found.values(), key=lambda p: [_order_key(t) for t in p.cycle]
    )
    return report


def read_witness(path: str) -> PredictedDeadlock:
    """Load a witness file written by ``PredictedDeadlock.save`` (or the
    ``repro predict --witness-out`` CLI)."""
    try:
        return PredictedDeadlock.load(path)
    except (OSError, ValueError, KeyError) as exc:
        raise JournalError(f"cannot load witness file {path!r}: {exc}") from exc
