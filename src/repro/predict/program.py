"""Reconstruct a runnable program from a trace journal.

The journal names tasks ``t0, t1, ...`` and records, for each, its
forks and join *attempts* in program order — which is everything a
fork/join program is, up to task bodies (pure computation does not
affect the join structure).  :class:`TraceProgram` is that skeleton: a
mapping ``task -> (("fork", child) | ("join", target), ...)``, directly
executable on the cooperative/simulation runtimes.

Join attempts are recovered from the per-edge record patterns:

* ``verdict`` … ``join`` — a completed join;
* ``verdict`` … ``block`` … ``unblock`` with **no** ``join`` — a join
  rescued by a deadline (the joinee never terminated first);
* ``avoided`` — a join the policy refused outright.

All three were *attempted* by the program, so all three become ``join``
actions: under ``policy=None`` the simulator executes them
unconditionally (realizing cycles the original run escaped by luck or
timeout), and under an avoidance policy the body observes the refusal
exactly where the original did.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence, Union

from ..core.policy import JoinPolicy
from ..errors import (
    DeadlockAvoidedError,
    DeadlockDetectedError,
    PolicyViolationError,
    RuntimeStateError,
    TaskFailedError,
)
from ..runtime.context import require_current_task
from ..runtime.explore import Schedule
from ..runtime.sim import SimRuntime
from ..runtime.task import TaskHandle

__all__ = ["SimOutcome", "TraceProgram"]

PROGRAM_VERSION = 1


class _IssuanceStalled(RuntimeStateError):
    """A reconstructed task waited unboundedly for a future that is
    never issued on this schedule (the forking task is itself stuck)."""


@dataclass(frozen=True)
class TraceProgram:
    """The fork/join skeleton of one journalled run."""

    root: str
    #: task -> its actions in program order
    actions: dict[str, tuple[tuple[str, str], ...]]

    @property
    def tasks(self) -> list[str]:
        return sorted(self.actions, key=_task_sort_key)

    @property
    def total_actions(self) -> int:
        return sum(len(a) for a in self.actions.values())

    def join_edges(self) -> list[tuple[str, str]]:
        """Every (waiter, joinee) join attempt, in reconstruction order."""
        return [
            (task, target)
            for task in self.tasks
            for kind, target in self.actions[task]
            if kind == "join"
        ]

    # ------------------------------------------------------------------
    @classmethod
    def from_records(cls, records: list[dict]) -> "TraceProgram":
        """Rebuild the program skeleton from ``read_journal`` records."""
        root: Optional[str] = None
        actions: dict[str, list[tuple[str, str]]] = {}
        open_intent: set[tuple[str, str]] = set()
        for rec in records:
            kind = rec.get("kind")
            if kind == "init":
                if root is None:
                    root = rec["task"]
                actions.setdefault(rec["task"], [])
            elif kind == "fork":
                actions.setdefault(rec["parent"], []).append(("fork", rec["child"]))
                actions.setdefault(rec["child"], [])
            elif kind == "verdict":
                # A verdict on an already-open edge means the prior
                # attempt ended without a ``join`` record (a rescued
                # join) and this is a fresh attempt: a new action.
                edge = (rec["waiter"], rec["joinee"])
                open_intent.discard(edge)
                actions.setdefault(edge[0], []).append(("join", edge[1]))
                open_intent.add(edge)
            elif kind in ("block", "join", "avoided"):
                edge = (rec["waiter"], rec["joinee"])
                if edge not in open_intent:
                    actions.setdefault(edge[0], []).append(("join", edge[1]))
                    open_intent.add(edge)
                if kind in ("join", "avoided"):
                    open_intent.discard(edge)
            # ``unblock`` deliberately does NOT close an intent: only a
            # ``join`` record proves the joinee completed (an unblock
            # may be a deadline rescue, and the block..unblock..join
            # pattern of a completed blocking join is one attempt).
        if root is None:
            raise ValueError("journal has no init record; cannot reconstruct")
        return cls(
            root=root, actions={t: tuple(a) for t, a in actions.items()}
        )

    # -- serialisation (embedded in witness files) ----------------------
    def to_dict(self) -> dict:
        return {
            "version": PROGRAM_VERSION,
            "root": self.root,
            "actions": {t: [list(a) for a in acts] for t, acts in self.actions.items()},
        }

    @classmethod
    def from_dict(cls, body: dict) -> "TraceProgram":
        if body.get("version", PROGRAM_VERSION) != PROGRAM_VERSION:
            raise ValueError(f"unsupported program version {body.get('version')!r}")
        return cls(
            root=body["root"],
            actions={
                t: tuple((str(k), str(v)) for k, v in acts)
                for t, acts in body["actions"].items()
            },
        )

    # ------------------------------------------------------------------
    # execution on the deterministic simulator
    # ------------------------------------------------------------------
    def run_sim(
        self,
        policy: Union[None, str, JoinPolicy] = None,
        *,
        fallback: bool = True,
        seed: Optional[int] = None,
        schedule: Optional[Schedule] = None,
        director: Optional[Callable[[Sequence[TaskHandle]], int]] = None,
        max_steps: Optional[int] = None,
    ) -> "SimOutcome":
        """One deterministic run of the reconstructed program.

        Policy refusals (``DeadlockAvoidedError`` under a fallback,
        ``PolicyViolationError`` without one) are caught *at the join*
        and recorded — the reconstructed task skips the refused join and
        carries on, exactly like the journal-producing harnesses.  A
        real deadlock (``policy=None`` on a cycle-realizing schedule)
        surfaces as the scheduler's ``DeadlockDetectedError`` and is
        reported with the blocked cycle in journal task names.
        """
        if max_steps is None:
            # generous for the program size, small enough that a
            # stalled-issuance livelock dies quickly during search
            max_steps = 200 * (self.total_actions + len(self.actions) + 1)
        rt = SimRuntime(
            policy,
            fallback=fallback,
            seed=seed,
            schedule=schedule,
            director=director,
            strict=False,
            max_steps=max_steps,
        )
        outcome = SimOutcome()
        futures: dict[str, Any] = {}
        names: dict[TaskHandle, str] = {}
        spin_budget = 4 * max(64, self.total_actions * (len(self.actions) + 1))

        def body(name: str):
            names[require_current_task()] = name
            for kind, target in self.actions.get(name, ()):
                if kind == "fork":
                    futures[target] = rt.fork(body, target)
                    continue
                spins = 0
                while target not in futures:
                    spins += 1
                    if spins > spin_budget:
                        raise _IssuanceStalled(
                            f"{name} waited {spins} yields for {target}'s "
                            "future; its forker is stuck on this schedule"
                        )
                    yield None
                try:
                    yield futures[target]
                except (PolicyViolationError, DeadlockAvoidedError) as exc:
                    outcome.refusals.append((name, target, type(exc).__name__))
                except TaskFailedError:
                    # A joinee killed by a refusal cascading up; the
                    # original harnesses swallow these at the join too.
                    outcome.refusals.append((name, target, "TaskFailedError"))
            return name

        try:
            outcome.result = rt.run(body, self.root)
        except DeadlockDetectedError as exc:
            outcome.deadlock = tuple(
                names.get(t, getattr(t, "name", "?")) for t in exc.cycle
            )
            outcome.error = exc
        except BaseException as exc:  # noqa: BLE001 - recorded, not hidden
            outcome.error = exc
        outcome.schedule = rt.recorded_schedule
        outcome.steps = rt.steps
        outcome.timeouts_fired = rt.timeouts_fired
        if rt.detector is not None:
            outcome.deadlocks_avoided = rt.detector.stats.deadlocks_avoided
        return outcome


@dataclass
class SimOutcome:
    """What one simulated run of a :class:`TraceProgram` did."""

    result: Any = None
    error: Optional[BaseException] = None
    #: the realized blocked cycle, in journal task names (None: no deadlock)
    deadlock: Optional[tuple[str, ...]] = None
    #: joins the policy refused, as (waiter, joinee, error-class-name)
    refusals: list[tuple[str, str, str]] = field(default_factory=list)
    #: every scheduling decision of the run, replayable
    schedule: Optional[Schedule] = None
    steps: int = 0
    timeouts_fired: int = 0
    deadlocks_avoided: int = 0

    @property
    def verdict(self) -> str:
        """One word for what the policy did on this schedule:
        ``deadlock`` / ``avoided`` / ``denied`` / ``clean`` / ``error``."""
        if self.deadlock is not None:
            return "deadlock"
        if any(r[2] == "DeadlockAvoidedError" for r in self.refusals):
            return "avoided"
        if any(r[2] == "PolicyViolationError" for r in self.refusals):
            return "denied"
        if self.error is not None:
            return "error"
        return "clean"


def _task_sort_key(name: str) -> tuple[int, str]:
    return (int(name[1:]) if name[1:].isdigit() else -1, name)
