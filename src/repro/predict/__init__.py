"""Predictive deadlock analysis over the trace journal.

The journal (:mod:`repro.tools.journal`) records *one* schedule of a
run.  This package answers the counterfactual question the single trace
leaves open — could some *other* schedule of the same program have
deadlocked? — in the style of partial-order deadlock prediction: the
recorded events are relaxed into a partial order (program order +
fork-tree causality + completion edges), and alternative linearizations
are searched for join cycles some reordering can realize.

The search is *reproduction-by-construction*: a candidate cycle
surviving the partial-order feasibility filter is confirmed by actually
driving the reconstructed program through the deterministic simulator
(:class:`~repro.runtime.sim.SimRuntime`) until the cycle closes, so
every :class:`PredictedDeadlock` carries a witness
:class:`~repro.runtime.explore.Schedule` that replays the deadlock
exactly — plus the verdicts the avoidance policies give along that very
schedule, closing the predict → simulate → avoid loop.
"""

from .order import TraceEvent, TraceOrder, build_order
from .program import SimOutcome, TraceProgram
from .predictor import (
    JoinIntent,
    PredictedDeadlock,
    PredictionReport,
    predict_deadlocks,
    read_witness,
)

__all__ = [
    "JoinIntent",
    "PredictedDeadlock",
    "PredictionReport",
    "SimOutcome",
    "TraceEvent",
    "TraceOrder",
    "build_order",
    "predict_deadlocks",
    "read_witness",
]
