"""The partial order over journal events (must-happen-before).

A journal is one linearization of a run.  Most of that order is
scheduling accident; what *must* hold in every schedule of the same
program is only:

* **program order** — a task's own events, in sequence (each task is a
  single thread of control);
* **fork causality** — a ``fork`` record happens before every event of
  the forked child;
* **completion edges** — a task's ``complete`` record comes after all
  its other events, and a *completed* join (a durable ``join`` record)
  orders the joinee's completion before the waiter's post-join events.

Everything the journal's ``seq`` ordered beyond that is reorderable.
:class:`TraceOrder` exposes exactly the query the predictor needs:
``must_precede(a, b)`` — is event *a* before event *b* in **every**
linearization?  A candidate join cycle is refuted when the partial
order forces some joinee's completion before its waiter even issues the
join (the edge could never block); cycles no such edge refutes are
*candidates*, handed to the simulator for realization.

Timeout-rescued joins (``block`` … ``unblock`` with no ``join``) add
**no** completion edge — the unblock came from a deadline, not from the
joinee terminating — which is precisely how a journal of a cleanly
completed run can still contain a realizable cycle.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Optional

__all__ = ["TraceEvent", "TraceOrder", "build_order"]

#: record kinds attributed to the record's ``task`` field
_TASK_KINDS = ("init", "complete")
#: record kinds attributed to the record's ``waiter`` field
_WAITER_KINDS = ("verdict", "join", "block", "unblock", "avoided")


@dataclass(frozen=True)
class TraceEvent:
    """One journal record, positioned in the partial order."""

    index: int  # position in the event list (== dense event id)
    task: str  # journal task name the event belongs to
    kind: str
    record: dict  # the raw journal record

    @property
    def edge(self) -> Optional[tuple[str, str]]:
        """The (waiter, joinee) pair, for join-shaped events."""
        if self.kind in _WAITER_KINDS:
            return (self.record["waiter"], self.record["joinee"])
        return None


@dataclass
class TraceOrder:
    """Must-happen-before over the events of one journal."""

    events: list[TraceEvent] = field(default_factory=list)
    #: task name -> its event indices, in program order
    by_task: dict[str, list[int]] = field(default_factory=dict)
    #: adjacency: event index -> indices that must come after it
    succ: dict[int, list[int]] = field(default_factory=dict)
    #: task name -> index of its ``complete`` event (when recorded)
    complete_of: dict[str, int] = field(default_factory=dict)
    #: task name -> index of the ``fork`` event that created it
    forked_at: dict[str, int] = field(default_factory=dict)

    def add_edge(self, a: int, b: int) -> None:
        self.succ.setdefault(a, []).append(b)

    def must_precede(self, a: int, b: int) -> bool:
        """True when event *a* is before *b* in every linearization."""
        if a == b:
            return False
        seen = {a}
        frontier = deque((a,))
        while frontier:
            node = frontier.popleft()
            for nxt in self.succ.get(node, ()):
                if nxt == b:
                    return True
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        return False

    def last_event_of(self, task: str) -> Optional[int]:
        own = self.by_task.get(task)
        return own[-1] if own else None

    def completion_event(self, task: str) -> Optional[int]:
        """The event pinning *task*'s termination: its ``complete``
        record when durable, else its last recorded event (a lower
        bound — completion cannot precede the task's own events)."""
        at = self.complete_of.get(task)
        if at is not None:
            return at
        return self.last_event_of(task)


def build_order(records: list[dict]) -> TraceOrder:
    """Construct the partial order from ``read_journal`` records.

    Records with no task attribution (``start``, ``quarantine``,
    ``retry``) are skipped — the caller is expected to refuse journals
    with quarantine/retry records *before* prediction (retries re-point
    a task at a fresh vertex, which breaks per-name program order).
    """
    order = TraceOrder()
    for rec in records:
        kind = rec.get("kind")
        if kind in _TASK_KINDS:
            task = rec["task"]
        elif kind in _WAITER_KINDS:
            task = rec["waiter"]
        elif kind == "fork":
            task = rec["parent"]
        else:
            continue
        event = TraceEvent(index=len(order.events), task=task, kind=kind, record=rec)
        order.events.append(event)
        own = order.by_task.setdefault(task, [])
        if own:
            order.add_edge(own[-1], event.index)  # program order
        own.append(event.index)
        if kind == "fork":
            order.forked_at[rec["child"]] = event.index
        elif kind == "complete":
            order.complete_of[task] = event.index

    # fork causality: the fork record precedes the child's first event
    for child, fork_at in order.forked_at.items():
        own = order.by_task.get(child)
        if own:
            order.add_edge(fork_at, own[0])

    # completed joins: the joinee terminated before the waiter resumed
    for event in order.events:
        if event.kind != "join":
            continue
        done_at = order.completion_event(event.record["joinee"])
        if done_at is not None and done_at != event.index:
            order.add_edge(done_at, event.index)
    return order
